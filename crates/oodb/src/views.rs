//! Materialized views, organized into a subsumption lattice.
//!
//! A view is a query class whose constraint part is empty (Section 2.2);
//! its answers may be materialized — stored explicitly — so that access to
//! them is as fast as to any schema class. The catalog below stores the
//! extensions, refreshes them when the database changes, and is shared
//! behind a read–write lock so that many queries can consult it
//! concurrently (the "trader" scenario sketched in Section 6).
//!
//! # The subsumption lattice
//!
//! Beyond the flat list of extensions, the catalog maintains the **Hasse
//! diagram** of the Σ-subsumption order over the view concepts: an edge
//! `P → C` records that `C ⊑_Σ P` with no other view strictly between
//! them. Views whose concepts are Σ-equivalent collapse into one node —
//! the first-materialized view stays the *representative* and later
//! equivalent views attach to it as peers.
//!
//! The planner exploits the diagram through [`ViewCatalog::traverse`]:
//! because `C ⊑ P` and `Q ⋢ P` imply `Q ⋢ C`, a failed probe of a parent
//! prunes every view below it, so a query is tested against a pruned
//! top-down frontier instead of the whole catalog (the flat `O(N)` scan
//! the paper's Section 3.2 sketches).
//!
//! # Insertion-time classification cost
//!
//! Classification is incremental ([`ViewCatalog::classify_pending`]): each
//! newly materialized view is inserted into the existing DAG with one
//! top-down parent search (probes `new ⊑ existing`, descending only below
//! views that subsume the newcomer) and one bottom-up child search (probes
//! `existing ⊑ new` below the found parents, stopping at the first
//! subsumed node of every branch). All probes go through the optimizer's
//! [`subq_calculus::SubsumptionCache`], so the newcomer's fact closure is
//! saturated **once** for its whole top-down phase and every existing
//! view's closure is reused from its own insertion — an insertion pays one
//! fact saturation plus a number of goal-side probes bounded by the size
//! of the two search frontiers (at worst `O(N)` on a flat anti-hierarchy,
//! `O(depth × fan-out)` on hierarchical catalogs). The whole diagram is
//! dropped and rebuilt only when the schema changes (the subsumption
//! relation itself may then change); data updates never touch it.

use crate::eval::evaluate_query_set;
use crate::maintain::{refresh_views, routes_nothing, DependencyIndex, MaintenanceStats};
use crate::objset::ObjSet;
use crate::store::Database;
use std::collections::BTreeSet;
use std::sync::{Arc, RwLock};
use subq_concepts::term::ConceptId;
use subq_dl::QueryClassDecl;

/// A materialized view: a structural query class together with its stored
/// extension and its position in the catalog's subsumption lattice.
///
/// The definition and the extension sit behind [`Arc`]s, so cloning a
/// view — and with it the whole catalog, when a read
/// [`Snapshot`](crate::snapshot::Snapshot) is published — shares the
/// bulky parts; a refresh that changes an extension unshares just that
/// one (`Arc::make_mut`).
#[derive(Clone, Debug)]
pub struct MaterializedView {
    /// The view definition (a query class without a constraint clause).
    pub definition: Arc<QueryClassDecl>,
    /// The stored extension, as a compressed bitmap over dense object
    /// ids (see [`crate::objset`]).
    pub extent: Arc<ObjSet>,
    /// The [`Database::data_version`] the extension reflects: the view is
    /// fresh iff `fresh_as_of == db.data_version()`, and a refresh replays
    /// exactly the deltas after this version.
    pub fresh_as_of: u64,
    /// Forces full re-derivation on the next refresh regardless of
    /// versions — set by [`ViewCatalog::invalidate`] when the extension
    /// may be wrong for reasons the delta log cannot see (e.g. a schema
    /// mutation changed evaluation semantics without any data delta).
    pub force_refresh: bool,
    /// The translated QL concept of the definition, cached by the planner
    /// after the first translation (valid for one `TranslatedModel`;
    /// dropped by [`ViewCatalog::invalidate_concepts`] on schema change).
    pub concept: Option<ConceptId>,
    /// Hasse parents: indices of the most-specific views strictly *more
    /// general* than this one. Empty for roots and for equivalence peers.
    pub parents: Vec<usize>,
    /// Hasse children: indices of the most-general views strictly *more
    /// specific* than this one. Empty for leaves and equivalence peers.
    pub children: Vec<usize>,
    /// `Some(rep)` when this view's concept is Σ-equivalent to the earlier
    /// view `rep`, which represents the shared lattice node.
    pub equiv: Option<usize>,
    /// Whether this view has been inserted into the lattice since the last
    /// schema change.
    pub classified: bool,
}

impl MaterializedView {
    /// The number of stored answers.
    pub fn len(&self) -> usize {
        self.extent.len()
    }

    /// Whether the view is currently empty.
    pub fn is_empty(&self) -> bool {
        self.extent.is_empty()
    }
}

/// Errors raised when materializing a query class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewError {
    /// The query class has a constraint clause; it is not a view and using
    /// its stored answers for subsumed queries would be unsound.
    NotStructural { query: String },
    /// A view with this name is already materialized.
    AlreadyMaterialized { query: String },
    /// The name denotes neither a query class nor a schema class.
    UnknownQuery { query: String },
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::NotStructural { query } => write!(
                f,
                "query class `{query}` has a constraint clause and cannot be materialized as a view"
            ),
            ViewError::AlreadyMaterialized { query } => {
                write!(f, "view `{query}` is already materialized")
            }
            ViewError::UnknownQuery { query } => {
                write!(f, "`{query}` is neither a query class nor a schema class")
            }
        }
    }
}

impl std::error::Error for ViewError {}

/// The oracle driving lattice classification: translates view definitions
/// into concepts and decides Σ-subsumption between two concepts.
///
/// Both capabilities live on one trait (rather than two closures) because
/// a caller typically backs them with the *same* mutable state — the term
/// arena and the subsumption cache of an optimized database.
pub trait ClassifyOracle {
    /// The QL concept of a view definition, or `None` if it does not
    /// translate under the current schema (the view is skipped and retried
    /// on the next classification pass).
    fn concept_of(&mut self, definition: &QueryClassDecl) -> Option<ConceptId>;
    /// Whether `sub ⊑_Σ sup`.
    fn subsumes(&mut self, sub: ConceptId, sup: ConceptId) -> bool;
}

/// The outcome of one lattice traversal ([`ViewCatalog::traverse`]).
#[derive(Clone, Debug, Default)]
pub struct LatticeTraversal {
    /// The maximal-specific subsuming views (`(name, extent size)`): every
    /// view on the frontier subsumes the query, and no strictly more
    /// specific view does. Order follows the traversal; callers sort.
    pub frontier: Vec<(String, usize)>,
    /// Number of subsumption probes performed.
    pub probes: usize,
    /// Number of views whose probe was skipped: descendants of a failed
    /// probe, and equivalence peers (their verdict is the representative's).
    pub pruned: usize,
    /// Depth of the deepest node probed, counting roots as 1 (0 when the
    /// catalog is empty).
    pub depth: usize,
}

/// The per-view event log of one traced traversal
/// ([`traverse_lattice_traced`]) — what EXPLAIN reports beyond the
/// [`LatticeTraversal`] counters. `probed.len()` equals the traversal's
/// `probes`; `skipped.len()` equals its `pruned`.
#[derive(Clone, Debug, Default)]
pub struct TraversalTrace {
    /// Fired probes in traversal order: `(view name, subsumed?)`.
    pub probed: Vec<(String, bool)>,
    /// Classified views never probed — descendants of a failed probe and
    /// Σ-equivalence peers — in catalog order.
    pub skipped: Vec<String>,
}

/// The maintenance side-state of a catalog: the dependency index (rebuilt
/// when the set of views or the schema changes) and the cumulative
/// counters.
#[derive(Debug, Default)]
struct MaintState {
    index: Option<DependencyIndex>,
    /// Number of views the index was built for.
    indexed_views: usize,
    /// Schema version the index was built against.
    indexed_schema: u64,
    /// Data version up to which the log suffix is known to route **zero**
    /// views (see [`ViewCatalog::refresh`]'s empty-refresh early return):
    /// views may lag behind it by `fresh_as_of` without being stale in
    /// substance. Reset when the index is rebuilt.
    routed_through: u64,
    stats: MaintenanceStats,
}

/// How far (in data versions) views may lag behind a routed-nothing log
/// suffix before an empty refresh consolidates their `fresh_as_of`
/// stamps. Small enough that the writer's log truncation keeps the log
/// (and with it every snapshot clone) bounded by ~this many irrelevant
/// deltas, large enough that the common empty refresh stays a pure read.
const ROUTED_LAG_CONSOLIDATE: u64 = 1024;

/// The catalog of materialized views.
#[derive(Debug, Default)]
pub struct ViewCatalog {
    views: RwLock<Vec<MaterializedView>>,
    maint: RwLock<MaintState>,
}

impl ViewCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        ViewCatalog::default()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Vec<MaterializedView>> {
        self.views.read().expect("view catalog lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Vec<MaterializedView>> {
        self.views.write().expect("view catalog lock poisoned")
    }

    /// Materializes a view: evaluates it once and stores the extension.
    /// The view enters the lattice on the next
    /// [`ViewCatalog::classify_pending`] pass.
    pub fn materialize(&self, db: &Database, definition: &QueryClassDecl) -> Result<(), ViewError> {
        if !definition.is_view() {
            return Err(ViewError::NotStructural {
                query: definition.name.clone(),
            });
        }
        let mut views = self.write();
        if views.iter().any(|v| v.definition.name == definition.name) {
            return Err(ViewError::AlreadyMaterialized {
                query: definition.name.clone(),
            });
        }
        let extent = evaluate_query_set(db, definition, None);
        views.push(MaterializedView {
            definition: Arc::new(definition.clone()),
            extent: Arc::new(extent),
            fresh_as_of: db.data_version(),
            force_refresh: false,
            concept: None,
            parents: Vec::new(),
            children: Vec::new(),
            equiv: None,
            classified: false,
        });
        Ok(())
    }

    /// Reinstalls checkpointed views into an empty catalog: definitions,
    /// stored extensions, and freshness stamps come from the image; the
    /// lattice position is left pending, because concepts are bound to
    /// the term arena of one process and cannot survive a restart —
    /// classification re-derives the (deterministic) Hasse edges the
    /// image recorded, which recovery tests assert against. The restored
    /// `fresh_as_of` is the checkpoint version, so the WAL suffix
    /// replayed after the restore catches every view up through the
    /// ordinary incremental path.
    pub(crate) fn restore(&self, restored: Vec<(Arc<QueryClassDecl>, Arc<ObjSet>, u64)>) {
        let mut views = self.write();
        debug_assert!(views.is_empty(), "restore targets a fresh catalog");
        for (definition, extent, fresh_as_of) in restored {
            views.push(MaterializedView {
                definition,
                extent,
                fresh_as_of,
                force_refresh: false,
                concept: None,
                parents: Vec::new(),
                children: Vec::new(),
                equiv: None,
                classified: false,
            });
        }
    }

    /// The names of all materialized views.
    pub fn view_names(&self) -> Vec<String> {
        self.read()
            .iter()
            .map(|v| v.definition.name.clone())
            .collect()
    }

    /// A snapshot of one view.
    pub fn view(&self, name: &str) -> Option<MaterializedView> {
        self.read()
            .iter()
            .find(|v| v.definition.name == name)
            .cloned()
    }

    /// A snapshot of all views.
    pub fn snapshot(&self) -> Vec<MaterializedView> {
        self.read().clone()
    }

    /// A snapshot of definitions and extent sizes only — without cloning
    /// the stored extents.
    pub fn summaries(&self) -> Vec<(QueryClassDecl, usize)> {
        self.read()
            .iter()
            .map(|v| ((*v.definition).clone(), v.extent.len()))
            .collect()
    }

    /// What the planner needs per view: name, extent size, and the cached
    /// translated concept — no definition or extent clones. Views whose
    /// concept entry is `None` have not been translated since the last
    /// schema change; [`ViewCatalog::plan_entries_with`] fills them in.
    pub fn plan_entries(&self) -> Vec<(String, usize, Option<ConceptId>)> {
        self.read()
            .iter()
            .map(|v| (v.definition.name.clone(), v.extent.len(), v.concept))
            .collect()
    }

    /// One pass over the catalog for the planner: views whose concept is
    /// not cached yet are translated through `translate` and the result is
    /// stored back, all under a single lock acquisition (no per-view
    /// lookups or definition clones). Views that fail to translate are
    /// skipped; they are retried on the next plan.
    pub fn plan_entries_with(
        &self,
        mut translate: impl FnMut(&QueryClassDecl) -> Option<ConceptId>,
    ) -> Vec<(String, usize, ConceptId)> {
        let mut views = self.write();
        let mut entries = Vec::with_capacity(views.len());
        for view in views.iter_mut() {
            let concept = match view.concept {
                Some(concept) => concept,
                None => match translate(&view.definition) {
                    Some(concept) => {
                        view.concept = Some(concept);
                        concept
                    }
                    None => continue,
                },
            };
            entries.push((view.definition.name.clone(), view.extent.len(), concept));
        }
        entries
    }

    /// Inserts every not-yet-classified view into the subsumption lattice,
    /// in materialization order, using the oracle for translation and
    /// subsumption probes. Idempotent: a fully classified catalog returns
    /// without probing.
    pub fn classify_pending(&self, oracle: &mut impl ClassifyOracle) {
        // Fast path under the shared lock: planners call this on every
        // plan, and in steady state (views classified eagerly on
        // materialization) nothing is pending — don't serialize concurrent
        // readers on the writer lock just to find that out.
        if self.read().iter().all(|v| v.classified) {
            return;
        }
        let mut views = self.write();
        for index in 0..views.len() {
            if views[index].concept.is_none() {
                views[index].concept = oracle.concept_of(&views[index].definition);
            }
        }
        for index in 0..views.len() {
            if views[index].classified {
                continue;
            }
            let Some(concept) = views[index].concept else {
                // Untranslatable under the current schema: stays out of the
                // lattice (and out of plans) until a later pass succeeds.
                continue;
            };
            classify_one(&mut views, index, concept, oracle);
        }
    }

    /// Plans a query by traversing the lattice from its roots: `probe`
    /// decides whether the query is subsumed by a view concept, a failed
    /// probe prunes the whole sub-DAG below it (soundly, since subsumption
    /// is transitive), and the result is the *maximal-specific* subsuming
    /// frontier. Views not yet classified (see
    /// [`ViewCatalog::classify_pending`]) are ignored.
    pub fn traverse(&self, probe: impl FnMut(ConceptId) -> bool) -> LatticeTraversal {
        traverse_lattice(&self.read(), probe)
    }

    /// Depth of the classified lattice (longest root-to-leaf chain,
    /// counting roots as 1; 0 when nothing is classified) — the depth a
    /// traversal reports when no probe fails. The flat planner
    /// ([`OptimizedDatabase::plan_flat`](crate::OptimizedDatabase::plan_flat))
    /// reports this for counter parity with the lattice planner.
    pub fn lattice_depth(&self) -> usize {
        let views = self.read();
        let (order, _) = representative_topo_order(&views);
        let mut depth: Vec<usize> = vec![0; views.len()];
        let mut max = 0;
        for &i in &order {
            depth[i] = 1 + views[i]
                .parents
                .iter()
                .map(|&p| depth[p])
                .max()
                .unwrap_or(0);
            max = max.max(depth[i]);
        }
        max
    }

    /// Structural invariants of the lattice, as human-readable violations
    /// (empty = consistent). Checks index validity, parent/child edge
    /// mirroring, duplicate and self edges, equivalence-peer shape, edge
    /// cleanliness of unclassified views, and acyclicity.
    pub fn lattice_violations(&self) -> Vec<String> {
        let views = self.read();
        let n = views.len();
        let mut out = Vec::new();
        let name = |i: usize| views[i].definition.name.clone();
        for (i, view) in views.iter().enumerate() {
            if (!view.classified || view.equiv.is_some())
                && (!view.parents.is_empty() || !view.children.is_empty())
            {
                out.push(format!(
                    "`{}` is {} but has Hasse edges",
                    name(i),
                    if view.classified {
                        "an equivalence peer"
                    } else {
                        "unclassified"
                    }
                ));
            }
            if let Some(rep) = view.equiv {
                if !view.classified {
                    out.push(format!(
                        "`{}` has an equiv link but is unclassified",
                        name(i)
                    ));
                }
                if rep >= n {
                    out.push(format!("`{}` equiv index {rep} out of range", name(i)));
                } else if views[rep].equiv.is_some() || !views[rep].classified {
                    out.push(format!(
                        "`{}` equiv target `{}` is not a classified representative",
                        name(i),
                        name(rep)
                    ));
                }
            }
            for (edges, mirror, what) in [
                (&view.parents, true, "parent"),
                (&view.children, false, "child"),
            ] {
                let mut seen = BTreeSet::new();
                for &other in edges.iter() {
                    if other >= n {
                        out.push(format!("`{}` {what} index {other} out of range", name(i)));
                        continue;
                    }
                    if other == i {
                        out.push(format!("`{}` has a self {what} edge", name(i)));
                    }
                    if !seen.insert(other) {
                        out.push(format!(
                            "`{}` has duplicate {what} `{}`",
                            name(i),
                            name(other)
                        ));
                    }
                    let back = if mirror {
                        &views[other].children
                    } else {
                        &views[other].parents
                    };
                    if back.iter().filter(|&&b| b == i).count() != 1 {
                        out.push(format!(
                            "{what} edge `{}` ↔ `{}` is not mirrored exactly once",
                            name(i),
                            name(other)
                        ));
                    }
                }
            }
        }
        // Acyclicity: every representative must sort topologically.
        let (order, reps) = representative_topo_order(&views);
        if order.len() != reps {
            out.push(format!(
                "lattice contains a cycle ({} of {reps} representatives sort topologically)",
                order.len()
            ));
        }
        out
    }

    /// The Hasse edges as `(parent name, child name)` pairs, plus
    /// equivalence links as `(representative, peer)` — for tests and
    /// diagnostics.
    pub fn lattice_edges(&self) -> Vec<(String, String)> {
        let views = self.read();
        let mut out = Vec::new();
        for view in views.iter() {
            for &c in &view.children {
                out.push((
                    view.definition.name.clone(),
                    views[c].definition.name.clone(),
                ));
            }
            if let Some(rep) = view.equiv {
                out.push((
                    views[rep].definition.name.clone(),
                    view.definition.name.clone(),
                ));
            }
        }
        out
    }

    /// Number of views inserted into the lattice since the last schema
    /// change.
    pub fn classified_count(&self) -> usize {
        self.read().iter().filter(|v| v.classified).count()
    }

    /// Drops every cached translated concept **and the whole lattice**
    /// (called when the schema — and with it both the arena the
    /// `ConceptId`s point into and the subsumption relation itself — is
    /// re-translated). Views are reclassified on the next
    /// [`ViewCatalog::classify_pending`] pass.
    pub fn invalidate_concepts(&self) {
        for view in self.write().iter_mut() {
            view.concept = None;
            view.parents.clear();
            view.children.clear();
            view.equiv = None;
            view.classified = false;
        }
    }

    /// Forces every view to be fully re-derived on the next refresh
    /// (incremental or full), regardless of data versions. Needed when an
    /// extension may be wrong for reasons the delta log cannot express —
    /// [`OptimizedDatabase::update`](crate::OptimizedDatabase::update)
    /// calls this on schema mutations, whose semantic effects (changed
    /// query-class definitions, synonym rewiring) produce no data deltas.
    /// Ordinary staleness needs no marking: it is the per-view comparison
    /// `fresh_as_of < db.data_version()`. The lattice is untouched:
    /// subsumption never depends on the state.
    pub fn invalidate(&self) {
        for view in self.write().iter_mut() {
            view.force_refresh = true;
        }
    }

    /// Brings every stale view up to the current data version by
    /// **incremental propagation**: the unseen suffix of the database's
    /// delta log is routed through the dependency index to the affected
    /// views, only candidate objects are re-checked, and the subsumption
    /// lattice prunes evaluations top-down (see [`crate::maintain`]).
    /// Views whose snapshot predates the log's truncation point fall back
    /// to full re-evaluation. Equivalent to [`ViewCatalog::refresh_full`]
    /// on every state (`tests/incremental_equivalence.rs`).
    pub fn refresh(&self, db: &Database) {
        let now = db.data_version();
        // Fast path under the shared lock: nothing stale, nothing to do.
        if self
            .read()
            .iter()
            .all(|v| !v.force_refresh && v.fresh_as_of >= now)
        {
            return;
        }
        let mut maint = self.maint.write().expect("maintenance lock poisoned");
        {
            let views = self.read();
            let index_stale = maint.index.is_none()
                || maint.indexed_views != views.len()
                || maint.indexed_schema != db.schema_version();
            if index_stale {
                maint.index = Some(DependencyIndex::build(
                    db.model(),
                    views.iter().map(|v| v.definition.as_ref()),
                ));
                maint.indexed_views = views.len();
                maint.indexed_schema = db.schema_version();
                maint.routed_through = 0;
            }
            let forced = views.iter().any(|v| v.force_refresh);
            // Empty-refresh early return: when the unseen log suffix
            // routes **zero** views through the dependency index (and no
            // view is forced or beyond the log's reach), no view state is
            // touched at all — no write lock, no candidate sets, no
            // per-view bookkeeping. The scanned-through version is cached
            // so the next refresh does not even re-scan the suffix.
            if !forced && maint.routed_through >= now {
                return;
            }
            let index = maint.index.as_ref().expect("index built above");
            if !forced && routes_nothing(db, &views, index) {
                maint.routed_through = now;
                maint.stats.empty_refreshes += 1;
                crate::metrics::metrics().maint_empty_refreshes.inc();
                // Consolidate once the lag grows: views that are fresh in
                // substance but lag by version hold back the writer's log
                // truncation (the log would grow toward its cap, bloat
                // snapshot clones, and eventually force full
                // re-evaluations when the cap drops entries). Bumping
                // `fresh_as_of` is sound — the whole suffix routes
                // nothing to them — and costs one u64 store per view, no
                // allocation, no evaluation.
                let lag = views
                    .iter()
                    .map(|v| now.saturating_sub(v.fresh_as_of))
                    .max()
                    .unwrap_or(0);
                if lag > ROUTED_LAG_CONSOLIDATE {
                    drop(views);
                    for view in self.write().iter_mut() {
                        view.fresh_as_of = now;
                    }
                }
                return;
            }
        }
        let mut views = self.write();
        let MaintState { index, stats, .. } = &mut *maint;
        let before = *stats;
        refresh_views(
            db,
            &mut views,
            index.as_ref().expect("index built above"),
            stats,
        );
        let metrics = crate::metrics::metrics();
        metrics
            .maint_deltas_applied
            .add(stats.deltas_applied - before.deltas_applied);
        metrics
            .maint_candidates_examined
            .add(stats.candidates_examined - before.candidates_examined);
        metrics
            .maint_memberships_evaluated
            .add(stats.memberships_evaluated - before.memberships_evaluated);
        metrics
            .maint_lattice_prunes
            .add(stats.lattice_prunes - before.lattice_prunes);
        metrics
            .maint_full_reevaluations
            .add(stats.full_reevaluations - before.full_reevaluations);
        maint.routed_through = now;
    }

    /// Removes one materialized view from the catalog — the advisor's
    /// eviction primitive. Because Hasse edges and equivalence links are
    /// positional indices, removing an element invalidates every edge in
    /// the catalog: the whole lattice is reset (cached concepts are kept
    /// — they are still valid for the current schema epoch) and the
    /// survivors are reclassified on the next
    /// [`ViewCatalog::classify_pending`] pass, which re-derives the
    /// deterministic sub-diagram from memoized probes. The dependency
    /// index is dropped so maintenance stops routing deltas to the
    /// evicted extension. Returns whether the view existed.
    pub fn evict(&self, name: &str) -> bool {
        let mut views = self.write();
        let Some(position) = views.iter().position(|v| v.definition.name == name) else {
            return false;
        };
        views.remove(position);
        for view in views.iter_mut() {
            view.parents.clear();
            view.children.clear();
            view.equiv = None;
            view.classified = false;
        }
        drop(views);
        let mut maint = self.maint.write().expect("maintenance lock poisoned");
        maint.index = None;
        maint.indexed_views = usize::MAX;
        maint.routed_through = 0;
        true
    }

    /// Re-evaluates every stale view from scratch — the maintenance
    /// oracle the incremental [`ViewCatalog::refresh`] is verified
    /// against, and the baseline of experiment E10.
    pub fn refresh_full(&self, db: &Database) {
        let now = db.data_version();
        for view in self.write().iter_mut() {
            if view.force_refresh || view.fresh_as_of < now {
                view.extent = Arc::new(evaluate_query_set(db, &view.definition, None));
                view.fresh_as_of = now;
                view.force_refresh = false;
            }
        }
    }

    /// The cumulative counters of the incremental maintainer.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.maint.read().expect("maintenance lock poisoned").stats
    }

    /// The oldest data version any view's extension still reflects
    /// (`None` for an empty catalog): log entries at or below it can be
    /// truncated without impairing incremental refresh.
    pub fn oldest_snapshot(&self) -> Option<u64> {
        self.read().iter().map(|v| v.fresh_as_of).min()
    }

    /// Number of materialized views.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }
}

/// One lattice traversal over a slice of views — the shared engine behind
/// [`ViewCatalog::traverse`] (under the catalog's read lock) and the
/// lock-free planning of a published [`Snapshot`](crate::snapshot::Snapshot)
/// (over its immutable view list). Probes run root-down; a failed probe
/// prunes the whole sub-DAG below it; the result is the maximal-specific
/// subsuming frontier.
pub(crate) fn traverse_lattice(
    views: &[MaterializedView],
    probe: impl FnMut(ConceptId) -> bool,
) -> LatticeTraversal {
    traverse_lattice_inner(views, probe, None)
}

/// [`traverse_lattice`] with the per-view event trace EXPLAIN reports —
/// kept off the planning hot path because collecting it clones one name
/// per classified view.
pub(crate) fn traverse_lattice_traced(
    views: &[MaterializedView],
    probe: impl FnMut(ConceptId) -> bool,
) -> (LatticeTraversal, TraversalTrace) {
    let mut trace = TraversalTrace::default();
    let result = traverse_lattice_inner(views, probe, Some(&mut trace));
    (result, trace)
}

fn traverse_lattice_inner(
    views: &[MaterializedView],
    mut probe: impl FnMut(ConceptId) -> bool,
    mut trace: Option<&mut TraversalTrace>,
) -> LatticeTraversal {
    let n = views.len();
    let mut result = LatticeTraversal::default();
    // Verdicts per representative: None = not yet decided.
    let mut subsumed: Vec<Option<bool>> = vec![None; n];
    let mut depth: Vec<usize> = vec![0; n];
    let mut fired = if trace.is_some() {
        vec![false; n]
    } else {
        Vec::new()
    };
    // Topological sweep over the representatives so a node is decided
    // only after all of its parents (diamonds are probed once, after
    // the *last* parent).
    let (order, reps) = representative_topo_order(views);
    debug_assert_eq!(order.len(), reps, "lattice must be acyclic");
    let classified_total = views.iter().filter(|v| v.classified).count();
    for &i in &order {
        let view = &views[i];
        let all_parents_hold = view.parents.iter().all(|&p| subsumed[p] == Some(true));
        depth[i] = 1 + view.parents.iter().map(|&p| depth[p]).max().unwrap_or(0);
        let verdict = if all_parents_hold {
            result.probes += 1;
            result.depth = result.depth.max(depth[i]);
            let verdict = probe(views[i].concept.expect("classified views have concepts"));
            if let Some(trace) = trace.as_deref_mut() {
                fired[i] = true;
                trace.probed.push((view.definition.name.clone(), verdict));
            }
            verdict
        } else {
            false
        };
        subsumed[i] = Some(verdict);
    }
    result.pruned = classified_total - result.probes;
    if let Some(trace) = trace {
        for (i, view) in views.iter().enumerate() {
            if view.classified && !fired[i] {
                trace.skipped.push(view.definition.name.clone());
            }
        }
    }
    // The frontier: subsuming representatives none of whose children
    // subsume, expanded by their equivalence peers.
    for (i, view) in views.iter().enumerate() {
        let rep = view.equiv.unwrap_or(i);
        if !view.classified || subsumed[rep] != Some(true) {
            continue;
        }
        let maximal_specific = views[rep]
            .children
            .iter()
            .all(|&c| subsumed[c] != Some(true));
        if maximal_specific {
            result
                .frontier
                .push((view.definition.name.clone(), view.extent.len()));
        }
    }
    result
}

/// The topological order of the classified representatives (parents
/// strictly before children, Kahn over the Hasse edges), paired with the
/// number of representatives: an order shorter than the count signals a
/// cycle. Tolerates malformed edge lists (out-of-range or duplicate
/// children), which [`ViewCatalog::lattice_violations`] reports
/// separately. Shared by the planner traversal, the invariant checker,
/// and the incremental maintainer's refresh order.
pub(crate) fn representative_topo_order(views: &[MaterializedView]) -> (Vec<usize>, usize) {
    let n = views.len();
    let is_rep = |i: usize| views[i].classified && views[i].equiv.is_none();
    let mut pending: Vec<usize> = views.iter().map(|v| v.parents.len()).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| is_rep(i) && pending[i] == 0).collect();
    let reps = (0..n).filter(|&i| is_rep(i)).count();
    let mut order = Vec::with_capacity(reps);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &c in &views[i].children {
            if c < n && pending[c] > 0 {
                pending[c] -= 1;
                if pending[c] == 0 {
                    queue.push(c);
                }
            }
        }
    }
    (order, reps)
}

/// Inserts view `index` (with concept `concept`) into the lattice built
/// from the already-classified views.
///
/// Top-down parent search, equivalence collapse, bottom-up child search,
/// then Hasse rewiring (dropping parent→child edges the new node now
/// mediates). See the module doc for the cost argument.
fn classify_one(
    views: &mut [MaterializedView],
    index: usize,
    concept: ConceptId,
    oracle: &mut impl ClassifyOracle,
) {
    let n = views.len();
    let is_rep = |views: &[MaterializedView], j: usize| {
        j != index && views[j].classified && views[j].equiv.is_none()
    };

    // Phase 1 — top-down parent search: `sup[j]` memoizes `new ⊑ view j`.
    // Descend only below subsuming views (a non-subsumer's descendants
    // cannot subsume either).
    let mut sup: Vec<Option<bool>> = vec![None; n];
    let mut stack: Vec<usize> = (0..n)
        .filter(|&j| is_rep(views, j) && views[j].parents.is_empty())
        .collect();
    while let Some(j) = stack.pop() {
        if sup[j].is_some() {
            continue;
        }
        let holds = oracle.subsumes(concept, views[j].concept.expect("reps have concepts"));
        sup[j] = Some(holds);
        if holds {
            for &c in &views[j].children {
                if sup[c].is_none() {
                    stack.push(c);
                }
            }
        }
    }
    let parents: Vec<usize> = (0..n)
        .filter(|&j| {
            sup[j] == Some(true) && views[j].children.iter().all(|&c| sup[c] != Some(true))
        })
        .collect();

    // Phase 2 — equivalence: a parent that is also subsumed by the new
    // view shares its concept up to Σ-equivalence; collapse into its node.
    for &p in &parents {
        if oracle.subsumes(views[p].concept.expect("reps have concepts"), concept) {
            views[index].equiv = Some(p);
            views[index].classified = true;
            return;
        }
    }

    // Phase 3 — bottom-up child search below the parents (or from the
    // roots when the newcomer is a new root): walk down through
    // non-subsumed views, stopping at the first `view ⊑ new` of every
    // branch — those are the candidate children.
    let mut sub: Vec<Option<bool>> = vec![None; n];
    let mut candidates: Vec<usize> = Vec::new();
    let mut stack: Vec<usize> = if parents.is_empty() {
        (0..n)
            .filter(|&j| is_rep(views, j) && views[j].parents.is_empty())
            .collect()
    } else {
        parents
            .iter()
            .flat_map(|&p| views[p].children.iter().copied())
            .collect()
    };
    while let Some(j) = stack.pop() {
        if sub[j].is_some() {
            continue;
        }
        let holds = oracle.subsumes(views[j].concept.expect("reps have concepts"), concept);
        sub[j] = Some(holds);
        if holds {
            candidates.push(j);
        } else {
            for &c in &views[j].children {
                if sub[c].is_none() {
                    stack.push(c);
                }
            }
        }
    }
    // Keep only the maximal (most general) candidates: drop a candidate
    // when one of its strict ancestors is also a candidate — the ancestor
    // subsumes it, so the descendant's edge would be transitive. DAG
    // reachability decides this without further probes.
    let mut is_candidate: Vec<bool> = vec![false; n];
    for &c in &candidates {
        is_candidate[c] = true;
    }
    let children: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| {
            let mut up: Vec<usize> = views[c].parents.clone();
            let mut seen: Vec<bool> = vec![false; n];
            while let Some(a) = up.pop() {
                if seen[a] {
                    continue;
                }
                seen[a] = true;
                if is_candidate[a] {
                    return false;
                }
                up.extend(views[a].parents.iter().copied());
            }
            true
        })
        .collect();

    // Phase 4 — rewire: the new node now mediates every parent→child pair
    // it sits between.
    for &p in &parents {
        for &c in &children {
            views[p].children.retain(|&x| x != c);
            views[c].parents.retain(|&x| x != p);
        }
    }
    for &p in &parents {
        views[p].children.push(index);
    }
    for &c in &children {
        views[c].parents.push(index);
    }
    views[index].parents = parents;
    views[index].children = children;
    views[index].classified = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_query;
    use subq_dl::samples;

    fn db() -> Database {
        crate::store::tests::hospital()
    }

    #[test]
    fn materializing_a_view_stores_its_extent() {
        let db = db();
        let model = samples::medical_model();
        let catalog = ViewCatalog::new();
        let view = model.query_class("ViewPatient").expect("declared");
        catalog.materialize(&db, view).expect("materializes");
        let stored = catalog.view("ViewPatient").expect("stored");
        assert_eq!(stored.fresh_as_of, db.data_version());
        assert!(!stored.classified);
        assert_eq!(*stored.extent, evaluate_query(&db, view));
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.view_names(), vec!["ViewPatient".to_owned()]);
    }

    #[test]
    fn non_structural_queries_cannot_be_materialized() {
        let db = db();
        let model = samples::medical_model();
        let catalog = ViewCatalog::new();
        let query = model.query_class("QueryPatient").expect("declared");
        let err = catalog.materialize(&db, query).expect_err("must fail");
        assert!(matches!(err, ViewError::NotStructural { .. }));
        assert!(catalog.is_empty());
    }

    #[test]
    fn double_materialization_is_rejected() {
        let db = db();
        let model = samples::medical_model();
        let catalog = ViewCatalog::new();
        let view = model.query_class("ViewPatient").expect("declared");
        catalog.materialize(&db, view).expect("first");
        let err = catalog
            .materialize(&db, view)
            .expect_err("second must fail");
        assert!(matches!(err, ViewError::AlreadyMaterialized { .. }));
    }

    #[test]
    fn versioned_staleness_tracks_database_changes() {
        let mut db = db();
        let model = samples::medical_model();
        let catalog = ViewCatalog::new();
        let view = model.query_class("ViewPatient").expect("declared");
        catalog.materialize(&db, view).expect("materializes");
        let before = catalog.view("ViewPatient").expect("stored").extent.len();

        // A new conforming patient appears; the view's snapshot version
        // now lags the database's.
        let anna = db.add_object("anna");
        let anna_name = db.add_object("anna_name");
        let flu = db.object("flu").expect("exists");
        let welby = db.object("welby").expect("exists");
        db.assert_class(anna, "Patient");
        db.assert_class(anna_name, "String");
        db.assert_attr(anna, "name", anna_name);
        db.assert_attr(anna, "suffers", flu);
        db.assert_attr(anna, "consults", welby);

        let stored = catalog.view("ViewPatient").expect("stored");
        assert!(stored.fresh_as_of < db.data_version(), "stale by version");
        catalog.refresh(&db);
        let after = catalog.view("ViewPatient").expect("stored");
        assert_eq!(after.fresh_as_of, db.data_version());
        assert_eq!(after.extent.len(), before + 1);
        let stats = catalog.maintenance_stats();
        assert!(stats.deltas_applied > 0);
        assert!(stats.memberships_evaluated <= stats.candidates_examined);

        // The incremental result agrees with the full-re-evaluation
        // oracle and with a scratch evaluation.
        assert_eq!(*after.extent, evaluate_query(&db, view));
        catalog.invalidate();
        catalog.refresh_full(&db);
        assert_eq!(
            catalog.view("ViewPatient").expect("stored").extent,
            after.extent
        );
    }

    #[test]
    fn forced_invalidation_and_truncated_logs_reevaluate_in_full() {
        let mut db = db();
        let model = samples::medical_model();
        let catalog = ViewCatalog::new();
        let view = model.query_class("ViewPatient").expect("declared");
        catalog.materialize(&db, view).expect("materializes");
        let expected = catalog.view("ViewPatient").expect("stored").extent;

        // `invalidate` forces a full re-derivation even though no delta
        // was logged since the snapshot.
        catalog.invalidate();
        catalog.refresh(&db);
        assert_eq!(
            catalog.view("ViewPatient").expect("stored").extent,
            expected
        );
        assert_eq!(catalog.maintenance_stats().full_reevaluations, 1);
        // The flag is consumed: refreshing again does nothing.
        catalog.refresh(&db);
        assert_eq!(catalog.maintenance_stats().full_reevaluations, 1);

        // A log truncated past a view's snapshot also falls back to full
        // re-evaluation.
        db.assert_class(db.object("mary").expect("exists"), "Doctor");
        db.truncate_log(db.data_version());
        catalog.refresh(&db);
        assert_eq!(
            *catalog.view("ViewPatient").expect("stored").extent,
            evaluate_query(&db, view)
        );
        assert_eq!(catalog.maintenance_stats().full_reevaluations, 2);
    }

    /// Satellite regression test: a transaction whose deltas route to
    /// **zero** views through the dependency index must not touch any
    /// view state — no write lock, no per-view bookkeeping, no
    /// candidate allocation. The `MaintenanceStats` account for the
    /// short-circuit, and the scanned-through version is cached so the
    /// next refresh skips even the scan.
    #[test]
    fn refreshes_routing_zero_views_return_early() {
        let mut db = db();
        let catalog = ViewCatalog::new();
        // A view on doctors only: it depends on the `Doctor` extent and
        // nothing else.
        let doctors = QueryClassDecl {
            name: "AllDoctors".into(),
            is_a: vec!["Doctor".into()],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        catalog.materialize(&db, &doctors).expect("materializes");
        let fresh_as_of = catalog.view("AllDoctors").expect("stored").fresh_as_of;

        // A transaction that touches only the Disease extent.
        let measles = db.add_object("measles");
        db.assert_class(measles, "Disease");
        assert!(db.data_version() > fresh_as_of);

        let before = catalog.maintenance_stats();
        catalog.refresh(&db);
        let after = catalog.maintenance_stats();
        assert_eq!(after.empty_refreshes, before.empty_refreshes + 1);
        assert_eq!(after.deltas_applied, before.deltas_applied);
        assert_eq!(after.candidates_examined, before.candidates_examined);
        assert_eq!(after.full_reevaluations, before.full_reevaluations);
        // No view state was touched: the snapshot version is unchanged.
        let view = catalog.view("AllDoctors").expect("stored");
        assert_eq!(view.fresh_as_of, fresh_as_of);

        // The second refresh takes the cached-scan fast path: not even a
        // new empty-refresh pass is recorded.
        catalog.refresh(&db);
        assert_eq!(
            catalog.maintenance_stats().empty_refreshes,
            after.empty_refreshes
        );

        // A delta that *does* route to the view still propagates, across
        // the whole lagging window, and the extension stays correct.
        let house = db.add_object("house");
        db.assert_class(house, "Doctor");
        catalog.refresh(&db);
        let view = catalog.view("AllDoctors").expect("stored");
        assert_eq!(view.fresh_as_of, db.data_version());
        assert_eq!(*view.extent, evaluate_query(&db, &doctors));
        assert!(view.extent.contains(&house));
        let stats = catalog.maintenance_stats();
        assert!(stats.deltas_applied > after.deltas_applied);
    }

    /// When routed-nothing churn accumulates past the consolidation lag,
    /// an empty refresh bumps `fresh_as_of` (one u64 store per view, no
    /// evaluation) so the writer's log truncation is not held back
    /// forever — without it the log would grow to its cap and eventually
    /// force full re-evaluations of views that were never affected.
    #[test]
    fn long_routed_nothing_churn_consolidates_fresh_as_of() {
        let mut db = db();
        let catalog = ViewCatalog::new();
        let doctors = QueryClassDecl {
            name: "AllDoctors".into(),
            is_a: vec!["Doctor".into()],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        catalog.materialize(&db, &doctors).expect("materializes");
        let start = catalog.view("AllDoctors").expect("stored").fresh_as_of;

        // Irrelevant churn well past the consolidation lag, refreshing
        // along the way (each refresh is empty).
        let mut refreshed_at = Vec::new();
        while db.data_version() < start + super::ROUTED_LAG_CONSOLIDATE + 64 {
            let obj = db.add_object(&format!("d{}", db.data_version()));
            db.assert_class(obj, "Disease");
            if db.data_version().is_multiple_of(256) {
                catalog.refresh(&db);
                refreshed_at.push(db.data_version());
            }
        }
        catalog.refresh(&db);
        let view = catalog.view("AllDoctors").expect("stored");
        assert!(
            view.fresh_as_of > start + super::ROUTED_LAG_CONSOLIDATE,
            "fresh_as_of {} never consolidated past the lag (start {start})",
            view.fresh_as_of
        );
        // Consolidation never evaluated anything, and correctness under a
        // later *relevant* delta is preserved.
        let stats = catalog.maintenance_stats();
        assert_eq!(stats.memberships_evaluated, 0);
        assert!(stats.empty_refreshes > 0);
        let house = db.add_object("house");
        db.assert_class(house, "Doctor");
        catalog.refresh(&db);
        let view = catalog.view("AllDoctors").expect("stored");
        assert_eq!(*view.extent, evaluate_query(&db, &doctors));
        assert!(view.extent.contains(&house));
    }

    /// `invalidate` must force re-derivation even at data version 0,
    /// where every version comparison says "fresh" — the flag, not the
    /// version, carries the invalidation (regression: schema mutations
    /// produce no data deltas).
    #[test]
    fn invalidate_forces_rederivation_even_at_data_version_zero() {
        let db = Database::new(subq_dl::DlModel::new());
        assert_eq!(db.data_version(), 0);
        let catalog = ViewCatalog::new();
        catalog
            .materialize(&db, &trivial_view("V0"))
            .expect("materializes");
        catalog.invalidate();
        catalog.refresh(&db);
        assert_eq!(catalog.maintenance_stats().full_reevaluations, 1);
        // `refresh_full` honours and consumes the flag too.
        catalog.invalidate();
        catalog.refresh_full(&db);
        catalog.refresh(&db);
        assert_eq!(catalog.maintenance_stats().full_reevaluations, 1);
    }

    /// A scripted oracle over toy concepts lets the graph algorithm be
    /// tested without the calculus: subsumption is the divisibility order
    /// on small integers (a ⊑ b iff b divides a), whose Hasse diagram over
    /// {1,2,3,4,6,12} is the classic diamond-of-diamonds. Each number is
    /// interned as one real arena concept so `ConceptId`s stay opaque.
    struct DivisibilityOracle {
        voc: subq_concepts::symbol::Vocabulary,
        arena: subq_concepts::term::TermArena,
        numbers: std::collections::HashMap<ConceptId, u32>,
    }

    impl DivisibilityOracle {
        fn new() -> Self {
            DivisibilityOracle {
                voc: subq_concepts::symbol::Vocabulary::new(),
                arena: subq_concepts::term::TermArena::new(),
                numbers: std::collections::HashMap::new(),
            }
        }

        fn concept_for(&mut self, n: u32) -> ConceptId {
            let class = self.voc.class(&format!("N{n}"));
            let concept = self.arena.prim(class);
            self.numbers.insert(concept, n);
            concept
        }

        fn number(&self, concept: ConceptId) -> u32 {
            self.numbers[&concept]
        }
    }

    impl ClassifyOracle for DivisibilityOracle {
        fn concept_of(&mut self, definition: &QueryClassDecl) -> Option<ConceptId> {
            // Concept = the number encoded in the view name "D<number>".
            let n = definition.name[1..].parse::<u32>().ok()?;
            Some(self.concept_for(n))
        }
        fn subsumes(&mut self, sub: ConceptId, sup: ConceptId) -> bool {
            self.number(sub).is_multiple_of(self.number(sup))
        }
    }

    fn trivial_view(name: &str) -> QueryClassDecl {
        QueryClassDecl {
            name: name.into(),
            is_a: vec![],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        }
    }

    fn divisibility_catalog(numbers: &[u32]) -> (ViewCatalog, DivisibilityOracle) {
        let db = Database::new(subq_dl::DlModel::new());
        let catalog = ViewCatalog::new();
        for n in numbers {
            catalog
                .materialize(&db, &trivial_view(&format!("D{n}")))
                .expect("materializes");
        }
        let mut oracle = DivisibilityOracle::new();
        catalog.classify_pending(&mut oracle);
        (catalog, oracle)
    }

    #[test]
    fn classification_builds_the_divisibility_hasse_diagram() {
        // 1 is the top (divides everything ⇒ everything ⊑ 1).
        let (catalog, _) = divisibility_catalog(&[1, 2, 3, 4, 6, 12]);
        assert!(catalog.lattice_violations().is_empty());
        let mut edges = catalog.lattice_edges();
        edges.sort();
        let expect = |p: &str, c: &str| (p.to_owned(), c.to_owned());
        assert_eq!(
            edges,
            vec![
                expect("D1", "D2"),
                expect("D1", "D3"),
                expect("D2", "D4"),
                expect("D2", "D6"),
                expect("D3", "D6"),
                expect("D4", "D12"),
                expect("D6", "D12"),
            ]
        );
    }

    #[test]
    fn classification_is_insertion_order_independent() {
        let mut expected: Option<Vec<(String, String)>> = None;
        for order in [
            vec![1u32, 2, 3, 4, 6, 12],
            vec![12, 6, 4, 3, 2, 1],
            vec![6, 1, 12, 2, 4, 3],
        ] {
            let (catalog, _) = divisibility_catalog(&order);
            assert!(catalog.lattice_violations().is_empty(), "order {order:?}");
            let mut edges = catalog.lattice_edges();
            edges.sort();
            match &expected {
                None => expected = Some(edges),
                Some(first) => assert_eq!(&edges, first, "order {order:?}"),
            }
        }
    }

    #[test]
    fn equivalent_views_collapse_into_one_node() {
        // D6 and E6 encode the same number — the second becomes a peer of
        // the first.
        let db = Database::new(subq_dl::DlModel::new());
        let catalog = ViewCatalog::new();
        for name in ["D2", "D6", "E6", "D12"] {
            catalog
                .materialize(&db, &trivial_view(name))
                .expect("materializes");
        }
        let mut oracle = DivisibilityOracle::new();
        catalog.classify_pending(&mut oracle);
        assert!(catalog.lattice_violations().is_empty());
        let e6 = catalog.view("E6").expect("stored");
        assert_eq!(e6.equiv, Some(1), "E6 collapses onto D6");
        // Traversal: a query equal to 12 is subsumed by everything; the
        // frontier is D12 alone (most specific).
        let result = catalog.traverse(|c| 12 % oracle.number(c) == 0);
        let names: Vec<&str> = result.frontier.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["D12"]);
        // A query equal to 6: frontier is the equivalence class {D6, E6}.
        let result = catalog.traverse(|c| 6 % oracle.number(c) == 0);
        let mut names: Vec<&str> = result.frontier.iter().map(|(n, _)| n.as_str()).collect();
        names.sort();
        assert_eq!(names, vec!["D6", "E6"]);
    }

    #[test]
    fn traversal_prunes_failed_subtrees() {
        let (catalog, oracle) = divisibility_catalog(&[1, 2, 3, 4, 6, 12]);
        // Query = 4: subsumed by 1, 2, 4. The probe of 3 fails, pruning 6;
        // 12 is below the failed 6 (and below 4) — probed only when every
        // parent holds, so it is pruned too.
        let mut probed = Vec::new();
        let result = catalog.traverse(|c| {
            probed.push(oracle.number(c));
            4 % oracle.number(c) == 0
        });
        let names: Vec<&str> = result.frontier.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["D4"]);
        assert!(!probed.contains(&6), "6 must be pruned after 3 fails");
        assert!(!probed.contains(&12), "12 must be pruned");
        assert_eq!(result.probes, 4); // 1, 2, 3, 4
        assert_eq!(result.pruned, 2); // 6, 12
        assert_eq!(result.depth, 3); // 1 → 2 → 4
        assert!(result.probes + result.pruned == catalog.len());
    }

    /// Eviction removes a node, resets positional edges, and the next
    /// classification pass rebuilds a consistent sub-diagram; putting the
    /// view back restores the original diagram exactly.
    #[test]
    fn evicting_and_rematerializing_keeps_the_lattice_consistent() {
        let db = Database::new(subq_dl::DlModel::new());
        let (catalog, mut oracle) = divisibility_catalog(&[1, 2, 3, 4, 6, 12]);
        let mut full_edges = catalog.lattice_edges();
        full_edges.sort();

        assert!(catalog.evict("D6"), "view existed");
        assert!(!catalog.evict("D6"), "second evict is a no-op");
        assert_eq!(catalog.len(), 5);
        assert!(
            catalog.lattice_violations().is_empty(),
            "reset lattice is clean"
        );
        catalog.classify_pending(&mut oracle);
        assert!(catalog.lattice_violations().is_empty());
        let mut edges = catalog.lattice_edges();
        edges.sort();
        let expect = |p: &str, c: &str| (p.to_owned(), c.to_owned());
        assert_eq!(
            edges,
            vec![
                expect("D1", "D2"),
                expect("D1", "D3"),
                expect("D2", "D4"),
                expect("D3", "D12"),
                expect("D4", "D12"),
            ],
            "D12 reattaches to D3 and D4 once D6 is gone"
        );

        catalog
            .materialize(&db, &trivial_view("D6"))
            .expect("re-materializes after eviction");
        catalog.classify_pending(&mut oracle);
        assert!(catalog.lattice_violations().is_empty());
        let mut edges = catalog.lattice_edges();
        edges.sort();
        assert_eq!(edges, full_edges, "re-materialization restores the diagram");
    }

    #[test]
    fn schema_invalidation_resets_the_lattice() {
        let (catalog, _) = divisibility_catalog(&[1, 2, 4]);
        assert_eq!(catalog.classified_count(), 3);
        catalog.invalidate_concepts();
        assert_eq!(catalog.classified_count(), 0);
        assert!(catalog.lattice_edges().is_empty());
        assert!(catalog.lattice_violations().is_empty());
        // Reclassification rebuilds the same diagram.
        catalog.classify_pending(&mut DivisibilityOracle::new());
        let mut edges = catalog.lattice_edges();
        edges.sort();
        assert_eq!(edges.len(), 2);
        assert!(catalog.lattice_violations().is_empty());
    }
}
