//! Materialized views.
//!
//! A view is a query class whose constraint part is empty (Section 2.2);
//! its answers may be materialized — stored explicitly — so that access to
//! them is as fast as to any schema class. The catalog below stores the
//! extensions, refreshes them when the database changes, and is shared
//! behind a read–write lock so that many queries can consult it
//! concurrently (the "trader" scenario sketched in Section 6).

use crate::eval::evaluate_query;
use crate::store::{Database, ObjId};
use std::collections::BTreeSet;
use std::sync::RwLock;
use subq_concepts::term::ConceptId;
use subq_dl::QueryClassDecl;

/// A materialized view: a structural query class together with its stored
/// extension.
#[derive(Clone, Debug)]
pub struct MaterializedView {
    /// The view definition (a query class without a constraint clause).
    pub definition: QueryClassDecl,
    /// The stored extension.
    pub extent: BTreeSet<ObjId>,
    /// Whether the extension reflects the current database state.
    pub fresh: bool,
    /// The translated QL concept of the definition, cached by the planner
    /// after the first translation (valid for one `TranslatedModel`;
    /// dropped by [`ViewCatalog::invalidate_concepts`] on schema change).
    pub concept: Option<ConceptId>,
}

impl MaterializedView {
    /// The number of stored answers.
    pub fn len(&self) -> usize {
        self.extent.len()
    }

    /// Whether the view is currently empty.
    pub fn is_empty(&self) -> bool {
        self.extent.is_empty()
    }
}

/// Errors raised when materializing a query class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewError {
    /// The query class has a constraint clause; it is not a view and using
    /// its stored answers for subsumed queries would be unsound.
    NotStructural { query: String },
    /// A view with this name is already materialized.
    AlreadyMaterialized { query: String },
    /// The name denotes neither a query class nor a schema class.
    UnknownQuery { query: String },
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::NotStructural { query } => write!(
                f,
                "query class `{query}` has a constraint clause and cannot be materialized as a view"
            ),
            ViewError::AlreadyMaterialized { query } => {
                write!(f, "view `{query}` is already materialized")
            }
            ViewError::UnknownQuery { query } => {
                write!(f, "`{query}` is neither a query class nor a schema class")
            }
        }
    }
}

impl std::error::Error for ViewError {}

/// The catalog of materialized views.
#[derive(Debug, Default)]
pub struct ViewCatalog {
    views: RwLock<Vec<MaterializedView>>,
}

impl ViewCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        ViewCatalog::default()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Vec<MaterializedView>> {
        self.views.read().expect("view catalog lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Vec<MaterializedView>> {
        self.views.write().expect("view catalog lock poisoned")
    }

    /// Materializes a view: evaluates it once and stores the extension.
    pub fn materialize(&self, db: &Database, definition: &QueryClassDecl) -> Result<(), ViewError> {
        if !definition.is_view() {
            return Err(ViewError::NotStructural {
                query: definition.name.clone(),
            });
        }
        let mut views = self.write();
        if views.iter().any(|v| v.definition.name == definition.name) {
            return Err(ViewError::AlreadyMaterialized {
                query: definition.name.clone(),
            });
        }
        let extent = evaluate_query(db, definition);
        views.push(MaterializedView {
            definition: definition.clone(),
            extent,
            fresh: true,
            concept: None,
        });
        Ok(())
    }

    /// The names of all materialized views.
    pub fn view_names(&self) -> Vec<String> {
        self.read()
            .iter()
            .map(|v| v.definition.name.clone())
            .collect()
    }

    /// A snapshot of one view.
    pub fn view(&self, name: &str) -> Option<MaterializedView> {
        self.read()
            .iter()
            .find(|v| v.definition.name == name)
            .cloned()
    }

    /// A snapshot of all views.
    pub fn snapshot(&self) -> Vec<MaterializedView> {
        self.read().clone()
    }

    /// A snapshot of definitions and extent sizes only — without cloning
    /// the stored extents.
    pub fn summaries(&self) -> Vec<(QueryClassDecl, usize)> {
        self.read()
            .iter()
            .map(|v| (v.definition.clone(), v.extent.len()))
            .collect()
    }

    /// What the planner needs per view: name, extent size, and the cached
    /// translated concept — no definition or extent clones. Views whose
    /// concept entry is `None` have not been translated since the last
    /// schema change; [`ViewCatalog::plan_entries_with`] fills them in.
    pub fn plan_entries(&self) -> Vec<(String, usize, Option<ConceptId>)> {
        self.read()
            .iter()
            .map(|v| (v.definition.name.clone(), v.extent.len(), v.concept))
            .collect()
    }

    /// One pass over the catalog for the planner: views whose concept is
    /// not cached yet are translated through `translate` and the result is
    /// stored back, all under a single lock acquisition (no per-view
    /// lookups or definition clones). Views that fail to translate are
    /// skipped; they are retried on the next plan.
    pub fn plan_entries_with(
        &self,
        mut translate: impl FnMut(&QueryClassDecl) -> Option<ConceptId>,
    ) -> Vec<(String, usize, ConceptId)> {
        let mut views = self.write();
        let mut entries = Vec::with_capacity(views.len());
        for view in views.iter_mut() {
            let concept = match view.concept {
                Some(concept) => concept,
                None => match translate(&view.definition) {
                    Some(concept) => {
                        view.concept = Some(concept);
                        concept
                    }
                    None => continue,
                },
            };
            entries.push((view.definition.name.clone(), view.extent.len(), concept));
        }
        entries
    }

    /// Drops every cached translated concept (called when the schema — and
    /// with it the arena the `ConceptId`s point into — is re-translated).
    pub fn invalidate_concepts(&self) {
        for view in self.write().iter_mut() {
            view.concept = None;
        }
    }

    /// Marks every view as stale (called after database updates).
    pub fn invalidate(&self) {
        for view in self.write().iter_mut() {
            view.fresh = false;
        }
    }

    /// Re-evaluates every stale view against the current state.
    pub fn refresh(&self, db: &Database) {
        for view in self.write().iter_mut() {
            if !view.fresh {
                view.extent = evaluate_query(db, &view.definition);
                view.fresh = true;
            }
        }
    }

    /// Number of materialized views.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_dl::samples;

    fn db() -> Database {
        crate::store::tests::hospital()
    }

    #[test]
    fn materializing_a_view_stores_its_extent() {
        let db = db();
        let model = samples::medical_model();
        let catalog = ViewCatalog::new();
        let view = model.query_class("ViewPatient").expect("declared");
        catalog.materialize(&db, view).expect("materializes");
        let stored = catalog.view("ViewPatient").expect("stored");
        assert!(stored.fresh);
        assert_eq!(stored.extent, evaluate_query(&db, view));
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.view_names(), vec!["ViewPatient".to_owned()]);
    }

    #[test]
    fn non_structural_queries_cannot_be_materialized() {
        let db = db();
        let model = samples::medical_model();
        let catalog = ViewCatalog::new();
        let query = model.query_class("QueryPatient").expect("declared");
        let err = catalog.materialize(&db, query).expect_err("must fail");
        assert!(matches!(err, ViewError::NotStructural { .. }));
        assert!(catalog.is_empty());
    }

    #[test]
    fn double_materialization_is_rejected() {
        let db = db();
        let model = samples::medical_model();
        let catalog = ViewCatalog::new();
        let view = model.query_class("ViewPatient").expect("declared");
        catalog.materialize(&db, view).expect("first");
        let err = catalog
            .materialize(&db, view)
            .expect_err("second must fail");
        assert!(matches!(err, ViewError::AlreadyMaterialized { .. }));
    }

    #[test]
    fn invalidate_and_refresh_track_database_changes() {
        let mut db = db();
        let model = samples::medical_model();
        let catalog = ViewCatalog::new();
        let view = model.query_class("ViewPatient").expect("declared");
        catalog.materialize(&db, view).expect("materializes");
        let before = catalog.view("ViewPatient").expect("stored").extent.len();

        // A new conforming patient appears.
        let anna = db.add_object("anna");
        let anna_name = db.add_object("anna_name");
        let flu = db.object("flu").expect("exists");
        let welby = db.object("welby").expect("exists");
        db.assert_class(anna, "Patient");
        db.assert_class(anna_name, "String");
        db.assert_attr(anna, "name", anna_name);
        db.assert_attr(anna, "suffers", flu);
        db.assert_attr(anna, "consults", welby);

        catalog.invalidate();
        assert!(!catalog.view("ViewPatient").expect("stored").fresh);
        catalog.refresh(&db);
        let after = catalog.view("ViewPatient").expect("stored");
        assert!(after.fresh);
        assert_eq!(after.extent.len(), before + 1);
    }
}
