//! Cross-validation of the conjunctive-query machinery against the QL
//! semantics and against the structural subsumption calculus.
//!
//! Two properties matter for the paper's claims:
//!
//! 1. the CQ translation is *exact*: evaluating the translated query over
//!    any finite interpretation yields the concept's extension, and
//! 2. on the empty schema, the polynomial calculus decides exactly
//!    conjunctive-query containment for QL-expressible queries — i.e. it is
//!    sound and complete on the fragment (Theorem 4.7 with Σ = ∅), matching
//!    the NP-complete Chandra–Merlin oracle answer for answer.

use proptest::prelude::*;
use subq_calculus::SubsumptionChecker;
use subq_concepts::prelude::*;
use subq_conjunctive::{concept_to_cq, contains, evaluate};

const N_CLASSES: usize = 3;
const N_ATTRS: usize = 2;
const N_CONSTS: usize = 2;

#[derive(Clone, Debug)]
enum Desc {
    Prim(usize),
    Top,
    Singleton(usize),
    And(Box<Desc>, Box<Desc>),
    Exists(Vec<(usize, bool, Desc)>),
    Agree(Vec<(usize, bool, Desc)>, Vec<(usize, bool, Desc)>),
}

fn desc() -> impl Strategy<Value = Desc> {
    let leaf = prop_oneof![
        (0..N_CLASSES).prop_map(Desc::Prim),
        Just(Desc::Top),
        (0..N_CONSTS).prop_map(Desc::Singleton),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        let step = (0..N_ATTRS, any::<bool>(), inner.clone());
        let path = prop::collection::vec(step, 1..3);
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Desc::And(Box::new(a), Box::new(b))),
            path.clone().prop_map(Desc::Exists),
            (path.clone(), path).prop_map(|(p, q)| Desc::Agree(p, q)),
        ]
    })
}

struct World {
    arena: TermArena,
    classes: Vec<ClassId>,
    attrs: Vec<AttrId>,
    consts: Vec<ConstId>,
}

fn world() -> World {
    let mut voc = Vocabulary::new();
    World {
        classes: (0..N_CLASSES)
            .map(|i| voc.class(&format!("K{i}")))
            .collect(),
        attrs: (0..N_ATTRS)
            .map(|i| voc.attribute(&format!("r{i}")))
            .collect(),
        consts: (0..N_CONSTS)
            .map(|i| voc.constant(&format!("c{i}")))
            .collect(),
        arena: TermArena::new(),
    }
}

fn intern(w: &mut World, d: &Desc) -> ConceptId {
    match d {
        Desc::Prim(i) => w.arena.prim(w.classes[*i]),
        Desc::Top => w.arena.top(),
        Desc::Singleton(i) => w.arena.singleton(w.consts[*i]),
        Desc::And(a, b) => {
            let l = intern(w, a);
            let r = intern(w, b);
            w.arena.and(l, r)
        }
        Desc::Exists(p) => {
            let path = intern_path(w, p);
            w.arena.exists(path)
        }
        Desc::Agree(p, q) => {
            let pp = intern_path(w, p);
            let qq = intern_path(w, q);
            w.arena.agree(pp, qq)
        }
    }
}

fn intern_path(w: &mut World, steps: &[(usize, bool, Desc)]) -> PathId {
    let interned: Vec<(Attr, ConceptId)> = steps
        .iter()
        .map(|(a, inv, d)| {
            let c = intern(w, d);
            let attr = if *inv {
                Attr::inverse_of(w.attrs[*a])
            } else {
                Attr::primitive(w.attrs[*a])
            };
            (attr, c)
        })
        .collect();
    w.arena.path_of(&interned)
}

#[derive(Clone, Debug)]
struct InterpDesc {
    domain: u32,
    members: Vec<(usize, u32)>,
    edges: Vec<(usize, u32, u32)>,
    consts: Vec<u32>,
}

fn interp_desc() -> impl Strategy<Value = InterpDesc> {
    (2u32..4).prop_flat_map(|domain| {
        (
            Just(domain),
            prop::collection::vec((0..N_CLASSES, 0..domain), 0..8),
            prop::collection::vec((0..N_ATTRS, 0..domain, 0..domain), 0..10),
            prop::collection::vec(0..domain, N_CONSTS),
        )
            .prop_map(|(domain, members, edges, consts)| InterpDesc {
                domain,
                members,
                edges,
                consts,
            })
    })
}

fn build_interp(w: &World, d: &InterpDesc) -> Interpretation {
    let mut interp = Interpretation::new(d.domain);
    for (c, e) in &d.members {
        interp.add_class_member(w.classes[*c], Element(*e));
    }
    for (a, from, to) in &d.edges {
        interp.add_attr_pair(w.attrs[*a], Element(*from), Element(*to));
    }
    let mut used = std::collections::HashSet::new();
    for (i, base) in d.consts.iter().enumerate() {
        let mut elem = *base % d.domain;
        let mut tries = 0;
        while used.contains(&elem) && tries < d.domain {
            elem = (elem + 1) % d.domain;
            tries += 1;
        }
        if used.insert(elem) {
            interp.set_constant(w.consts[i], Element(elem));
        }
    }
    interp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CQ translation is exact: evaluation of the translated query
    /// over any interpretation equals the concept's extension.
    #[test]
    fn cq_translation_is_exact(c in desc(), i in interp_desc()) {
        let mut w = world();
        let concept = intern(&mut w, &c);
        let interp = build_interp(&w, &i);
        let cq = concept_to_cq(&w.arena, concept);
        prop_assert_eq!(evaluate(&cq, &interp), interp.eval_concept(&w.arena, concept));
    }

    /// On the empty schema, the polynomial structural calculus and the
    /// NP-complete Chandra–Merlin containment test give the same answer on
    /// every pair of QL concepts (soundness *and* completeness on the
    /// fragment, Theorem 4.7 with Σ = ∅).
    #[test]
    fn calculus_agrees_with_chandra_merlin_on_empty_schema(c in desc(), d in desc()) {
        let mut w = world();
        let cc = intern(&mut w, &c);
        let dd = intern(&mut w, &d);
        let cq_c = concept_to_cq(&w.arena, cc);
        let cq_d = concept_to_cq(&w.arena, dd);
        let oracle = contains(&cq_c, &cq_d);
        let schema = Schema::new();
        let checker = SubsumptionChecker::new(&schema);
        let calculus = checker.subsumes(&mut w.arena, cc, dd);
        prop_assert_eq!(
            calculus, oracle,
            "calculus and CQ containment disagree on {:?} vs {:?}", c, d
        );
    }

    /// Containment is reflexive and ⊤-bounded at the CQ level as well.
    #[test]
    fn cq_containment_basic_laws(c in desc()) {
        let mut w = world();
        let concept = intern(&mut w, &c);
        let top = w.arena.top();
        let cq = concept_to_cq(&w.arena, concept);
        let cq_top = concept_to_cq(&w.arena, top);
        prop_assert!(contains(&cq, &cq));
        prop_assert!(contains(&cq, &cq_top));
    }
}
