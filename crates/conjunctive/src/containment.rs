//! Containment and evaluation of conjunctive queries by homomorphism
//! search (Chandra–Merlin).
//!
//! `Q₁ ⊆ Q₂` holds iff there is a homomorphism from `Q₂` into the
//! *canonical database* of `Q₁` (the query body with its variables frozen
//! to fresh constants) that maps answer variable to answer variable. The
//! search below is a straightforward backtracking matcher and therefore
//! worst-case exponential — which is precisely the baseline the paper
//! contrasts its polynomial structural calculus against (Section 5,
//! "Conjunctive Queries").

use crate::cq::{ConjunctiveQuery, CqAtom, CqTerm, CqVar};
use std::collections::{BTreeSet, HashMap};
use subq_concepts::interpretation::{Element, Interpretation};

/// Freezes a conjunctive query into its canonical database.
///
/// Returns the interpretation, the element assigned to each term, and the
/// element of the answer variable.
pub fn freeze(query: &ConjunctiveQuery) -> (Interpretation, HashMap<CqTerm, Element>, Element) {
    let mut interp = Interpretation::new(0);
    let mut element_of: HashMap<CqTerm, Element> = HashMap::new();

    let assign = |term: CqTerm, interp: &mut Interpretation, map: &mut HashMap<CqTerm, Element>| {
        if let Some(&e) = map.get(&term) {
            return e;
        }
        let e = interp.add_element();
        map.insert(term, e);
        if let CqTerm::Const(c) = term {
            interp.set_constant(c, e);
        }
        e
    };

    // When the answer variable is bound to a constant, the head element is
    // that constant's element.
    let head_term = match query.head_constant {
        Some(c) => CqTerm::Const(c),
        None => CqTerm::Var(query.head),
    };
    let head = assign(head_term, &mut interp, &mut element_of);
    element_of.entry(CqTerm::Var(query.head)).or_insert(head);
    for atom in &query.atoms {
        match *atom {
            CqAtom::Class(class, t) => {
                let e = assign(t, &mut interp, &mut element_of);
                interp.add_class_member(class, e);
            }
            CqAtom::Attr(attr, s, t) => {
                let es = assign(s, &mut interp, &mut element_of);
                let et = assign(t, &mut interp, &mut element_of);
                interp.add_attr_pair(attr, es, et);
            }
        }
    }
    (interp, element_of, head)
}

/// Whether there is a homomorphism from `query` into `interp` mapping the
/// answer variable to `target`.
pub fn has_homomorphism(
    query: &ConjunctiveQuery,
    interp: &Interpretation,
    target: Element,
) -> bool {
    if query.inconsistent {
        return false;
    }
    // An answer variable bound to a constant only matches that constant's
    // element.
    if let Some(c) = query.head_constant {
        if interp.constant(c) != Some(target) {
            return false;
        }
    }
    // Constants must denote in the target interpretation.
    for constant in query.constants() {
        if interp.constant(constant).is_none() {
            return false;
        }
    }
    let mut assignment: HashMap<CqVar, Element> = HashMap::new();
    assignment.insert(query.head, target);
    if !atoms_consistent(query, interp, &assignment) {
        return false;
    }
    let vars: Vec<CqVar> = query
        .variables()
        .into_iter()
        .filter(|v| *v != query.head)
        .collect();
    search(query, interp, &vars, 0, &mut assignment)
}

fn search(
    query: &ConjunctiveQuery,
    interp: &Interpretation,
    vars: &[CqVar],
    index: usize,
    assignment: &mut HashMap<CqVar, Element>,
) -> bool {
    if index == vars.len() {
        return atoms_satisfied(query, interp, assignment);
    }
    let var = vars[index];
    for candidate in interp.domain() {
        assignment.insert(var, candidate);
        if atoms_consistent(query, interp, assignment)
            && search(query, interp, vars, index + 1, assignment)
        {
            return true;
        }
    }
    assignment.remove(&var);
    false
}

fn term_value(
    term: CqTerm,
    interp: &Interpretation,
    assignment: &HashMap<CqVar, Element>,
) -> Option<Element> {
    match term {
        CqTerm::Var(v) => assignment.get(&v).copied(),
        CqTerm::Const(c) => interp.constant(c),
    }
}

/// Checks the atoms whose terms are all assigned (used for early pruning).
fn atoms_consistent(
    query: &ConjunctiveQuery,
    interp: &Interpretation,
    assignment: &HashMap<CqVar, Element>,
) -> bool {
    query.atoms.iter().all(|atom| match *atom {
        CqAtom::Class(class, t) => match term_value(t, interp, assignment) {
            Some(e) => interp.is_in_class(class, e),
            None => true,
        },
        CqAtom::Attr(attr, s, t) => {
            match (
                term_value(s, interp, assignment),
                term_value(t, interp, assignment),
            ) {
                (Some(es), Some(et)) => interp.has_attr_pair(attr, es, et),
                _ => true,
            }
        }
    })
}

/// Checks that every atom is satisfied under a total assignment.
fn atoms_satisfied(
    query: &ConjunctiveQuery,
    interp: &Interpretation,
    assignment: &HashMap<CqVar, Element>,
) -> bool {
    query.atoms.iter().all(|atom| match *atom {
        CqAtom::Class(class, t) => {
            term_value(t, interp, assignment).is_some_and(|e| interp.is_in_class(class, e))
        }
        CqAtom::Attr(attr, s, t) => {
            match (
                term_value(s, interp, assignment),
                term_value(t, interp, assignment),
            ) {
                (Some(es), Some(et)) => interp.has_attr_pair(attr, es, et),
                _ => false,
            }
        }
    })
}

/// Decides containment `sub ⊆ sup` (every answer of `sub` is an answer of
/// `sup` in every interpretation).
pub fn contains(sub: &ConjunctiveQuery, sup: &ConjunctiveQuery) -> bool {
    if sub.inconsistent {
        return true;
    }
    if sup.inconsistent {
        return false;
    }
    let (canonical, _, head) = freeze(sub);
    has_homomorphism(sup, &canonical, head)
}

/// Evaluates a conjunctive query over a finite interpretation.
pub fn evaluate(query: &ConjunctiveQuery, interp: &Interpretation) -> BTreeSet<Element> {
    if query.inconsistent {
        return BTreeSet::new();
    }
    interp
        .domain()
        .filter(|&d| has_homomorphism(query, interp, d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_concept::concept_to_cq;
    use subq_concepts::attribute::Attr;
    use subq_concepts::symbol::Vocabulary;
    use subq_concepts::term::TermArena;

    #[test]
    fn freezing_builds_the_canonical_database() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let consults = voc.attribute("consults");
        let mut arena = TermArena::new();
        let p = arena.prim(patient);
        let path = arena.path1(Attr::primitive(consults), p);
        let exists = arena.exists(path);
        let both = arena.and(p, exists);
        let cq = concept_to_cq(&arena, both);
        let (interp, element_of, head) = freeze(&cq);
        assert_eq!(interp.domain_size(), 2);
        assert!(interp.is_in_class(patient, head));
        assert_eq!(element_of.len(), 2);
        let other = interp.domain().find(|&e| e != head).expect("two elements");
        assert!(interp.has_attr_pair(consults, head, other));
    }

    #[test]
    fn containment_matches_intuition() {
        let mut voc = Vocabulary::new();
        let male = voc.class("Male");
        let patient = voc.class("Patient");
        let mut arena = TermArena::new();
        let m = arena.prim(male);
        let p = arena.prim(patient);
        let both = arena.and(m, p);
        let cq_both = concept_to_cq(&arena, both);
        let cq_p = concept_to_cq(&arena, p);
        assert!(contains(&cq_both, &cq_p));
        assert!(!contains(&cq_p, &cq_both));
        assert!(contains(&cq_p, &cq_p));
        let top = arena.top();
        let cq_top = concept_to_cq(&arena, top);
        assert!(contains(&cq_p, &cq_top));
        assert!(!contains(&cq_top, &cq_p));
    }

    #[test]
    fn agreement_is_contained_in_exists() {
        let mut voc = Vocabulary::new();
        let consults = voc.attribute("consults");
        let suffers = voc.attribute("suffers");
        let mut arena = TermArena::new();
        let top = arena.top();
        let p = arena.path1(Attr::primitive(consults), top);
        let q = arena.path1(Attr::primitive(suffers), top);
        let agree = arena.agree(p, q);
        let exists_p = arena.exists(p);
        let cq_agree = concept_to_cq(&arena, agree);
        let cq_exists = concept_to_cq(&arena, exists_p);
        assert!(contains(&cq_agree, &cq_exists));
        assert!(!contains(&cq_exists, &cq_agree));
    }

    #[test]
    fn inconsistent_queries_are_contained_in_everything() {
        let mut voc = Vocabulary::new();
        let a = voc.constant("a");
        let b = voc.constant("b");
        let thing = voc.class("Thing");
        let mut arena = TermArena::new();
        let sa = arena.singleton(a);
        let sb = arena.singleton(b);
        let bad = arena.and(sa, sb);
        let t = arena.prim(thing);
        let cq_bad = concept_to_cq(&arena, bad);
        let cq_t = concept_to_cq(&arena, t);
        assert!(cq_bad.inconsistent);
        assert!(contains(&cq_bad, &cq_t));
        assert!(!contains(&cq_t, &cq_bad));
    }

    #[test]
    fn evaluation_matches_ql_set_semantics_on_an_example() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let doctor = voc.class("Doctor");
        let consults = voc.attribute("consults");
        let mut arena = TermArena::new();
        let p = arena.prim(patient);
        let d = arena.prim(doctor);
        let path = arena.path1(Attr::primitive(consults), d);
        let exists = arena.exists(path);
        let concept = arena.and(p, exists);
        let cq = concept_to_cq(&arena, concept);

        let mut interp = Interpretation::new(3);
        interp.add_class_member(patient, Element(0));
        interp.add_class_member(patient, Element(2));
        interp.add_class_member(doctor, Element(1));
        interp.add_attr_pair(consults, Element(0), Element(1));
        interp.add_attr_pair(consults, Element(2), Element(2));

        assert_eq!(evaluate(&cq, &interp), interp.eval_concept(&arena, concept));
        assert_eq!(evaluate(&cq, &interp), BTreeSet::from([Element(0)]));
    }

    #[test]
    fn constants_must_denote_in_the_target() {
        let mut voc = Vocabulary::new();
        let takes = voc.attribute("takes");
        let aspirin = voc.constant("Aspirin");
        let mut arena = TermArena::new();
        let sa = arena.singleton(aspirin);
        let path = arena.path1(Attr::primitive(takes), sa);
        let concept = arena.exists(path);
        let cq = concept_to_cq(&arena, concept);

        // Interpretation where Aspirin is not mapped: no answers.
        let mut interp = Interpretation::new(2);
        interp.add_attr_pair(takes, Element(0), Element(1));
        assert!(evaluate(&cq, &interp).is_empty());

        // Mapping Aspirin to the filler makes element 0 an answer.
        interp.set_constant(aspirin, Element(1));
        assert_eq!(evaluate(&cq, &interp), BTreeSet::from([Element(0)]));
    }
}
