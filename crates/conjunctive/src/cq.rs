//! Conjunctive queries with one free (answer) variable.

use subq_concepts::symbol::{AttrId, ClassId, ConstId, Vocabulary};

/// A query variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CqVar(pub u32);

/// A term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CqTerm {
    /// A query variable.
    Var(CqVar),
    /// A constant of the vocabulary.
    Const(ConstId),
}

/// An atom of the query body.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CqAtom {
    /// `A(t)` — a unary (class) atom.
    Class(ClassId, CqTerm),
    /// `P(s, t)` — a binary (attribute) atom.
    Attr(AttrId, CqTerm, CqTerm),
}

impl CqAtom {
    /// The terms of the atom.
    pub fn terms(&self) -> Vec<CqTerm> {
        match *self {
            CqAtom::Class(_, t) => vec![t],
            CqAtom::Attr(_, s, t) => vec![s, t],
        }
    }

    /// Applies a term substitution.
    pub fn substitute(&self, from: CqTerm, to: CqTerm) -> CqAtom {
        let map = |t: CqTerm| if t == from { to } else { t };
        match *self {
            CqAtom::Class(c, t) => CqAtom::Class(c, map(t)),
            CqAtom::Attr(a, s, t) => CqAtom::Attr(a, map(s), map(t)),
        }
    }
}

/// A conjunctive query `{ x | ∃ ȳ. conj of atoms }` with answer variable
/// `head`.
///
/// The `inconsistent` flag records that the query body forced two distinct
/// constants to be equal (which can happen when translating QL singletons);
/// such a query has an empty answer in every interpretation.
#[derive(Clone, Debug, Default)]
pub struct ConjunctiveQuery {
    /// The answer variable.
    pub head: CqVar,
    /// The body atoms.
    pub atoms: Vec<CqAtom>,
    /// Number of distinct variables (variables are numbered `0..var_count`).
    pub var_count: u32,
    /// Whether the body is inconsistent (empty answer everywhere).
    pub inconsistent: bool,
    /// Variable identifications performed while building the query (QL
    /// singletons and empty-path agreements); kept so later construction
    /// steps can resolve a variable they still hold by value.
    pub substitutions: Vec<(CqVar, CqTerm)>,
    /// When set, the answer variable is required to denote this constant
    /// (the QL singleton `{a}` applied to the answer object).
    pub head_constant: Option<ConstId>,
}

impl ConjunctiveQuery {
    /// Creates a query with only the head variable and no atoms (the
    /// universal query).
    pub fn universal() -> Self {
        ConjunctiveQuery {
            head: CqVar(0),
            atoms: Vec::new(),
            var_count: 1,
            inconsistent: false,
            substitutions: Vec::new(),
            head_constant: None,
        }
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> CqVar {
        let v = CqVar(self.var_count);
        self.var_count += 1;
        v
    }

    /// Adds an atom.
    pub fn push(&mut self, atom: CqAtom) {
        if !self.atoms.contains(&atom) {
            self.atoms.push(atom);
        }
    }

    /// All variables occurring in the query (head plus body).
    pub fn variables(&self) -> Vec<CqVar> {
        let mut vars = vec![self.head];
        for atom in &self.atoms {
            for term in atom.terms() {
                if let CqTerm::Var(v) = term {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
            }
        }
        vars
    }

    /// All constants occurring in the query.
    pub fn constants(&self) -> Vec<ConstId> {
        let mut consts = Vec::new();
        for atom in &self.atoms {
            for term in atom.terms() {
                if let CqTerm::Const(c) = term {
                    if !consts.contains(&c) {
                        consts.push(c);
                    }
                }
            }
        }
        consts
    }

    /// Applies a substitution to every atom (and to the head if it is the
    /// substituted variable — callers should avoid that).
    pub fn substitute(&mut self, from: CqTerm, to: CqTerm) {
        for atom in &mut self.atoms {
            *atom = atom.substitute(from, to);
        }
        self.atoms.dedup();
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Renders the query in rule notation, e.g.
    /// `q(x0) :- Patient(x0), consults(x0, x1), Doctor(x1)`.
    pub fn render(&self, voc: &Vocabulary) -> String {
        let term = |t: CqTerm| match t {
            CqTerm::Var(CqVar(i)) => format!("x{i}"),
            CqTerm::Const(c) => voc.const_name(c).to_owned(),
        };
        let mut parts = Vec::new();
        for atom in &self.atoms {
            match *atom {
                CqAtom::Class(c, t) => parts.push(format!("{}({})", voc.class_name(c), term(t))),
                CqAtom::Attr(a, s, t) => {
                    parts.push(format!("{}({}, {})", voc.attr_name(a), term(s), term(t)))
                }
            }
        }
        let body = if parts.is_empty() {
            "true".to_owned()
        } else {
            parts.join(", ")
        };
        let marker = if self.inconsistent {
            "  [inconsistent]"
        } else {
            ""
        };
        format!("q({}) :- {}{}", term(CqTerm::Var(self.head)), body, marker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universal_query_has_one_variable_and_no_atoms() {
        let q = ConjunctiveQuery::universal();
        assert!(q.is_empty());
        assert_eq!(q.variables(), vec![CqVar(0)]);
        assert!(!q.inconsistent);
    }

    #[test]
    fn push_deduplicates_atoms() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let mut q = ConjunctiveQuery::universal();
        let atom = CqAtom::Class(patient, CqTerm::Var(q.head));
        q.push(atom);
        q.push(atom);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn variables_and_constants_are_collected() {
        let mut voc = Vocabulary::new();
        let consults = voc.attribute("consults");
        let aspirin = voc.constant("Aspirin");
        let mut q = ConjunctiveQuery::universal();
        let y = q.fresh_var();
        q.push(CqAtom::Attr(consults, CqTerm::Var(q.head), CqTerm::Var(y)));
        q.push(CqAtom::Attr(
            consults,
            CqTerm::Var(y),
            CqTerm::Const(aspirin),
        ));
        assert_eq!(q.variables(), vec![CqVar(0), y]);
        assert_eq!(q.constants(), vec![aspirin]);
    }

    #[test]
    fn substitution_rewrites_terms() {
        let mut voc = Vocabulary::new();
        let knows = voc.attribute("knows");
        let alice = voc.constant("alice");
        let mut q = ConjunctiveQuery::universal();
        let y = q.fresh_var();
        q.push(CqAtom::Attr(knows, CqTerm::Var(q.head), CqTerm::Var(y)));
        q.substitute(CqTerm::Var(y), CqTerm::Const(alice));
        assert_eq!(
            q.atoms,
            vec![CqAtom::Attr(
                knows,
                CqTerm::Var(CqVar(0)),
                CqTerm::Const(alice)
            )]
        );
    }

    #[test]
    fn rendering_uses_rule_notation() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let consults = voc.attribute("consults");
        let mut q = ConjunctiveQuery::universal();
        let y = q.fresh_var();
        q.push(CqAtom::Class(patient, CqTerm::Var(q.head)));
        q.push(CqAtom::Attr(consults, CqTerm::Var(q.head), CqTerm::Var(y)));
        let rendered = q.render(&voc);
        assert_eq!(rendered, "q(x0) :- Patient(x0), consults(x0, x1)");
        let empty = ConjunctiveQuery::universal();
        assert_eq!(empty.render(&voc), "q(x0) :- true");
    }
}
