//! Exact translation of QL concepts into conjunctive queries.
//!
//! A QL concept is, by its transformational semantics (Table 1), an
//! existentially quantified conjunction of unary and binary atoms with one
//! free variable — i.e. a conjunctive query. This module performs that
//! translation directly on the term structure:
//!
//! * `A` → a class atom, `⊤` → nothing,
//! * `{a}` → the current term is identified with the constant `a`
//!   (substituting the variable, or marking the query inconsistent when two
//!   distinct constants collide),
//! * `C ⊓ D` → union of the bodies,
//! * `∃p` → a chain of fresh variables,
//! * `∃p ≐ q` → two chains sharing their final term.

use crate::cq::{ConjunctiveQuery, CqAtom, CqTerm};
use subq_concepts::term::{Concept, ConceptId, Path, PathId, TermArena};

/// Translates a QL concept into an equivalent conjunctive query.
pub fn concept_to_cq(arena: &TermArena, concept: ConceptId) -> ConjunctiveQuery {
    let mut query = ConjunctiveQuery::universal();
    let head = CqTerm::Var(query.head);
    translate_concept(arena, concept, head, &mut query);
    query
}

fn translate_concept(
    arena: &TermArena,
    concept: ConceptId,
    term: CqTerm,
    query: &mut ConjunctiveQuery,
) {
    match arena.concept(concept) {
        Concept::Top => {}
        Concept::Prim(class) => query.push(CqAtom::Class(class, term)),
        Concept::Singleton(constant) => identify(query, term, CqTerm::Const(constant)),
        Concept::And(l, r) => {
            translate_concept(arena, l, term, query);
            // The left conjunct may have substituted `term` away (a
            // singleton); equality of terms is by value, so re-identifying
            // is unnecessary — substitution only affects variables other
            // callers still reference by value, which is safe because a
            // substituted variable no longer occurs in any atom.
            translate_concept(arena, r, resolve(query, term), query);
        }
        Concept::Exists(path) => {
            let end = CqTerm::Var(query.fresh_var());
            translate_path(arena, path, term, end, query);
        }
        Concept::Agree(p, q) => {
            let end = CqTerm::Var(query.fresh_var());
            translate_path(arena, p, term, end, query);
            translate_path(arena, q, term, resolve(query, end), query);
        }
    }
}

/// Follows the substitutions recorded on the query until a fixed point:
/// identifications may chain (variable to variable to constant).
fn resolve(query: &ConjunctiveQuery, mut term: CqTerm) -> CqTerm {
    for _ in 0..=query.substitutions.len() {
        match term {
            CqTerm::Const(_) => return term,
            CqTerm::Var(v) => {
                let next =
                    query
                        .substitutions
                        .iter()
                        .find_map(|&(from, to)| if from == v { Some(to) } else { None });
                match next {
                    Some(to) => term = to,
                    None => return term,
                }
            }
        }
    }
    term
}

/// Identifies two terms: substitute a variable by the other term (never the
/// answer variable, which instead records a `head_constant` binding), or
/// flag inconsistency when two distinct constants meet.
fn identify(query: &mut ConjunctiveQuery, left: CqTerm, right: CqTerm) {
    let left = resolve(query, left);
    let right = resolve(query, right);
    if left == right {
        return;
    }
    let head = query.head;
    let bind_head_to_const = |query: &mut ConjunctiveQuery, constant| {
        match query.head_constant {
            Some(existing) if existing != constant => query.inconsistent = true,
            _ => query.head_constant = Some(constant),
        }
        query.substitute(CqTerm::Var(head), CqTerm::Const(constant));
        query.substitutions.push((head, CqTerm::Const(constant)));
    };
    match (left, right) {
        (CqTerm::Const(a), CqTerm::Const(b)) => {
            if a != b {
                query.inconsistent = true;
            }
        }
        (CqTerm::Var(v), CqTerm::Var(w)) => {
            // Substitute away the non-answer variable.
            let (from, to) = if v == head { (w, left) } else { (v, right) };
            query.substitute(CqTerm::Var(from), to);
            query.substitutions.push((from, to));
        }
        (CqTerm::Var(v), CqTerm::Const(c)) | (CqTerm::Const(c), CqTerm::Var(v)) => {
            if v == head {
                bind_head_to_const(query, c);
            } else {
                query.substitute(CqTerm::Var(v), CqTerm::Const(c));
                query.substitutions.push((v, CqTerm::Const(c)));
            }
        }
    }
}

fn translate_path(
    arena: &TermArena,
    path: PathId,
    from: CqTerm,
    to: CqTerm,
    query: &mut ConjunctiveQuery,
) {
    match arena.path(path) {
        Path::Empty => identify(query, from, to),
        Path::Step(restriction, rest) => {
            let from = resolve(query, from);
            let next = if arena.is_empty_path(rest) {
                resolve(query, to)
            } else {
                CqTerm::Var(query.fresh_var())
            };
            let atom = if restriction.attr.is_inverted() {
                CqAtom::Attr(restriction.attr.base(), next, from)
            } else {
                CqAtom::Attr(restriction.attr.base(), from, next)
            };
            query.push(atom);
            translate_concept(arena, restriction.concept, resolve(query, next), query);
            if !arena.is_empty_path(rest) {
                translate_path(arena, rest, resolve(query, next), to, query);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_concepts::attribute::Attr;
    use subq_concepts::symbol::Vocabulary;

    #[test]
    fn primitive_and_intersection() {
        let mut voc = Vocabulary::new();
        let male = voc.class("Male");
        let patient = voc.class("Patient");
        let mut arena = TermArena::new();
        let m = arena.prim(male);
        let p = arena.prim(patient);
        let both = arena.and(m, p);
        let cq = concept_to_cq(&arena, both);
        assert_eq!(cq.render(&voc), "q(x0) :- Male(x0), Patient(x0)");
    }

    #[test]
    fn exists_path_builds_a_chain() {
        let mut voc = Vocabulary::new();
        let doctor = voc.class("Doctor");
        let disease = voc.class("Disease");
        let consults = voc.attribute("consults");
        let skilled = voc.attribute("skilled_in");
        let mut arena = TermArena::new();
        let d = arena.prim(doctor);
        let dis = arena.prim(disease);
        let path = arena.path_of(&[
            (Attr::primitive(consults), d),
            (Attr::primitive(skilled), dis),
        ]);
        let c = arena.exists(path);
        let cq = concept_to_cq(&arena, c);
        let rendered = cq.render(&voc);
        assert!(rendered.contains("consults(x0, x2)"));
        assert!(rendered.contains("Doctor(x2)"));
        assert!(rendered.contains("skilled_in(x2, x1)"));
        assert!(rendered.contains("Disease(x1)"));
    }

    #[test]
    fn agreement_shares_the_end_variable() {
        let mut voc = Vocabulary::new();
        let consults = voc.attribute("consults");
        let suffers = voc.attribute("suffers");
        let mut arena = TermArena::new();
        let top = arena.top();
        let p = arena.path1(Attr::primitive(consults), top);
        let q = arena.path1(Attr::primitive(suffers), top);
        let agree = arena.agree(p, q);
        let cq = concept_to_cq(&arena, agree);
        let rendered = cq.render(&voc);
        assert!(rendered.contains("consults(x0, x1)"));
        assert!(rendered.contains("suffers(x0, x1)"));
    }

    #[test]
    fn inverse_attributes_swap_argument_order() {
        let mut voc = Vocabulary::new();
        let skilled = voc.attribute("skilled_in");
        let doctor = voc.class("Doctor");
        let mut arena = TermArena::new();
        let d = arena.prim(doctor);
        let path = arena.path1(Attr::inverse_of(skilled), d);
        let c = arena.exists(path);
        let cq = concept_to_cq(&arena, c);
        assert_eq!(cq.render(&voc), "q(x0) :- skilled_in(x1, x0), Doctor(x1)");
    }

    #[test]
    fn singletons_substitute_constants() {
        let mut voc = Vocabulary::new();
        let takes = voc.attribute("takes");
        let drug = voc.class("Drug");
        let aspirin = voc.constant("Aspirin");
        let mut arena = TermArena::new();
        let d = arena.prim(drug);
        let a = arena.singleton(aspirin);
        let filler = arena.and(d, a);
        let path = arena.path1(Attr::primitive(takes), filler);
        let c = arena.exists(path);
        let cq = concept_to_cq(&arena, c);
        let rendered = cq.render(&voc);
        assert!(rendered.contains("takes(x0, Aspirin)"));
        assert!(rendered.contains("Drug(Aspirin)"));
        assert!(!cq.inconsistent);
    }

    #[test]
    fn conflicting_singletons_mark_inconsistency() {
        let mut voc = Vocabulary::new();
        let a = voc.constant("a");
        let b = voc.constant("b");
        let mut arena = TermArena::new();
        let sa = arena.singleton(a);
        let sb = arena.singleton(b);
        let both = arena.and(sa, sb);
        let cq = concept_to_cq(&arena, both);
        assert!(cq.inconsistent);
    }

    #[test]
    fn top_translates_to_the_universal_query() {
        let mut arena = TermArena::new();
        let top = arena.top();
        let cq = concept_to_cq(&arena, top);
        assert!(cq.is_empty());
        assert!(!cq.inconsistent);
    }
}
