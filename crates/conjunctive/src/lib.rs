//! Conjunctive queries over unary and binary predicates, and containment
//! via homomorphism search.
//!
//! Section 3.2 of the paper observes that a query class with an empty
//! constraint part is logically a *conjunctive query*: an existentially
//! quantified conjunction of class and attribute atoms with one free
//! variable. Containment of general conjunctive queries is NP-complete
//! (Chandra–Merlin); the paper positions QL as "a naturally occurring class
//! of conjunctive queries with polynomial containment problem" once the
//! schema is empty.
//!
//! This crate provides the classical machinery as a baseline and testing
//! oracle:
//!
//! * [`cq::ConjunctiveQuery`] — the query representation,
//! * [`from_concept::concept_to_cq`] — the exact translation of a QL
//!   concept into a conjunctive query,
//! * [`containment::contains`] — containment by canonical-database
//!   freezing and backtracking homomorphism search (worst-case
//!   exponential), and
//! * [`containment::evaluate`] — evaluation of a conjunctive query over a
//!   finite interpretation (used for cross-validation against the QL set
//!   semantics).
//!
//! Experiment E7 uses this crate to confirm the paper's positioning: on
//! QL-expressible inputs the structural calculus agrees with the
//! Chandra–Merlin decision while avoiding its exponential search.

pub mod containment;
pub mod cq;
pub mod from_concept;

pub use containment::{contains, evaluate, freeze};
pub use cq::{ConjunctiveQuery, CqAtom, CqTerm, CqVar};
pub use from_concept::concept_to_cq;
