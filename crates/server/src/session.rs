//! Per-connection state: a nonblocking socket, the frame decoder, the
//! FIFO of parsed-but-unprocessed requests, and the FIFO of replies in
//! flight — some ready, some waiting on a writer [`Ticket`].
//!
//! Replies leave in request order, always. A query that arrives behind a
//! pending transaction therefore *waits* for the ticket, which also
//! buys read-your-writes: the session remembers the last version the
//! writer acknowledged to it, and a query only evaluates once the
//! worker's reader has adopted a snapshot at least that new (the writer
//! publishes before it completes the ticket, so the wait is one
//! `Reader::sync` away).
//!
//! Backpressure is structural: reading stops while the parsed-request
//! queue is at `inbox_limit` or the outbound buffer is over
//! `outbound_limit` (a slow reader throttles *itself*, not the server),
//! and a session that makes no progress for `idle_timeout` is closed.
//! Every buffer in sight is bounded by configuration.

use crate::frame::{encode_frame, FrameDecoder, FrameError};
use crate::proto::{ErrorCode, Request, Response};
use crate::server::{ServerConfig, ServerStats};
use crate::writer::{Ticket, WriteCmd, WriteRequest};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{SyncSender, TrySendError};
use std::time::Instant;
use subq_dl::{DlModel, PathFilter, QueryClassDecl};
use subq_oodb::Reader;

/// A parsed frame awaiting processing, or a reply decided at parse time
/// (kept in the same queue so replies stay in request order).
enum WorkItem {
    Do(Request),
    Reply(Response),
}

/// An ordered reply: ready to send, or waiting on the writer.
enum Outcome {
    Ready(Response),
    Waiting {
        ticket: Ticket,
        /// When the command was queued — the op-class latency histograms
        /// measure submission to completion.
        submitted: Instant,
        /// DDL (DEFVIEW/MATERIALIZE) vs. transaction, for the histogram
        /// split.
        ddl: bool,
    },
}

pub(crate) struct Session {
    stream: TcpStream,
    decoder: FrameDecoder,
    work: VecDeque<WorkItem>,
    replies: VecDeque<Outcome>,
    /// Write tickets in `replies` not yet completed.
    outstanding: usize,
    outbound: Vec<u8>,
    /// Prefix of `outbound` already written to the socket.
    sent: usize,
    /// Highest version the writer acknowledged to *this* session.
    last_committed: u64,
    last_activity: Instant,
    /// No more input will be read (EOF, BYE, or a fatal frame error).
    input_done: bool,
    /// Close once every queued reply has flushed.
    closing: bool,
    pub(crate) dead: bool,
}

impl Session {
    pub(crate) fn new(stream: TcpStream, config: &ServerConfig) -> std::io::Result<Session> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Session {
            stream,
            decoder: FrameDecoder::new(config.max_payload),
            work: VecDeque::new(),
            replies: VecDeque::new(),
            outstanding: 0,
            outbound: Vec::new(),
            sent: 0,
            last_committed: 0,
            last_activity: Instant::now(),
            input_done: false,
            closing: false,
            dead: false,
        })
    }

    fn push_reply(&mut self, response: Response) {
        self.replies.push_back(Outcome::Ready(response));
    }

    /// One round of work; returns whether anything progressed.
    pub(crate) fn pump(
        &mut self,
        reader: &mut Reader,
        tx: &SyncSender<WriteRequest>,
        config: &ServerConfig,
        stats: &ServerStats,
        now: Instant,
    ) -> bool {
        let mut progressed = false;
        progressed |= self.read_input(config, stats);
        progressed |= self.process_work(reader, tx, config, stats);
        progressed |= self.flush_replies(stats);
        progressed |= self.write_output();
        if progressed {
            self.last_activity = now;
        }
        let drained = self.work.is_empty() && self.replies.is_empty() && self.flushed();
        if self.closing && drained {
            self.dead = true;
        }
        if self.input_done && !self.closing && drained {
            // The peer is gone and nothing is owed: close quietly.
            self.dead = true;
        }
        if now.duration_since(self.last_activity) > config.idle_timeout {
            stats.bump(&stats.idle_closes);
            crate::metrics::metrics().idle_closes.inc();
            self.dead = true;
        }
        progressed
    }

    fn flushed(&self) -> bool {
        self.sent == self.outbound.len()
    }

    /// Reads available bytes and extracts complete frames, unless
    /// admission control says the session has enough queued already.
    fn read_input(&mut self, config: &ServerConfig, stats: &ServerStats) -> bool {
        if self.input_done
            || self.work.len() >= config.inbox_limit
            || self.outbound.len() - self.sent >= config.outbound_limit
        {
            return false;
        }
        let mut progressed = false;
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.input_done = true;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    crate::metrics::metrics().bytes_in.add(n as u64);
                    self.decoder.extend(&chunk[..n]);
                    // Stay fair across sessions: one pump ingests at
                    // most ~16 KiB beyond what is already buffered.
                    if self.decoder.buffered() >= 16 * 1024 {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.input_done = true;
                    self.closing = true;
                    break;
                }
            }
        }
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => {
                    progressed = true;
                    self.ingest_frame(&payload, stats);
                }
                Ok(None) => break,
                Err(frame_error) => {
                    // Framing can no longer be trusted: one typed reply,
                    // then the connection closes after flushing.
                    progressed = true;
                    stats.bump(&stats.frame_errors);
                    crate::metrics::metrics().frame_errors.inc();
                    let code = match frame_error {
                        FrameError::TooBig { .. } => ErrorCode::TooBig,
                        FrameError::BadCrc { .. } => ErrorCode::BadCrc,
                    };
                    self.work.push_back(WorkItem::Reply(Response::Error {
                        code,
                        message: frame_error.to_string(),
                    }));
                    self.input_done = true;
                    self.closing = true;
                    break;
                }
            }
        }
        progressed
    }

    fn ingest_frame(&mut self, payload: &[u8], stats: &ServerStats) {
        let text = match std::str::from_utf8(payload) {
            Ok(text) => text,
            Err(_) => {
                stats.bump(&stats.protocol_errors);
                crate::metrics::metrics().protocol_errors.inc();
                self.work.push_back(WorkItem::Reply(Response::Error {
                    code: ErrorCode::Parse,
                    message: "payload is not UTF-8".to_owned(),
                }));
                return;
            }
        };
        match Request::parse(text) {
            Ok(request) => self.work.push_back(WorkItem::Do(request)),
            Err((code, message)) => {
                stats.bump(&stats.protocol_errors);
                crate::metrics::metrics().protocol_errors.inc();
                self.work
                    .push_back(WorkItem::Reply(Response::Error { code, message }));
            }
        }
    }

    /// Processes queued requests head-first; stops at the first one that
    /// must wait (a query behind an unresolved write ticket).
    fn process_work(
        &mut self,
        reader: &mut Reader,
        tx: &SyncSender<WriteRequest>,
        config: &ServerConfig,
        stats: &ServerStats,
    ) -> bool {
        let mut progressed = false;
        while let Some(head) = self.work.front() {
            match head {
                WorkItem::Reply(_) => {
                    let WorkItem::Reply(response) = self.work.pop_front().expect("peeked") else {
                        unreachable!()
                    };
                    self.push_reply(response);
                }
                WorkItem::Do(Request::Ping) => {
                    self.work.pop_front();
                    self.push_reply(Response::Pong {
                        version: reader.data_version(),
                    });
                }
                WorkItem::Do(Request::Bye) => {
                    self.work.clear();
                    self.push_reply(Response::Ok {
                        version: reader.data_version(),
                    });
                    self.input_done = true;
                    self.closing = true;
                }
                WorkItem::Do(Request::Query(query)) => {
                    // Reply order is request order, and answers must not
                    // run behind this session's own acknowledged writes.
                    if self.outstanding > 0 || reader.data_version() < self.last_committed {
                        break;
                    }
                    let response = match validate_query(reader.database().model(), query) {
                        Err(response) => {
                            stats.bump(&stats.protocol_errors);
                            crate::metrics::metrics().protocol_errors.inc();
                            response
                        }
                        Ok(()) => {
                            let metrics = crate::metrics::metrics();
                            let version = reader.data_version();
                            let query = query.clone();
                            let started = Instant::now();
                            let (answers, _) = reader.execute(&query);
                            let names: Vec<String> = answers
                                .iter()
                                .map(|id| reader.database().object_name(*id).to_owned())
                                .collect();
                            let elapsed = started.elapsed();
                            metrics.query_ns.record(elapsed.as_nanos() as u64);
                            if let Some(threshold) = config.slow_query_us {
                                let micros = elapsed.as_micros() as u64;
                                if micros >= threshold {
                                    stats.slow_log.record(micros, query.name.as_str());
                                }
                            }
                            stats.bump(&stats.queries);
                            metrics.queries.inc();
                            Response::Answers { version, names }
                        }
                    };
                    self.work.pop_front();
                    self.push_reply(response);
                }
                WorkItem::Do(Request::Explain(query)) => {
                    // Gated exactly like a query: the explained plan must
                    // see this session's own acknowledged writes.
                    if self.outstanding > 0 || reader.data_version() < self.last_committed {
                        break;
                    }
                    let response = match validate_query(reader.database().model(), query) {
                        Err(response) => {
                            stats.bump(&stats.protocol_errors);
                            crate::metrics::metrics().protocol_errors.inc();
                            response
                        }
                        Ok(()) => {
                            let _span = crate::metrics::metrics().explain_ns.span();
                            let version = reader.data_version();
                            let query = query.clone();
                            let report = reader.explain(&query);
                            Response::Report {
                                version,
                                lines: report.render_lines(),
                            }
                        }
                    };
                    self.work.pop_front();
                    self.push_reply(response);
                }
                WorkItem::Do(Request::Stats { slow }) => {
                    let version = reader.data_version();
                    let lines = if *slow {
                        stats
                            .slow_log
                            .entries()
                            .into_iter()
                            .map(|e| format!("{} {}", e.micros, e.label))
                            .collect()
                    } else {
                        subq_telemetry::global()
                            .render()
                            .lines()
                            .map(str::to_owned)
                            .collect()
                    };
                    self.work.pop_front();
                    self.push_reply(Response::Report { version, lines });
                }
                WorkItem::Do(
                    Request::Txn(_)
                    | Request::DefView(_)
                    | Request::Materialize { .. }
                    | Request::Advise,
                ) => {
                    if self.replies.len() >= config.inbox_limit {
                        // Bound the per-session ticket fan-out too.
                        break;
                    }
                    let WorkItem::Do(request) = self.work.pop_front().expect("peeked") else {
                        unreachable!()
                    };
                    let cmd = match request {
                        Request::Txn(ops) => WriteCmd::Txn(ops),
                        Request::DefView(decl) => WriteCmd::DefView(decl),
                        Request::Materialize { name } => WriteCmd::Materialize(name),
                        Request::Advise => WriteCmd::Advise,
                        _ => unreachable!("matched a write request"),
                    };
                    let ddl = !matches!(cmd, WriteCmd::Txn(_));
                    let ticket = Ticket::new();
                    match tx.try_send(WriteRequest {
                        cmd,
                        ticket: ticket.clone(),
                    }) {
                        Ok(()) => {
                            crate::metrics::metrics().queue_depth.add(1);
                            self.outstanding += 1;
                            self.replies.push_back(Outcome::Waiting {
                                ticket,
                                submitted: Instant::now(),
                                ddl,
                            });
                        }
                        Err(TrySendError::Full(_)) => {
                            stats.bump(&stats.busy_replies);
                            crate::metrics::metrics().busy_replies.inc();
                            self.push_reply(Response::Busy {
                                detail: format!(
                                    "write queue of {} is full; retry",
                                    config.write_queue
                                ),
                            });
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            self.push_reply(Response::Error {
                                code: ErrorCode::Internal,
                                message: "writer is gone".to_owned(),
                            });
                            self.closing = true;
                        }
                    }
                }
            }
            progressed = true;
            if self.closing {
                break;
            }
        }
        progressed
    }

    /// Moves completed replies, in order, into the outbound buffer.
    fn flush_replies(&mut self, stats: &ServerStats) -> bool {
        let mut progressed = false;
        loop {
            let polled = match self.replies.front() {
                None => break,
                Some(Outcome::Ready(_)) => None,
                Some(Outcome::Waiting {
                    ticket,
                    submitted,
                    ddl,
                }) => match ticket.poll() {
                    Some(response) => Some((response, *submitted, *ddl)),
                    None => break,
                },
            };
            let response = match polled {
                Some((response, submitted, ddl)) => {
                    self.outstanding -= 1;
                    let metrics = crate::metrics::metrics();
                    let histogram = if ddl {
                        &metrics.ddl_ns
                    } else {
                        &metrics.commit_ns
                    };
                    histogram.record(submitted.elapsed().as_nanos() as u64);
                    if let Response::Committed { version } = &response {
                        self.last_committed = (*version).max(self.last_committed);
                        stats.bump(&stats.commits);
                        metrics.commits.inc();
                    }
                    self.replies.pop_front();
                    response
                }
                None => {
                    let Some(Outcome::Ready(response)) = self.replies.pop_front() else {
                        unreachable!("peeked a ready reply")
                    };
                    response
                }
            };
            encode_frame(response.render().as_bytes(), &mut self.outbound);
            progressed = true;
        }
        progressed
    }

    /// Writes buffered output; compacts once fully flushed.
    fn write_output(&mut self) -> bool {
        let mut progressed = false;
        while self.sent < self.outbound.len() {
            match self.stream.write(&self.outbound[self.sent..]) {
                Ok(0) => break,
                Ok(n) => {
                    self.sent += n;
                    crate::metrics::metrics().bytes_out.add(n as u64);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.flushed() && self.sent > 0 {
            self.outbound.clear();
            self.sent = 0;
        }
        progressed
    }
}

/// Rejects queries whose names the model does not declare. The evaluator
/// itself is total, but it *skips* unknown `isA` names — which would
/// silently widen the candidate set to the universe — so the wire
/// boundary insists every referenced name exists.
fn validate_query(model: &DlModel, query: &QueryClassDecl) -> Result<(), Response> {
    let unknown = |what: &str, name: &str| {
        Err(Response::Error {
            code: ErrorCode::Unknown,
            message: format!("unknown {what} {name}"),
        })
    };
    for sup in &query.is_a {
        if model.class(sup).is_none() {
            return unknown("class", sup);
        }
    }
    for path in &query.derived {
        for step in &path.steps {
            let known = model
                .attributes
                .iter()
                .any(|a| a.name == step.attr || a.inverse.as_deref() == Some(step.attr.as_str()));
            if !known {
                return unknown("attribute", &step.attr);
            }
            if let PathFilter::Class(class) = &step.filter {
                if model.class(class).is_none() && model.query_class(class).is_none() {
                    return unknown("class", class);
                }
            }
        }
    }
    Ok(())
}
