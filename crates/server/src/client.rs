//! The blocking client: one [`TcpStream`], frames out, frames in.
//!
//! The protocol is strictly request/reply in order per connection, so
//! the client is a thin pairing of [`Client::send`] and
//! [`Client::receive`]; [`Client::request`] does one round trip.
//! Pipelined use (several `send`s before the matching `receive`s) is
//! what the load generator leans on to build queue depth.

use crate::frame::{read_frame, write_frame, DEFAULT_MAX_PAYLOAD};
use crate::proto::{Request, Response};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

pub struct Client {
    stream: TcpStream,
    max_payload: usize,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Bounds how long a [`Client::receive`] may block (None = forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// The raw socket, for tests that need to drive it below the
    /// protocol layer (half-open sessions, draining after a reap).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Sends one request without awaiting the reply (pipelining).
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, request.render().as_bytes())
    }

    /// Sends raw bytes as-is — the fuzz suites' hole into the framing
    /// layer.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Receives the next reply frame.
    pub fn receive(&mut self) -> io::Result<Response> {
        let payload = read_frame(&mut self.stream, self.max_payload)?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "reply is not UTF-8"))?;
        Response::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// One request/reply round trip.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        self.receive()
    }

    /// Sends `BYE`, awaits the `OK`, and drops the connection.
    pub fn close(mut self) -> io::Result<()> {
        match self.request(&Request::Bye)? {
            Response::Ok { .. } => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected BYE reply: {other:?}"),
            )),
        }
    }
}
