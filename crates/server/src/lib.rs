//! `subqd`: a multi-client TCP front end over the snapshot engine.
//!
//! The paper's optimizer answers queries against materialized views
//! inside one process; this crate is the serving skin the ROADMAP's
//! north star asks for. The architecture is the one the PR 5 core was
//! built to support, with a command-queue shape in the spirit of
//! oidadb's `edb_job_t`:
//!
//! * **one writer** — the [`OptimizedDatabase`](subq_oodb::OptimizedDatabase)
//!   moves into a dedicated thread; every mutation funnels through one
//!   *bounded* channel ([`writer`]), and durable batches share one fsync
//!   (group commit, PR 7's WAL underneath);
//! * **lock-free readers** — a thread-per-core worker pool ([`worker`]);
//!   each worker owns a [`Reader`](subq_oodb::Reader) minted from the
//!   shared snapshot cell and serves queries with zero locking;
//! * **text over frames** — requests and replies are UTF-8 protocol
//!   text ([`proto`]) in length-prefixed CRC-checked frames ([`frame`]);
//!   queries and view DDL travel as DL source, which `crates/dl`
//!   round-trips exactly;
//! * **sessions and backpressure** — per-connection state with ordered
//!   replies, graceful `BYE`, idle timeout ([`session`]); a full write
//!   queue answers a typed `BUSY`, a slow reader throttles only itself,
//!   and every buffer is bounded by [`ServerConfig`].
//!
//! [`client`] is the blocking client library and [`load`] the
//! mixed-traffic generator behind experiment E14 and the server test
//! suites. No async runtime anywhere: std threads and loopback sockets.

pub mod client;
pub mod frame;
pub mod load;
pub mod metrics;
pub mod proto;
pub mod server;
mod session;
mod worker;
pub mod writer;

pub use client::Client;
pub use frame::{FrameDecoder, FrameError, DEFAULT_MAX_PAYLOAD, HEADER_LEN};
pub use load::{churn_txn_request, percentile, run_mixed_load, view_query, LoadParams, LoadReport};
pub use proto::{ErrorCode, Request, Response, TxnOp};
pub use server::{Server, ServerConfig, ServerStats};
