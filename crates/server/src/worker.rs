//! The thread-per-core worker pool.
//!
//! Each worker owns one lock-free [`Reader`] minted from the shared
//! [`SnapshotCell`](subq_oodb::SnapshotCell) and a private vector of
//! sessions; the accept loop deals new connections into per-worker
//! intake slots. A worker's loop is: adopt the latest snapshot
//! ([`Reader::sync`] — one pointer clone), pump every session
//! (nonblocking reads, query evaluation against the private reader,
//! ticket polls, nonblocking writes), drop the dead, and nap briefly
//! when nothing moved. No locks are taken on the read path — the only
//! shared mutable state a worker touches per loop is its intake slot
//! and the atomic counters.

use crate::server::{ServerConfig, ServerStats};
use crate::session::Session;
use crate::writer::WriteRequest;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use subq_oodb::Reader;
use subq_telemetry::log;

/// The accept loop's hand-off point into one worker.
#[derive(Default)]
pub(crate) struct Intake {
    pub(crate) streams: Mutex<Vec<TcpStream>>,
}

pub(crate) fn run_worker(
    mut reader: Reader,
    intake: Arc<Intake>,
    tx: SyncSender<WriteRequest>,
    config: ServerConfig,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    crashed: Arc<AtomicBool>,
) {
    let mut sessions: Vec<Session> = Vec::new();
    loop {
        let metrics = crate::metrics::metrics();
        if shutdown.load(Ordering::Relaxed) || crashed.load(Ordering::Relaxed) {
            // Dropping the streams resets the peers; on a durable-engine
            // crash that is the truthful signal — nothing more will be
            // acknowledged.
            stats
                .closed
                .fetch_add(sessions.len() as u64, Ordering::Relaxed);
            metrics.closed.add(sessions.len() as u64);
            metrics.active_sessions.sub(sessions.len() as i64);
            return;
        }
        {
            let mut incoming = intake.streams.lock().expect("intake poisoned");
            for stream in incoming.drain(..) {
                match Session::new(stream, &config) {
                    Ok(session) => {
                        metrics.active_sessions.add(1);
                        sessions.push(session);
                    }
                    Err(_) => {
                        stats.bump(&stats.closed);
                        metrics.closed.inc();
                    }
                }
            }
        }
        let mut progressed = reader.sync();
        let now = Instant::now();
        for session in &mut sessions {
            progressed |= session.pump(&mut reader, &tx, &config, &stats, now);
        }
        let before = sessions.len();
        sessions.retain(|session| !session.dead);
        let dropped = before - sessions.len();
        if dropped > 0 {
            stats.closed.fetch_add(dropped as u64, Ordering::Relaxed);
            metrics.closed.add(dropped as u64);
            metrics.active_sessions.sub(dropped as i64);
            log::debug(|| format!("close {dropped} session(s), {} open", sessions.len()));
            progressed = true;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}
