//! The load generator: deals a churn trace out to a fleet of client
//! threads and measures per-op-class latency.
//!
//! Schedules come from `subq_workload::traffic` (seeded, transactions
//! partitioned round-robin so the fleet collectively applies the trace),
//! requests from [`churn_txn_request`]/[`view_query`]. Each thread runs
//! its schedule strictly request-by-request, timing every round trip;
//! `BUSY` replies are counted and the op is retried after a short
//! backoff (admission control is the server's answer, retry is the
//! client's). The merged [`LoadReport`] is what experiment E14 tabulates.

use crate::client::Client;
use crate::proto::{Request, Response, TxnOp};
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use subq_dl::QueryClassDecl;
use subq_workload::traffic::{
    client_schedule, shifting_schedule, ShiftParams, TrafficOp, TrafficParams,
};
use subq_workload::{ChurnOp, ChurnTrace};

/// Merged outcome of one load run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Completed operations (acknowledged queries + commits).
    pub ops: usize,
    pub queries: usize,
    pub txns: usize,
    /// `BUSY` replies observed (each followed by a retry).
    pub busy: usize,
    /// `BUSY` replies observed on query ops specifically.
    pub query_busy: usize,
    /// `BUSY` replies observed on transaction ops specifically.
    pub txn_busy: usize,
    /// Typed `ERR` replies observed.
    pub errors: usize,
    /// `ERR` replies observed on query ops specifically.
    pub query_errors: usize,
    /// `ERR` replies observed on transaction ops specifically.
    pub txn_errors: usize,
    pub elapsed: Duration,
    /// Nanoseconds per acknowledged query round trip.
    pub query_ns: Vec<u64>,
    /// Nanoseconds per acknowledged transaction round trip.
    pub txn_ns: Vec<u64>,
}

impl LoadReport {
    fn absorb(&mut self, other: LoadReport) {
        self.ops += other.ops;
        self.queries += other.queries;
        self.txns += other.txns;
        self.busy += other.busy;
        self.query_busy += other.query_busy;
        self.txn_busy += other.txn_busy;
        self.errors += other.errors;
        self.query_errors += other.query_errors;
        self.txn_errors += other.txn_errors;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.query_ns.extend(other.query_ns);
        self.txn_ns.extend(other.txn_ns);
    }
}

/// The `p`-th percentile (0–100) of a sample set, by sorting.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Converts one churn transaction into its wire request (the churn
/// generator's single attribute is `link`).
pub fn churn_txn_request(ops: &[ChurnOp]) -> Request {
    Request::Txn(
        ops.iter()
            .map(|op| match op {
                ChurnOp::AddObject(name) => TxnOp::Add {
                    object: name.clone(),
                },
                ChurnOp::AssertClass(object, class) => TxnOp::Class {
                    assert: true,
                    object: object.clone(),
                    class: class.clone(),
                },
                ChurnOp::RetractClass(object, class) => TxnOp::Class {
                    assert: false,
                    object: object.clone(),
                    class: class.clone(),
                },
                ChurnOp::AssertAttr(from, to) => TxnOp::Attr {
                    assert: true,
                    from: from.clone(),
                    attr: "link".to_owned(),
                    to: to.clone(),
                },
                ChurnOp::RetractAttr(from, to) => TxnOp::Attr {
                    assert: false,
                    from: from.clone(),
                    attr: "link".to_owned(),
                    to: to.clone(),
                },
            })
            .collect(),
    )
}

/// The declared definition of view `index` of the trace.
pub fn view_query(trace: &ChurnTrace, index: usize) -> QueryClassDecl {
    let name = &trace.view_names[index % trace.view_names.len()];
    trace
        .db
        .model()
        .query_class(name)
        .expect("churn views are declared query classes")
        .clone()
}

/// Parameters of one mixed-traffic run.
#[derive(Clone, Copy, Debug)]
pub struct LoadParams {
    pub clients: usize,
    pub seed: u64,
    pub traffic: TrafficParams,
    /// Backoff before retrying a `BUSY` op.
    pub busy_backoff: Duration,
    /// When set, schedules come from
    /// [`shifting_schedule`](subq_workload::traffic::shifting_schedule):
    /// the hot view window rotates every `phase_ops` operations (the
    /// adversarial E15 workload). `None` keeps the stationary E14 mix.
    pub shift: Option<ShiftParams>,
}

impl Default for LoadParams {
    fn default() -> Self {
        LoadParams {
            clients: 4,
            seed: 0xE14,
            traffic: TrafficParams::default(),
            busy_backoff: Duration::from_micros(200),
            shift: None,
        }
    }
}

/// Runs `params.clients` threads of mixed churn+query traffic against
/// `addr` and merges their reports.
pub fn run_mixed_load(
    addr: SocketAddr,
    trace: &ChurnTrace,
    params: LoadParams,
) -> io::Result<LoadReport> {
    let started = Instant::now();
    let reports: Vec<io::Result<LoadReport>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..params.clients)
            .map(|client| {
                let trace = &trace;
                scope.spawn(move || run_client(addr, trace, client, params))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let mut merged = LoadReport::default();
    for report in reports {
        merged.absorb(report?);
    }
    merged.elapsed = started.elapsed();
    Ok(merged)
}

fn run_client(
    addr: SocketAddr,
    trace: &ChurnTrace,
    client: usize,
    params: LoadParams,
) -> io::Result<LoadReport> {
    let schedule = match params.shift {
        Some(shift) => shifting_schedule(
            params.seed,
            client,
            params.clients,
            trace.transactions.len(),
            trace.view_names.len(),
            params.traffic,
            shift,
        ),
        None => client_schedule(
            params.seed,
            client,
            params.clients,
            trace.transactions.len(),
            trace.view_names.len(),
            params.traffic,
        ),
    };
    let mut connection = Client::connect(addr)?;
    connection.set_timeout(Some(Duration::from_secs(30)))?;
    let mut report = LoadReport::default();
    let started = Instant::now();
    for op in schedule {
        let request = match op {
            TrafficOp::Query(view) => Request::Query(view_query(trace, view)),
            TrafficOp::Txn(txn) => churn_txn_request(&trace.transactions[txn]),
        };
        let is_query = matches!(request, Request::Query(_));
        loop {
            let at = Instant::now();
            let response = connection.request(&request)?;
            let elapsed_ns = at.elapsed().as_nanos() as u64;
            match response {
                Response::Answers { .. } => {
                    report.ops += 1;
                    report.queries += 1;
                    report.query_ns.push(elapsed_ns);
                    break;
                }
                Response::Committed { .. } | Response::Ok { .. } => {
                    report.ops += 1;
                    report.txns += 1;
                    report.txn_ns.push(elapsed_ns);
                    break;
                }
                Response::Busy { .. } => {
                    report.busy += 1;
                    if is_query {
                        report.query_busy += 1;
                    } else {
                        report.txn_busy += 1;
                    }
                    std::thread::sleep(params.busy_backoff);
                }
                Response::Pong { .. } | Response::Report { .. } => break,
                Response::Error { .. } => {
                    report.errors += 1;
                    if is_query {
                        report.query_errors += 1;
                    } else {
                        report.txn_errors += 1;
                    }
                    break;
                }
            }
        }
    }
    report.elapsed = started.elapsed();
    connection.close()?;
    Ok(report)
}
