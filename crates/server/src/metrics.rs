//! Process-wide telemetry of the serving layer.
//!
//! Histograms time each op class at the session boundary (parse to
//! reply); counters mirror [`ServerStats`](crate::server::ServerStats)
//! by bumping at the same sites, so the registry carries one aggregate
//! enumeration of every server counter; gauges track the write queue's
//! depth and the number of open sessions.

use std::sync::OnceLock;
use subq_telemetry::{Counter, Gauge, Histogram};

/// Handles to the server metrics in the global registry.
pub struct SrvMetrics {
    /// Query round trip inside the worker: validate, execute, name the
    /// answers (nanoseconds).
    pub query_ns: Histogram,
    /// Transaction latency from write-queue submission to the writer's
    /// `COMMITTED` completion (nanoseconds).
    pub commit_ns: Histogram,
    /// DDL latency (DEFVIEW/MATERIALIZE) from submission to completion
    /// (nanoseconds).
    pub ddl_ns: Histogram,
    /// EXPLAIN round trip inside the worker (nanoseconds).
    pub explain_ns: Histogram,
    /// Write commands queued but not yet drained by the writer.
    pub queue_depth: Gauge,
    /// Sessions currently open across all workers.
    pub active_sessions: Gauge,
    /// Payload bytes read from client sockets.
    pub bytes_in: Counter,
    /// Payload bytes written to client sockets.
    pub bytes_out: Counter,
    /// Mirrors of [`ServerStats`](crate::server::ServerStats).
    pub accepted: Counter,
    pub closed: Counter,
    pub queries: Counter,
    pub commits: Counter,
    pub busy_replies: Counter,
    pub protocol_errors: Counter,
    pub frame_errors: Counter,
    pub idle_closes: Counter,
}

/// The server metrics, registered on first use.
pub fn metrics() -> &'static SrvMetrics {
    static METRICS: OnceLock<SrvMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SrvMetrics {
        query_ns: subq_telemetry::histogram("subq_server_query_ns"),
        commit_ns: subq_telemetry::histogram("subq_server_commit_ns"),
        ddl_ns: subq_telemetry::histogram("subq_server_ddl_ns"),
        explain_ns: subq_telemetry::histogram("subq_server_explain_ns"),
        queue_depth: subq_telemetry::gauge("subq_server_queue_depth"),
        active_sessions: subq_telemetry::gauge("subq_server_active_sessions"),
        bytes_in: subq_telemetry::counter("subq_server_bytes_in_total"),
        bytes_out: subq_telemetry::counter("subq_server_bytes_out_total"),
        accepted: subq_telemetry::counter("subq_server_accepted_total"),
        closed: subq_telemetry::counter("subq_server_closed_total"),
        queries: subq_telemetry::counter("subq_server_queries_total"),
        commits: subq_telemetry::counter("subq_server_commits_total"),
        busy_replies: subq_telemetry::counter("subq_server_busy_total"),
        protocol_errors: subq_telemetry::counter("subq_server_protocol_errors_total"),
        frame_errors: subq_telemetry::counter("subq_server_frame_errors_total"),
        idle_closes: subq_telemetry::counter("subq_server_idle_closes_total"),
    })
}
