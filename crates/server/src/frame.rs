//! The wire framing: length-prefixed, CRC-checked payloads.
//!
//! A frame is `payload_len:u32 | crc:u32 | payload`, both integers
//! little-endian and `crc = CRC32(payload)` — deliberately the same
//! layout as a WAL record (`subq_oodb::durable::codec`), and computed
//! with the same CRC32, so one checksum discipline covers both places
//! bytes cross a trust boundary. The payload is UTF-8 protocol text
//! (see [`crate::proto`]).
//!
//! Framing errors are *fatal to the connection*: a declared length over
//! the cap or a checksum mismatch means the byte stream can no longer be
//! trusted to contain frame boundaries at all, so the server sends one
//! typed error reply and closes. Errors *inside* a well-framed payload
//! (bad UTF-8, unparsable request text) are session-survivable and
//! handled a layer up.

use std::fmt;
use std::io::{self, Read, Write};
use subq_oodb::durable::codec::crc32;

/// Bytes of the `len | crc` header.
pub const HEADER_LEN: usize = 8;

/// Default cap on a single payload (1 MiB).
pub const DEFAULT_MAX_PAYLOAD: usize = 1 << 20;

/// A fatal framing error; the connection closes after reporting it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The declared payload length exceeds the negotiated cap.
    TooBig { declared: usize, max: usize },
    /// The payload failed its checksum.
    BadCrc { expected: u32, actual: u32 },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooBig { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
            FrameError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#010x}, payload {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one encoded frame to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// An incremental frame decoder over bytes fed from a socket.
///
/// Feed raw reads through [`FrameDecoder::extend`]; pull complete frames
/// with [`FrameDecoder::next_frame`]. Buffered bytes never exceed the
/// payload cap plus one header plus one read chunk, because a header
/// declaring more is rejected before its payload is awaited.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    max_payload: usize,
}

impl FrameDecoder {
    pub fn new(max_payload: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            max_payload,
        }
    }

    /// Feeds raw bytes from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (undelivered frames and partial tail).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The next complete frame's payload, `Ok(None)` when more bytes are
    /// needed, or a fatal [`FrameError`].
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes")) as usize;
        if declared > self.max_payload {
            return Err(FrameError::TooBig {
                declared,
                max: self.max_payload,
            });
        }
        let expected = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes"));
        if self.buf.len() < HEADER_LEN + declared {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..HEADER_LEN + declared].to_vec();
        let actual = crc32(&payload);
        if actual != expected {
            return Err(FrameError::BadCrc { expected, actual });
        }
        self.buf.drain(..HEADER_LEN + declared);
        Ok(Some(payload))
    }
}

/// Writes one frame to a blocking transport (client side).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_frame(payload, &mut bytes);
    w.write_all(&bytes)
}

/// Reads one frame from a blocking transport (client side); framing
/// errors surface as `InvalidData`, a clean peer close as
/// `UnexpectedEof`.
pub fn read_frame<R: Read>(r: &mut R, max_payload: usize) -> io::Result<Vec<u8>> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let declared = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let expected = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if declared > max_payload {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::TooBig {
                declared,
                max: max_payload,
            },
        ));
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload)?;
    let actual = crc32(&payload);
    if actual != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::BadCrc { expected, actual },
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_decoder() {
        let mut wire = Vec::new();
        encode_frame(b"hello", &mut wire);
        encode_frame(b"", &mut wire);
        encode_frame(b"world", &mut wire);
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
        // Feed byte by byte: every prefix either yields a frame or asks
        // for more — never an error.
        let mut frames = Vec::new();
        for byte in wire {
            decoder.extend(&[byte]);
            while let Some(frame) = decoder.next_frame().expect("well-formed") {
                frames.push(frame);
            }
        }
        assert_eq!(
            frames,
            vec![b"hello".to_vec(), b"".to_vec(), b"world".to_vec()]
        );
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn oversized_length_is_fatal_before_the_payload_arrives() {
        let mut decoder = FrameDecoder::new(16);
        decoder.extend(&1_000_000u32.to_le_bytes());
        decoder.extend(&0u32.to_le_bytes());
        assert!(matches!(
            decoder.next_frame(),
            Err(FrameError::TooBig {
                declared: 1_000_000,
                max: 16
            })
        ));
    }

    #[test]
    fn corrupt_payload_fails_its_checksum() {
        let mut wire = Vec::new();
        encode_frame(b"payload", &mut wire);
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
        decoder.extend(&wire);
        assert!(matches!(
            decoder.next_frame(),
            Err(FrameError::BadCrc { .. })
        ));
    }
}
