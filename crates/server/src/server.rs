//! `subqd` itself: configuration, lifecycle, and the accept loop.
//!
//! [`Server::start`] takes ownership of an [`OptimizedDatabase`] —
//! volatile or opened durably — publishes its state, hands a [`Reader`]
//! to every worker, and moves the database into the single writer
//! thread. From that point the only paths into the data are the ones
//! the paper's architecture prescribes: immutable snapshots outward,
//! one bounded command queue inward.

use crate::worker::{run_worker, Intake};
use crate::writer::{run_writer, WriteRequest};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use subq_oodb::{AdvisorConfig, OptimizedDatabase};
use subq_telemetry::{log, SlowLog};

/// Tuning knobs; every buffer the server allocates is bounded by one of
/// these.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Loopback port to bind (0 picks a free one).
    pub port: u16,
    /// Worker threads (0 = one per core).
    pub workers: usize,
    /// Depth of the bounded write-command queue; a full queue answers
    /// `BUSY`.
    pub write_queue: usize,
    /// Parsed requests a session may have queued before the server stops
    /// reading its socket (admission control).
    pub inbox_limit: usize,
    /// Outbound bytes a session may have buffered before the server
    /// stops reading its socket (slow-reader protection).
    pub outbound_limit: usize,
    /// Cap on one frame's payload.
    pub max_payload: usize,
    /// A session with no progress for this long is closed.
    pub idle_timeout: Duration,
    /// Queries slower than this many microseconds are recorded in the
    /// slow-query ring (`None` disables the log).
    pub slow_query_us: Option<u64>,
    /// The workload-adaptive view advisor: mode and budget (off by
    /// default). See [`subq_oodb::advisor`].
    pub advisor: AdvisorConfig,
    /// Minimum spacing between automatic advisor passes on the writer
    /// thread (an explicit `ADVISE` always forces one).
    pub advisor_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 0,
            write_queue: 64,
            inbox_limit: 32,
            outbound_limit: 1 << 22,
            max_payload: crate::frame::DEFAULT_MAX_PAYLOAD,
            idle_timeout: Duration::from_secs(30),
            slow_query_us: None,
            advisor: AdvisorConfig::default(),
            advisor_interval: Duration::from_millis(200),
        }
    }
}

/// Cumulative counters, updated by workers and readable at any time.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub accepted: AtomicU64,
    pub closed: AtomicU64,
    pub queries: AtomicU64,
    pub commits: AtomicU64,
    pub busy_replies: AtomicU64,
    /// Survivable per-request errors (parse failures, unknown names).
    pub protocol_errors: AtomicU64,
    /// Fatal framing errors (length over cap, checksum mismatch).
    pub frame_errors: AtomicU64,
    pub idle_closes: AtomicU64,
    /// The slow-query ring `STATS SLOW` reads back (see
    /// [`ServerConfig::slow_query_us`]).
    pub slow_log: SlowLog,
}

impl ServerStats {
    pub(crate) fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A running server; dropping it shuts everything down.
pub struct Server {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    crashed: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds a loopback listener and spawns the writer, the workers, and
    /// the accept loop. Durability is inherited from how `db` was
    /// opened: a durable database commits through the WAL with one
    /// fsync per drained batch; a volatile one skips the log.
    pub fn start(mut db: OptimizedDatabase, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // Publish before handing out readers so every worker starts on
        // the current state, not a stale cell. The advisor config lands
        // first: it flips the recording flag the published cell carries.
        db.set_advisor_config(config.advisor.clone());
        db.publish_snapshot();
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let crashed = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<WriteRequest>(config.write_queue.max(1));

        let mut threads = Vec::with_capacity(workers + 2);
        let mut intakes = Vec::with_capacity(workers);
        for _ in 0..workers {
            let reader = db.reader();
            let intake = Arc::new(Intake::default());
            intakes.push(intake.clone());
            let (tx, config, stats) = (tx.clone(), config.clone(), stats.clone());
            let (shutdown, crashed) = (shutdown.clone(), crashed.clone());
            threads.push(std::thread::spawn(move || {
                run_worker(reader, intake, tx, config, stats, shutdown, crashed)
            }));
        }
        drop(tx);

        {
            let (shutdown, crashed) = (shutdown.clone(), crashed.clone());
            let advisor_interval = config.advisor_interval;
            threads.push(std::thread::spawn(move || {
                run_writer(db, rx, shutdown, crashed, advisor_interval)
            }));
        }

        {
            let stats = stats.clone();
            let (shutdown, crashed) = (shutdown.clone(), crashed.clone());
            threads.push(std::thread::spawn(move || {
                let mut next = 0usize;
                loop {
                    if shutdown.load(Ordering::Relaxed) || crashed.load(Ordering::Relaxed) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            stats.bump(&stats.accepted);
                            crate::metrics::metrics().accepted.inc();
                            log::debug(|| format!("accept {peer}"));
                            let intake = &intakes[next % intakes.len()];
                            next += 1;
                            intake.streams.lock().expect("intake poisoned").push(stream);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_micros(500));
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => return,
                    }
                }
            }));
        }

        Ok(Server {
            addr,
            stats,
            shutdown,
            crashed,
            threads,
        })
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        self.stats.clone()
    }

    /// True once the durable engine has failed; the server stops
    /// accepting and drops every session — recovery is a fresh
    /// [`OptimizedDatabase::open`] over the surviving files and a new
    /// [`Server::start`].
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Stops accepting, drops every session, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}
