//! The `subqd` binary: serve a DL model over TCP.
//!
//! ```text
//! subqd [--port N] [--workers N] [--queue N] [--dir PATH] [--model FILE] [--group-commit N]
//! ```
//!
//! Without `--model` the built-in medical sample schema is served;
//! without `--dir` the store is volatile (no WAL, no checkpoints).
//! With `--dir`, the directory is opened through the durable engine:
//! an existing image + WAL recovers, an empty directory initializes.

use std::process::exit;
use std::sync::Arc;
use subq_oodb::{Database, DurableOptions, FileBackend, OptimizedDatabase};
use subq_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: subqd [--port N] [--workers N] [--queue N] [--dir PATH] [--model FILE] [--group-commit N]"
    );
    exit(2)
}

fn fail(what: &str, detail: impl std::fmt::Display) -> ! {
    eprintln!("subqd: {what}: {detail}");
    exit(1)
}

fn main() {
    let mut config = ServerConfig::default();
    let mut dir: Option<String> = None;
    let mut model_path: Option<String> = None;
    let mut group_commit = 64usize;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--port" => config.port = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => config.workers = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => config.write_queue = value().parse().unwrap_or_else(|_| usage()),
            "--dir" => dir = Some(value()),
            "--model" => model_path = Some(value()),
            "--group-commit" => group_commit = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    let model = match &model_path {
        Some(path) => {
            let source = std::fs::read_to_string(path).unwrap_or_else(|e| fail("reading model", e));
            subq_dl::parse_model(&source).unwrap_or_else(|e| fail("parsing model", e))
        }
        None => subq_dl::samples::medical_model(),
    };

    let db = match &dir {
        Some(dir) => {
            let backend =
                FileBackend::new(dir.as_str()).unwrap_or_else(|e| fail("opening backend", e));
            OptimizedDatabase::open(
                Arc::new(backend),
                DurableOptions { group_commit },
                move || Database::new(model),
            )
            .unwrap_or_else(|e| fail("recovering store", e))
        }
        None => OptimizedDatabase::new(Database::new(model))
            .unwrap_or_else(|e| fail("translating model", e)),
    };

    let server = Server::start(db, config).unwrap_or_else(|e| fail("starting server", e));
    println!("subqd listening on {}", server.addr());
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
        let stats = server.stats();
        if server.crashed() {
            fail("durable engine failed", "restart to recover from the log");
        }
        eprintln!(
            "subqd: sessions={} queries={} commits={} busy={}",
            stats.accepted.load(std::sync::atomic::Ordering::Relaxed),
            stats.queries.load(std::sync::atomic::Ordering::Relaxed),
            stats.commits.load(std::sync::atomic::Ordering::Relaxed),
            stats
                .busy_replies
                .load(std::sync::atomic::Ordering::Relaxed),
        );
    }
}
