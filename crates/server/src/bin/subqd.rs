//! The `subqd` binary: serve a DL model over TCP.
//!
//! ```text
//! subqd [--port N] [--workers N] [--queue N] [--dir PATH] [--model FILE]
//!       [--group-commit N] [--log-level off|info|debug] [--slow-query-us N]
//!       [--metrics-dump PATH] [--advisor off|observe|auto]
//!       [--advisor-max-views N] [--advisor-min-gain F]
//!       [--advisor-evict-after N] [--advisor-interval-ms N]
//! ```
//!
//! Without `--model` the built-in medical sample schema is served;
//! without `--dir` the store is volatile (no WAL, no checkpoints).
//! With `--dir`, the directory is opened through the durable engine:
//! an existing image + WAL recovers, an empty directory initializes.
//!
//! Observability knobs:
//!
//! * `--log-level` — timestamped lifecycle logging to stderr (`info`
//!   covers startup/recovery/shutdown summaries, `debug` adds
//!   accept/close/reap and writer batch-commit lines);
//! * `--slow-query-us N` — queries slower than N microseconds land in
//!   the slow-query ring, readable over the wire with `STATS SLOW`;
//! * `--metrics-dump PATH` — the full Prometheus-style text exposition
//!   of the process registry is rewritten to PATH every 5 seconds (the
//!   same text `STATS` returns over the wire), once right after
//!   startup, and once more on shutdown — even a sub-5-second run
//!   leaves a complete final dump behind.
//!
//! Self-tuning knobs (the workload-adaptive view advisor):
//!
//! * `--advisor off|observe|auto` — `observe` mines query shapes and
//!   scores candidates (readable with `ADVISE`) without touching the
//!   catalog; `auto` additionally materializes the winners and evicts
//!   cold auto-views;
//! * `--advisor-max-views N` — cap on concurrently live auto-views;
//! * `--advisor-min-gain F` — minimum expected gain before a shape is
//!   materialized;
//! * `--advisor-evict-after N` — passes an auto-view may stay cold
//!   before it is evicted;
//! * `--advisor-interval-ms N` — spacing of automatic advisor passes
//!   on the writer thread.
//!
//! Shutdown: `quit`, `stop`, or `shutdown` on stdin stops the server
//! cleanly (exit 0) after flushing the metrics dump. A durable-engine
//! failure exits 1, also after a final dump.

use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use subq_oodb::{AdvisorMode, Database, DurableOptions, FileBackend, OptimizedDatabase};
use subq_server::{Server, ServerConfig};
use subq_telemetry::log;

fn usage() -> ! {
    eprintln!(
        "usage: subqd [--port N] [--workers N] [--queue N] [--dir PATH] [--model FILE] \
         [--group-commit N] [--log-level off|info|debug] [--slow-query-us N] \
         [--metrics-dump PATH] [--advisor off|observe|auto] [--advisor-max-views N] \
         [--advisor-min-gain F] [--advisor-evict-after N] [--advisor-interval-ms N]"
    );
    exit(2)
}

fn fail(what: &str, detail: impl std::fmt::Display) -> ! {
    eprintln!("subqd: {what}: {detail}");
    exit(1)
}

fn write_dump(path: &str) {
    if let Err(e) = std::fs::write(path, subq_telemetry::global().render()) {
        eprintln!("subqd: writing metrics dump: {e}");
    }
}

fn main() {
    let mut config = ServerConfig::default();
    let mut dir: Option<String> = None;
    let mut model_path: Option<String> = None;
    let mut metrics_dump: Option<String> = None;
    let mut group_commit = 64usize;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--port" => config.port = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => config.workers = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => config.write_queue = value().parse().unwrap_or_else(|_| usage()),
            "--dir" => dir = Some(value()),
            "--model" => model_path = Some(value()),
            "--group-commit" => group_commit = value().parse().unwrap_or_else(|_| usage()),
            "--log-level" => {
                let level = log::Level::parse(&value()).unwrap_or_else(|| usage());
                log::set_level(level);
            }
            "--slow-query-us" => {
                config.slow_query_us = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--metrics-dump" => metrics_dump = Some(value()),
            "--advisor" => {
                config.advisor.mode = AdvisorMode::parse(&value()).unwrap_or_else(|| usage());
            }
            "--advisor-max-views" => {
                config.advisor.max_auto_views = value().parse().unwrap_or_else(|_| usage());
            }
            "--advisor-min-gain" => {
                config.advisor.min_gain = value().parse().unwrap_or_else(|_| usage());
            }
            "--advisor-evict-after" => {
                config.advisor.evict_after = value().parse().unwrap_or_else(|_| usage());
            }
            "--advisor-interval-ms" => {
                config.advisor_interval =
                    std::time::Duration::from_millis(value().parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }

    let model = match &model_path {
        Some(path) => {
            let source = std::fs::read_to_string(path).unwrap_or_else(|e| fail("reading model", e));
            subq_dl::parse_model(&source).unwrap_or_else(|e| fail("parsing model", e))
        }
        None => subq_dl::samples::medical_model(),
    };

    let db = match &dir {
        Some(dir) => {
            let backend =
                FileBackend::new(dir.as_str()).unwrap_or_else(|e| fail("opening backend", e));
            let db = OptimizedDatabase::open(
                Arc::new(backend),
                DurableOptions { group_commit },
                move || Database::new(model),
            )
            .unwrap_or_else(|e| fail("recovering store", e));
            if let Some(stats) = db.durability_stats() {
                let version = db.database().data_version();
                log::info(|| {
                    format!(
                        "recovered {dir}: version={version} replayed={} truncated_tail_bytes={}",
                        stats.recovered_records, stats.truncated_tail_bytes
                    )
                });
            }
            db
        }
        None => OptimizedDatabase::new(Database::new(model))
            .unwrap_or_else(|e| fail("translating model", e)),
    };

    let server = Server::start(db, config).unwrap_or_else(|e| fail("starting server", e));
    println!("subqd listening on {}", server.addr());
    log::info(|| format!("listening on {}", server.addr()));

    // `quit`/`stop`/`shutdown` on stdin requests a clean exit. EOF (a
    // daemonized stdin) just parks the watcher — it never shuts down.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match std::io::stdin().read_line(&mut line) {
                    Ok(0) | Err(_) => return,
                    Ok(_) => {
                        if matches!(line.trim(), "quit" | "stop" | "shutdown") {
                            stop.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            }
        });
    }

    // First dump right away: even a run killed within seconds leaves a
    // complete exposition behind, not an absent file.
    if let Some(path) = &metrics_dump {
        write_dump(path);
    }
    let mut ticks = 0u64;
    loop {
        std::thread::sleep(std::time::Duration::from_millis(100));
        ticks += 1;
        if stop.load(Ordering::Relaxed) {
            log::info(|| "shutdown requested on stdin".to_owned());
            server.shutdown();
            if let Some(path) = &metrics_dump {
                write_dump(path);
            }
            exit(0)
        }
        if server.crashed() {
            if let Some(path) = &metrics_dump {
                write_dump(path);
            }
            fail("durable engine failed", "restart to recover from the log");
        }
        if ticks.is_multiple_of(50) {
            if let Some(path) = &metrics_dump {
                write_dump(path);
            }
        }
        if ticks.is_multiple_of(600) {
            let stats = server.stats();
            eprintln!(
                "subqd: sessions={} queries={} commits={} busy={}",
                stats.accepted.load(Ordering::Relaxed),
                stats.queries.load(Ordering::Relaxed),
                stats.commits.load(Ordering::Relaxed),
                stats.busy_replies.load(Ordering::Relaxed),
            );
        }
    }
}
