//! The protocol text that travels inside frames.
//!
//! Every payload is UTF-8 text whose first line is a verb. Queries and
//! view definitions travel as DL source (`crates/dl` round-trips its
//! parse/pretty pair, so the AST is the wire format's semantics);
//! transactions travel as one op per line. Replies mirror the same
//! shape. [`Request`] and [`Response`] each have a `parse`/`render`
//! pair that is an identity on values — the protocol round-trip
//! property suite drills exactly that, the way the DL suite drills the
//! printer.
//!
//! ```text
//! request  := PING | BYE
//!           | MATERIALIZE <name>
//!           | QUERY \n <dl query-class>
//!           | EXPLAIN \n <dl query-class>
//!           | DEFVIEW \n <dl query-class>
//!           | TXN <n> \n (<op> \n?){n}
//!           | STATS | STATS SLOW
//!           | ADVISE
//! op       := add <obj>
//!           | class (+|-) <obj> <class>
//!           | attr (+|-) <from> <attr> <to>
//! response := PONG <version> | OK <version> | COMMITTED <version>
//!           | BUSY <detail>
//!           | ERR <code> <message>
//!           | ANSWERS <version> <n> \n (<name> \n?){n}
//!           | REPORT <version> <n> \n (<line> \n?){n}
//! ```
//!
//! `EXPLAIN` answers with a `REPORT` whose lines are the structured
//! plan text of [`subq_oodb::ExplainReport::render_lines`]; `STATS`
//! answers with the metrics registry in Prometheus text exposition;
//! `STATS SLOW` answers with the slow-query ring, one
//! `<micros> <label>` line per retained entry, oldest first. `ADVISE`
//! forces one advisor pass through the writer and answers with the
//! advisor's candidate table (`candidate …` lines, hottest first, then
//! one `advisor …` summary line — see
//! [`subq_oodb::Advisor::report_lines`]).

use std::fmt;
use subq_dl::pretty::render_query;
use subq_dl::{parse_query, QueryClassDecl};

/// Cap on ops per transaction — admission control against a single
/// frame smuggling unbounded writer work.
pub const MAX_TXN_OPS: usize = 4096;

/// One mutation inside a [`Request::Txn`], by object name (objects are
/// created on demand, mirroring `subq_workload::ChurnOp::apply`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnOp {
    /// `add <obj>`: create an object.
    Add { object: String },
    /// `class +|- <obj> <class>`: assert or retract a class membership.
    Class {
        assert: bool,
        object: String,
        class: String,
    },
    /// `attr +|- <from> <attr> <to>`: assert or retract an attribute pair.
    Attr {
        assert: bool,
        from: String,
        attr: String,
        to: String,
    },
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered from the worker's snapshot.
    Ping,
    /// Graceful close: the server replies `OK` and closes after flushing.
    Bye,
    /// Evaluate a query class against the worker's snapshot.
    Query(QueryClassDecl),
    /// Explain how a query class would be planned and executed, without
    /// evaluating it; answered with a [`Response::Report`].
    Explain(QueryClassDecl),
    /// Declare a new view (schema DDL) and materialize it.
    DefView(QueryClassDecl),
    /// Materialize an already-declared query or schema class as a view.
    Materialize { name: String },
    /// Apply one write transaction through the single writer.
    Txn(Vec<TxnOp>),
    /// Read the metrics registry (`slow = false`) or the slow-query ring
    /// (`slow = true`); answered with a [`Response::Report`].
    Stats { slow: bool },
    /// Force one advisor pass and read the candidate table; answered
    /// with a [`Response::Report`]. Routed through the writer — mining
    /// and materialization only ever happen between transactions.
    Advise,
}

/// Typed error classes carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Request text (or embedded DL) failed to parse or validate.
    Parse,
    /// A referenced name is not declared in the model.
    Unknown,
    /// Frame length over the cap — connection closes after this reply.
    TooBig,
    /// Frame checksum mismatch — connection closes after this reply.
    BadCrc,
    /// Server-side failure (durable engine error, writer gone).
    Internal,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "PARSE",
            ErrorCode::Unknown => "UNKNOWN",
            ErrorCode::TooBig => "TOOBIG",
            ErrorCode::BadCrc => "BADCRC",
            ErrorCode::Internal => "INTERNAL",
        }
    }

    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "PARSE" => ErrorCode::Parse,
            "UNKNOWN" => ErrorCode::Unknown,
            "TOOBIG" => ErrorCode::TooBig,
            "BADCRC" => ErrorCode::BadCrc,
            "INTERNAL" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A server reply.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Liveness answer with the answering snapshot's data version.
    Pong { version: u64 },
    /// DDL or close acknowledged at `version`.
    Ok { version: u64 },
    /// Transaction committed; `version` is the published boundary.
    Committed { version: u64 },
    /// Query answers from the snapshot at `version`.
    Answers { version: u64, names: Vec<String> },
    /// Admission control: the write queue is full; retry later.
    Busy { detail: String },
    /// A typed error.
    Error { code: ErrorCode, message: String },
    /// Structured observability text (EXPLAIN plans, STATS expositions)
    /// from the snapshot at `version`, one datum per line.
    Report { version: u64, lines: Vec<String> },
}

/// Why a request failed to parse; becomes an `ERR` reply.
pub type ParseFailure = (ErrorCode, String);

fn ident_ok(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| !c.is_whitespace() && !c.is_control())
}

fn parse_ident(word: Option<&str>, what: &str) -> Result<String, ParseFailure> {
    match word {
        Some(w) if ident_ok(w) => Ok(w.to_owned()),
        Some(w) => Err((ErrorCode::Parse, format!("invalid {what}: {w:?}"))),
        None => Err((ErrorCode::Parse, format!("missing {what}"))),
    }
}

fn parse_sign(word: Option<&str>) -> Result<bool, ParseFailure> {
    match word {
        Some("+") => Ok(true),
        Some("-") => Ok(false),
        other => Err((
            ErrorCode::Parse,
            format!("expected + or -, found {other:?}"),
        )),
    }
}

fn end_of_line(mut words: std::str::SplitWhitespace<'_>) -> Result<(), ParseFailure> {
    match words.next() {
        None => Ok(()),
        Some(extra) => Err((
            ErrorCode::Parse,
            format!("unexpected trailing token {extra:?}"),
        )),
    }
}

impl TxnOp {
    fn render(&self, out: &mut String) {
        match self {
            TxnOp::Add { object } => {
                out.push_str("add ");
                out.push_str(object);
            }
            TxnOp::Class {
                assert,
                object,
                class,
            } => {
                out.push_str(if *assert { "class + " } else { "class - " });
                out.push_str(object);
                out.push(' ');
                out.push_str(class);
            }
            TxnOp::Attr {
                assert,
                from,
                attr,
                to,
            } => {
                out.push_str(if *assert { "attr + " } else { "attr - " });
                out.push_str(from);
                out.push(' ');
                out.push_str(attr);
                out.push(' ');
                out.push_str(to);
            }
        }
    }

    fn parse(line: &str) -> Result<TxnOp, ParseFailure> {
        let mut words = line.split_whitespace();
        let op = match words.next() {
            Some("add") => TxnOp::Add {
                object: parse_ident(words.next(), "object")?,
            },
            Some("class") => TxnOp::Class {
                assert: parse_sign(words.next())?,
                object: parse_ident(words.next(), "object")?,
                class: parse_ident(words.next(), "class")?,
            },
            Some("attr") => TxnOp::Attr {
                assert: parse_sign(words.next())?,
                from: parse_ident(words.next(), "object")?,
                attr: parse_ident(words.next(), "attribute")?,
                to: parse_ident(words.next(), "object")?,
            },
            other => {
                return Err((ErrorCode::Parse, format!("unknown txn op {other:?}")));
            }
        };
        end_of_line(words)?;
        Ok(op)
    }
}

impl Request {
    /// Renders to protocol text. Identifiers must satisfy the wire
    /// grammar (non-empty, no whitespace or control characters);
    /// rendering does not re-validate them.
    pub fn render(&self) -> String {
        match self {
            Request::Ping => "PING".to_owned(),
            Request::Bye => "BYE".to_owned(),
            Request::Query(query) => format!("QUERY\n{}", render_query(query)),
            Request::Explain(query) => format!("EXPLAIN\n{}", render_query(query)),
            Request::DefView(query) => format!("DEFVIEW\n{}", render_query(query)),
            Request::Materialize { name } => format!("MATERIALIZE {name}"),
            Request::Stats { slow } => {
                if *slow {
                    "STATS SLOW".to_owned()
                } else {
                    "STATS".to_owned()
                }
            }
            Request::Advise => "ADVISE".to_owned(),
            Request::Txn(ops) => {
                let mut out = format!("TXN {}\n", ops.len());
                for op in ops {
                    op.render(&mut out);
                    out.push('\n');
                }
                out
            }
        }
    }

    /// Parses protocol text; failures carry the typed error code the
    /// server replies with.
    pub fn parse(text: &str) -> Result<Request, ParseFailure> {
        let (first, rest) = match text.split_once('\n') {
            Some((first, rest)) => (first, rest),
            None => (text, ""),
        };
        let mut words = first.split_whitespace();
        match words.next() {
            Some("PING") => {
                end_of_line(words)?;
                Ok(Request::Ping)
            }
            Some("BYE") => {
                end_of_line(words)?;
                Ok(Request::Bye)
            }
            Some("MATERIALIZE") => {
                let name = parse_ident(words.next(), "view name")?;
                end_of_line(words)?;
                Ok(Request::Materialize { name })
            }
            Some("QUERY") => {
                end_of_line(words)?;
                let query =
                    parse_query(rest).map_err(|e| (ErrorCode::Parse, format!("bad query: {e}")))?;
                Ok(Request::Query(query))
            }
            Some("EXPLAIN") => {
                end_of_line(words)?;
                let query =
                    parse_query(rest).map_err(|e| (ErrorCode::Parse, format!("bad query: {e}")))?;
                Ok(Request::Explain(query))
            }
            Some("STATS") => match words.next() {
                None => Ok(Request::Stats { slow: false }),
                Some("SLOW") => {
                    end_of_line(words)?;
                    Ok(Request::Stats { slow: true })
                }
                Some(other) => Err((
                    ErrorCode::Parse,
                    format!("unknown STATS selector {other:?}"),
                )),
            },
            Some("ADVISE") => {
                end_of_line(words)?;
                Ok(Request::Advise)
            }
            Some("DEFVIEW") => {
                end_of_line(words)?;
                let query = parse_query(rest)
                    .map_err(|e| (ErrorCode::Parse, format!("bad view definition: {e}")))?;
                Ok(Request::DefView(query))
            }
            Some("TXN") => {
                let count: usize = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or((ErrorCode::Parse, "TXN needs an op count".to_owned()))?;
                end_of_line(words)?;
                if count > MAX_TXN_OPS {
                    return Err((
                        ErrorCode::Parse,
                        format!("transaction of {count} ops exceeds the {MAX_TXN_OPS}-op cap"),
                    ));
                }
                let mut lines = rest.lines();
                let mut ops = Vec::with_capacity(count);
                for _ in 0..count {
                    let line = lines.next().ok_or((
                        ErrorCode::Parse,
                        format!("TXN declared {count} ops, found {}", ops.len()),
                    ))?;
                    ops.push(TxnOp::parse(line)?);
                }
                if let Some(extra) = lines.next() {
                    if !extra.trim().is_empty() {
                        return Err((
                            ErrorCode::Parse,
                            format!("unexpected text after {count} txn ops: {extra:?}"),
                        ));
                    }
                }
                Ok(Request::Txn(ops))
            }
            other => Err((ErrorCode::Parse, format!("unknown verb {other:?}"))),
        }
    }
}

impl Response {
    pub fn render(&self) -> String {
        match self {
            Response::Pong { version } => format!("PONG {version}"),
            Response::Ok { version } => format!("OK {version}"),
            Response::Committed { version } => format!("COMMITTED {version}"),
            Response::Answers { version, names } => {
                let mut out = format!("ANSWERS {version} {}\n", names.len());
                for name in names {
                    out.push_str(name);
                    out.push('\n');
                }
                out
            }
            Response::Busy { detail } => format!("BUSY {detail}"),
            Response::Error { code, message } => format!("ERR {code} {message}"),
            Response::Report { version, lines } => {
                let mut out = format!("REPORT {version} {}\n", lines.len());
                for line in lines {
                    out.push_str(line);
                    out.push('\n');
                }
                out
            }
        }
    }

    pub fn parse(text: &str) -> Result<Response, String> {
        let (first, rest) = match text.split_once('\n') {
            Some((first, rest)) => (first, rest),
            None => (text, ""),
        };
        let mut words = first.split_whitespace();
        let version = |w: Option<&str>| -> Result<u64, String> {
            w.and_then(|v| v.parse().ok())
                .ok_or_else(|| "missing or invalid version".to_owned())
        };
        match words.next() {
            Some("PONG") => Ok(Response::Pong {
                version: version(words.next())?,
            }),
            Some("OK") => Ok(Response::Ok {
                version: version(words.next())?,
            }),
            Some("COMMITTED") => Ok(Response::Committed {
                version: version(words.next())?,
            }),
            Some("ANSWERS") => {
                let version = version(words.next())?;
                let count: usize = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| "ANSWERS needs a count".to_owned())?;
                let names: Vec<String> = rest.lines().map(str::to_owned).collect();
                if names.len() != count {
                    return Err(format!(
                        "ANSWERS declared {count} names, found {}",
                        names.len()
                    ));
                }
                Ok(Response::Answers { version, names })
            }
            Some("REPORT") => {
                let version = version(words.next())?;
                let count: usize = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| "REPORT needs a count".to_owned())?;
                let lines: Vec<String> = rest.lines().map(str::to_owned).collect();
                if lines.len() != count {
                    return Err(format!(
                        "REPORT declared {count} lines, found {}",
                        lines.len()
                    ));
                }
                Ok(Response::Report { version, lines })
            }
            Some("BUSY") => {
                let at = first.find("BUSY").expect("matched") + "BUSY".len();
                Ok(Response::Busy {
                    detail: first[at..].trim_start().to_owned(),
                })
            }
            Some("ERR") => {
                let code = words
                    .next()
                    .and_then(ErrorCode::parse)
                    .ok_or_else(|| "ERR needs a known code".to_owned())?;
                let prefix_len = first.find(code.as_str()).expect("matched") + code.as_str().len();
                Ok(Response::Error {
                    code,
                    message: first[prefix_len..].trim_start().to_owned(),
                })
            }
            other => Err(format!("unknown reply {other:?}")),
        }
    }
}
