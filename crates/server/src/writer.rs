//! The single-writer command funnel.
//!
//! Workers never touch the [`OptimizedDatabase`]: every mutation travels
//! as a [`WriteRequest`] through one bounded channel into the writer
//! thread that owns it (the oidadb `edb_job_t` shape — scheduled writes,
//! threadsafe reads through handles). The writer drains whatever has
//! queued, applies each command as its own transaction, and — when the
//! store is durable — forces **one** fsync over the whole drained batch
//! before completing any ticket: an acknowledged commit is a durable
//! commit, and the stable-storage barrier is amortized exactly like the
//! WAL's own group commit (E13 measures that curve; E14 measures this
//! end of it).
//!
//! Admission control lives at the channel: it is a rendezvous of size
//! `ServerConfig::write_queue`, workers only ever `try_send`, and a full
//! queue turns into a typed `BUSY` reply instead of buffering — the
//! writer can be *behind*, never *besieged*.

use crate::proto::{ErrorCode, Response, TxnOp};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use subq_dl::{validate_model, DlModel, QueryClassDecl};
use subq_oodb::{Database, OptimizedDatabase};
use subq_telemetry::log;

/// A mutation command, already parsed and ready for the writer.
#[derive(Clone, Debug)]
pub enum WriteCmd {
    /// One transaction of ops, applied atomically.
    Txn(Vec<TxnOp>),
    /// Declare a query class (schema DDL) and materialize it as a view.
    DefView(QueryClassDecl),
    /// Materialize an already-declared query or schema class.
    Materialize(String),
    /// Force one advisor pass and report the candidate table.
    Advise,
}

/// The completion slot a worker polls while the writer works. Single
/// producer (the writer), single consumer (the owning session).
#[derive(Clone, Debug)]
pub struct Ticket(Arc<Mutex<Option<Response>>>);

impl Ticket {
    pub(crate) fn new() -> Ticket {
        Ticket(Arc::new(Mutex::new(None)))
    }

    pub(crate) fn complete(&self, response: Response) {
        *self.0.lock().expect("ticket poisoned") = Some(response);
    }

    /// Takes the response once the writer has produced it.
    pub(crate) fn poll(&self) -> Option<Response> {
        self.0.lock().expect("ticket poisoned").take()
    }
}

/// One queued command plus its completion slot.
#[derive(Debug)]
pub struct WriteRequest {
    pub cmd: WriteCmd,
    pub ticket: Ticket,
}

fn internal(message: &str) -> Response {
    Response::Error {
        code: ErrorCode::Internal,
        message: message.to_owned(),
    }
}

/// Validates every op against the model: transactions are rejected
/// atomically (nothing applied) when they reference undeclared classes
/// or attributes, so a client typo cannot grow shadow extents no query
/// can see.
fn validate_txn(model: &DlModel, ops: &[TxnOp]) -> Result<(), Response> {
    let known_attr = |name: &str| {
        model
            .attributes
            .iter()
            .any(|a| a.name == name || a.inverse.as_deref() == Some(name))
    };
    for op in ops {
        match op {
            TxnOp::Add { .. } => {}
            TxnOp::Class { class, .. } => {
                if model.class(class).is_none() {
                    return Err(Response::Error {
                        code: ErrorCode::Unknown,
                        message: format!("unknown class {class}"),
                    });
                }
            }
            TxnOp::Attr { attr, .. } => {
                if !known_attr(attr) {
                    return Err(Response::Error {
                        code: ErrorCode::Unknown,
                        message: format!("unknown attribute {attr}"),
                    });
                }
            }
        }
    }
    Ok(())
}

fn apply_op(db: &mut Database, op: &TxnOp) {
    match op {
        TxnOp::Add { object } => {
            db.add_object(object);
        }
        TxnOp::Class {
            assert,
            object,
            class,
        } => {
            let id = db.add_object(object);
            if *assert {
                db.assert_class(id, class);
            } else {
                db.retract_class(id, class);
            }
        }
        TxnOp::Attr {
            assert,
            from,
            attr,
            to,
        } => {
            let (from, to) = (db.add_object(from), db.add_object(to));
            if *assert {
                db.assert_attr(from, attr, to);
            } else {
                db.retract_attr(from, attr, to);
            }
        }
    }
}

/// Validates a DEFVIEW against a *clone* of the model before letting it
/// anywhere near [`OptimizedDatabase::update`], whose contract is that
/// schema mutations keep the model translatable (it panics otherwise —
/// a panic no wire client may be able to trigger).
fn validate_defview(model: &DlModel, decl: &QueryClassDecl) -> Result<(), Response> {
    let reject = |message: String| Response::Error {
        code: ErrorCode::Parse,
        message,
    };
    if decl.name.starts_with(subq_oodb::AUTO_VIEW_PREFIX) {
        return Err(reject(format!(
            "the {} name prefix is reserved for advisor-materialized views",
            subq_oodb::AUTO_VIEW_PREFIX
        )));
    }
    if model.class(&decl.name).is_some() || model.query_class(&decl.name).is_some() {
        return Err(reject(format!("{} is already declared", decl.name)));
    }
    let mut candidate = model.clone();
    candidate.queries.push(decl.clone());
    let errors = validate_model(&candidate);
    if let Some(first) = errors.first() {
        return Err(reject(format!("invalid view definition: {first}")));
    }
    subq_translate::translate_model(&candidate)
        .map_err(|e| reject(format!("untranslatable view definition: {e}")))?;
    Ok(())
}

/// Applies one command; `Err` means the durable engine failed and the
/// server must stop taking writes.
fn apply_cmd(
    db: &mut OptimizedDatabase,
    durable: bool,
    cmd: &WriteCmd,
) -> Result<Response, subq_oodb::DurableError> {
    match cmd {
        WriteCmd::Txn(ops) => {
            if let Err(reply) = validate_txn(db.database().model(), ops) {
                return Ok(reply);
            }
            if durable {
                db.commit_durable(|db| {
                    for op in ops {
                        apply_op(db, op);
                    }
                })?;
            } else {
                db.commit(|db| {
                    for op in ops {
                        apply_op(db, op);
                    }
                });
            }
            Ok(Response::Committed {
                version: db.database().data_version(),
            })
        }
        WriteCmd::DefView(decl) => {
            if let Err(reply) = validate_defview(db.database().model(), decl) {
                return Ok(reply);
            }
            let decl = decl.clone();
            let name = decl.name.clone();
            db.update(|db| db.model_mut().queries.push(decl));
            db.materialize_view(&name)
                .expect("the view was validated and just declared");
            if durable {
                // The new schema is only recoverable through an image.
                db.checkpoint()?;
            } else {
                db.publish_snapshot();
            }
            Ok(Response::Ok {
                version: db.database().data_version(),
            })
        }
        WriteCmd::Materialize(name) => {
            if let Err(e) = db.materialize_view(name) {
                return Ok(Response::Error {
                    code: ErrorCode::Unknown,
                    message: e.to_string(),
                });
            }
            if durable {
                db.checkpoint()?;
            } else {
                db.publish_snapshot();
            }
            Ok(Response::Ok {
                version: db.database().data_version(),
            })
        }
        WriteCmd::Advise => {
            db.run_advisor()?;
            Ok(Response::Report {
                version: db.database().data_version(),
                lines: db.advisor_report(),
            })
        }
    }
}

/// One advisor pass between batches; returns `false` when the durable
/// engine failed underneath it and the writer must stop.
fn advisor_tick(db: &mut OptimizedDatabase, crashed: &AtomicBool) -> bool {
    match db.run_advisor() {
        Ok(pass) => {
            if !pass.materialized.is_empty() || !pass.evicted.is_empty() {
                log::info(|| {
                    format!(
                        "advisor pass: materialized={:?} evicted={:?} harvested={}",
                        pass.materialized, pass.evicted, pass.harvested
                    )
                });
            }
            true
        }
        Err(_) => {
            crashed.store(true, Ordering::Relaxed);
            false
        }
    }
}

/// The writer thread: drain, apply, one sync, then acknowledge. Between
/// batches (and on idle ticks) it runs the view advisor at most once per
/// `advisor_interval` — mining and auto-materialization ride the same
/// thread as every other catalog mutation, strictly outside any
/// transaction.
pub(crate) fn run_writer(
    mut db: OptimizedDatabase,
    rx: Receiver<WriteRequest>,
    shutdown: Arc<AtomicBool>,
    crashed: Arc<AtomicBool>,
    advisor_interval: Duration,
) {
    let durable = db.durability_stats().is_some();
    let mut last_advice = Instant::now();
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(request) => request,
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if last_advice.elapsed() >= advisor_interval {
                    last_advice = Instant::now();
                    if !advisor_tick(&mut db, &crashed) {
                        return;
                    }
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let mut batch = vec![first];
        while let Ok(request) = rx.try_recv() {
            batch.push(request);
        }
        crate::metrics::metrics()
            .queue_depth
            .sub(batch.len() as i64);
        let batch_len = batch.len();
        let mut completions: Vec<(Ticket, Response)> = Vec::with_capacity(batch.len());
        let mut failed = false;
        for request in batch {
            if failed {
                request.ticket.complete(internal("durable engine failed"));
                continue;
            }
            match apply_cmd(&mut db, durable, &request.cmd) {
                Ok(response) => completions.push((request.ticket, response)),
                Err(_) => {
                    failed = true;
                    crashed.store(true, Ordering::Relaxed);
                    request.ticket.complete(internal("durable engine failed"));
                }
            }
        }
        // Group commit: the whole drained batch rides one fsync, and no
        // ticket completes before it — an ack is a durability promise.
        if durable && !failed && db.sync_durable().is_err() {
            failed = true;
            crashed.store(true, Ordering::Relaxed);
            for (ticket, _) in completions.drain(..) {
                ticket.complete(internal("durable engine failed"));
            }
        }
        for (ticket, response) in completions {
            ticket.complete(response);
        }
        if !failed {
            log::debug(|| {
                format!(
                    "writer batch of {batch_len} committed (durable={durable}, version={})",
                    db.database().data_version()
                )
            });
        }
        if failed {
            // Leave queued requests to drown with the channel: workers
            // observe `crashed` and drop their sessions.
            return;
        }
        if last_advice.elapsed() >= advisor_interval {
            last_advice = Instant::now();
            if !advisor_tick(&mut db, &crashed) {
                return;
            }
        }
    }
}
