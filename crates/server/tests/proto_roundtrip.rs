//! Round-trip property for the protocol boundary, extending the DL
//! suite's discipline to the wire: `parse(render(x)) == x` — exactly, as
//! values — for **every frame type** the server speaks, over hundreds of
//! seeded random instances. PR 3's quantifier-parenthesization bug was
//! caught by exactly this property one layer down; this suite would
//! catch the same class of printer gap in the protocol layer (an
//! unescaped newline, a dropped count, a verb that parses back as
//! something else), and any drift between the DL text embedded in
//! `QUERY`/`DEFVIEW` payloads and the parser that reads it back.
//!
//! The frame layer gets the same treatment: encode → split at arbitrary
//! seeded points → incremental decode is an identity on payload
//! sequences.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subq_dl::{ConstraintExpr, LabeledPath, PathFilter, PathStep, QueryClassDecl, Term};
use subq_server::frame::{encode_frame, FrameDecoder, DEFAULT_MAX_PAYLOAD};
use subq_server::{ErrorCode, Request, Response, TxnOp};

const CLASSES: [&str; 5] = ["Alpha", "Beta", "Gamma", "Delta", "Epsilon"];
const ATTRS: [&str; 4] = ["attr_a", "attr_b", "rel_c", "rel_d"];
const LABELS: [&str; 3] = ["l_1", "l_2", "l_3"];
const OBJECTS: [&str; 4] = ["obj_x", "obj_y", "obj_z", "o-42.7"];
const VARS: [&str; 3] = ["v1", "v2", "v3"];

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

fn random_term(rng: &mut StdRng) -> Term {
    match rng.gen_range(0..3u8) {
        0 => Term::This,
        1 => Term::Ident(pick(rng, &LABELS).to_owned()),
        _ => Term::Ident(pick(rng, &OBJECTS[..3]).to_owned()),
    }
}

fn random_constraint(rng: &mut StdRng, depth: usize) -> ConstraintExpr {
    if depth == 0 || rng.gen_bool(0.4) {
        return match rng.gen_range(0..3u8) {
            0 => ConstraintExpr::In(random_term(rng), pick(rng, &CLASSES).to_owned()),
            1 => ConstraintExpr::HasAttr(
                random_term(rng),
                pick(rng, &ATTRS).to_owned(),
                random_term(rng),
            ),
            _ => ConstraintExpr::Eq(random_term(rng), random_term(rng)),
        };
    }
    match rng.gen_range(0..5u8) {
        0 => ConstraintExpr::Not(Box::new(random_constraint(rng, depth - 1))),
        1 => ConstraintExpr::And(
            Box::new(random_constraint(rng, depth - 1)),
            Box::new(random_constraint(rng, depth - 1)),
        ),
        2 => ConstraintExpr::Or(
            Box::new(random_constraint(rng, depth - 1)),
            Box::new(random_constraint(rng, depth - 1)),
        ),
        3 => ConstraintExpr::Forall(
            pick(rng, &VARS).to_owned(),
            pick(rng, &CLASSES).to_owned(),
            Box::new(random_constraint(rng, depth - 1)),
        ),
        _ => ConstraintExpr::Exists(
            pick(rng, &VARS).to_owned(),
            pick(rng, &CLASSES).to_owned(),
            Box::new(random_constraint(rng, depth - 1)),
        ),
    }
}

fn random_query(rng: &mut StdRng, index: usize) -> QueryClassDecl {
    let is_a: Vec<String> = {
        let mut names = Vec::new();
        for _ in 0..rng.gen_range(0..=3usize) {
            let name = pick(rng, &CLASSES).to_owned();
            if !names.contains(&name) {
                names.push(name);
            }
        }
        names
    };
    let mut labels_in_use = Vec::new();
    let derived: Vec<LabeledPath> = (0..rng.gen_range(0..=2usize))
        .map(|_| {
            let label = if rng.gen_bool(0.6) {
                let label = pick(rng, &LABELS).to_owned();
                labels_in_use.push(label.clone());
                Some(label)
            } else {
                None
            };
            let steps = (0..rng.gen_range(1..=3usize))
                .map(|_| PathStep {
                    attr: pick(rng, &ATTRS).to_owned(),
                    filter: match rng.gen_range(0..3u8) {
                        0 => PathFilter::Any,
                        1 => PathFilter::Class(pick(rng, &CLASSES).to_owned()),
                        _ => PathFilter::Singleton(pick(rng, &OBJECTS[..3]).to_owned()),
                    },
                })
                .collect();
            LabeledPath { label, steps }
        })
        .collect();
    let where_eqs: Vec<(String, String)> = if labels_in_use.len() >= 2 {
        (0..rng.gen_range(0..=2usize))
            .map(|_| {
                (
                    labels_in_use[rng.gen_range(0..labels_in_use.len())].clone(),
                    labels_in_use[rng.gen_range(0..labels_in_use.len())].clone(),
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    QueryClassDecl {
        name: format!("Q{index}"),
        is_a,
        derived,
        where_eqs,
        constraint: if rng.gen_bool(0.5) {
            let depth = rng.gen_range(1..=3);
            Some(random_constraint(rng, depth))
        } else {
            None
        },
    }
}

fn random_ident(rng: &mut StdRng) -> String {
    let pools = ["o", "obj", "K", "x_y", "n-7"];
    format!("{}{}", pick(rng, &pools), rng.gen_range(0..999u32))
}

fn random_txn_op(rng: &mut StdRng) -> TxnOp {
    match rng.gen_range(0..3u8) {
        0 => TxnOp::Add {
            object: random_ident(rng),
        },
        1 => TxnOp::Class {
            assert: rng.gen_bool(0.5),
            object: random_ident(rng),
            class: random_ident(rng),
        },
        _ => TxnOp::Attr {
            assert: rng.gen_bool(0.5),
            from: random_ident(rng),
            attr: pick(rng, &ATTRS).to_owned(),
            to: random_ident(rng),
        },
    }
}

fn random_request(rng: &mut StdRng, index: usize) -> Request {
    match rng.gen_range(0..9u8) {
        0 => Request::Ping,
        1 => Request::Bye,
        2 => Request::Query(random_query(rng, index)),
        3 => Request::DefView(random_query(rng, index)),
        4 => Request::Materialize {
            name: random_ident(rng),
        },
        5 => Request::Explain(random_query(rng, index)),
        6 => Request::Stats {
            slow: rng.gen_bool(0.5),
        },
        7 => Request::Advise,
        _ => Request::Txn(
            (0..rng.gen_range(0..=6usize))
                .map(|_| random_txn_op(rng))
                .collect(),
        ),
    }
}

/// A plausible `REPORT` payload line: metric exposition or plan text —
/// anything newline-free the registry or the explainer emits.
fn random_report_line(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4u8) {
        0 => format!(
            "subq_{}_total {}",
            random_ident(rng),
            rng.gen_range(0..1_000_000u64)
        ),
        1 => format!(
            "subq_{}_ns{{quantile=\"0.9\"}} {}",
            random_ident(rng),
            rng.gen_range(0..1_000_000u64)
        ),
        2 => format!(
            "probe {} {} subsumes",
            rng.gen_range(0..20u32),
            random_ident(rng)
        ),
        _ => format!("# TYPE {} counter", random_ident(rng)),
    }
}

fn random_response(rng: &mut StdRng) -> Response {
    let codes = [
        ErrorCode::Parse,
        ErrorCode::Unknown,
        ErrorCode::TooBig,
        ErrorCode::BadCrc,
        ErrorCode::Internal,
    ];
    match rng.gen_range(0..7u8) {
        0 => Response::Pong {
            version: rng.gen_range(0..u64::MAX),
        },
        6 => Response::Report {
            version: rng.gen_range(0..1_000_000),
            lines: (0..rng.gen_range(0..=10usize))
                .map(|_| random_report_line(rng))
                .collect(),
        },
        1 => Response::Ok {
            version: rng.gen_range(0..1_000_000),
        },
        2 => Response::Committed {
            version: rng.gen_range(0..1_000_000),
        },
        3 => Response::Answers {
            version: rng.gen_range(0..1_000_000),
            names: (0..rng.gen_range(0..=12usize))
                .map(|_| random_ident(rng))
                .collect(),
        },
        4 => Response::Busy {
            detail: if rng.gen_bool(0.3) {
                String::new()
            } else {
                "write queue of 64 is full; retry".to_owned()
            },
        },
        _ => Response::Error {
            code: codes[rng.gen_range(0..codes.len())],
            message: if rng.gen_bool(0.3) {
                String::new()
            } else {
                "line 3 col 9: expected identifier".to_owned()
            },
        },
    }
}

#[test]
fn every_request_frame_type_round_trips_exactly() {
    let mut rng = StdRng::seed_from_u64(0xE14_001);
    // Force at least one of each variant, then hundreds of random ones.
    let mut fixed = vec![
        Request::Ping,
        Request::Bye,
        Request::Materialize {
            name: "V0".to_owned(),
        },
        Request::Txn(Vec::new()),
        Request::Stats { slow: false },
        Request::Stats { slow: true },
        Request::Advise,
    ];
    fixed.extend((0..400).map(|i| random_request(&mut rng, i)));
    for (i, request) in fixed.iter().enumerate() {
        let text = request.render();
        let reparsed = Request::parse(&text)
            .unwrap_or_else(|e| panic!("request {i} failed to reparse: {e:?}\n{text}"));
        assert_eq!(
            &reparsed, request,
            "request {i} drifted through render\n{text}"
        );
    }
}

#[test]
fn every_response_frame_type_round_trips_exactly() {
    let mut rng = StdRng::seed_from_u64(0xE14_002);
    let mut fixed = vec![
        Response::Answers {
            version: 0,
            names: Vec::new(),
        },
        Response::Busy {
            detail: String::new(),
        },
        Response::Report {
            version: 0,
            lines: Vec::new(),
        },
    ];
    fixed.extend((0..400).map(|_| random_response(&mut rng)));
    for (i, response) in fixed.iter().enumerate() {
        let text = response.render();
        let reparsed = Response::parse(&text)
            .unwrap_or_else(|e| panic!("response {i} failed to reparse: {e}\n{text}"));
        assert_eq!(
            &reparsed, response,
            "response {i} drifted through render\n{text}"
        );
    }
}

#[test]
fn server_parse_pretty_reparse_is_identity_on_dl_payloads() {
    // The protocol embeds DL source verbatim; drill the embedding the
    // way the DL suite drills the printer: query → request text →
    // request → query, across the grammar.
    let mut rng = StdRng::seed_from_u64(0xE14_003);
    for i in 0..300 {
        let query = random_query(&mut rng, i);
        for wrap in [
            Request::Query(query.clone()),
            Request::DefView(query.clone()),
        ] {
            let text = wrap.render();
            match (wrap, Request::parse(&text).expect("reparses")) {
                (Request::Query(a), Request::Query(b)) => assert_eq!(a, b, "QUERY {i}"),
                (Request::DefView(a), Request::DefView(b)) => assert_eq!(a, b, "DEFVIEW {i}"),
                (sent, got) => panic!("verb drifted: sent {sent:?}, got {got:?}"),
            }
        }
    }
}

#[test]
fn frame_encoding_survives_arbitrary_packetization() {
    let mut rng = StdRng::seed_from_u64(0xE14_004);
    for _ in 0..50 {
        let payloads: Vec<Vec<u8>> = (0..rng.gen_range(1..=8usize))
            .map(|_| {
                (0..rng.gen_range(0..=600usize))
                    .map(|_| rng.gen_range(0..=255u8))
                    .collect()
            })
            .collect();
        let mut wire = Vec::new();
        for payload in &payloads {
            encode_frame(payload, &mut wire);
        }
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
        let mut decoded = Vec::new();
        let mut at = 0;
        while at < wire.len() {
            let take = rng.gen_range(1..=64usize).min(wire.len() - at);
            decoder.extend(&wire[at..at + take]);
            at += take;
            while let Some(frame) = decoder.next_frame().expect("well-formed stream") {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded, payloads);
        assert_eq!(decoder.buffered(), 0);
    }
}

#[test]
fn malformed_request_text_yields_typed_parse_failures() {
    for text in [
        "",
        "NOPE",
        "PING extra",
        "MATERIALIZE",
        "MATERIALIZE two words",
        "TXN",
        "TXN x",
        "TXN 2\nadd a",
        "TXN 1\nfrob a",
        "TXN 1\nclass ? a K",
        "TXN 1\nadd a\nleftover",
        "TXN 999999\n",
        "QUERY\nnot a query",
        "QUERY\nClass C with\nend C",
        "DEFVIEW\n",
        "EXPLAIN\nnot dl",
        "STATS LOUD",
        "STATS SLOW extra",
        "ADVISE extra",
    ] {
        let failure = Request::parse(text);
        assert!(
            matches!(failure, Err((ErrorCode::Parse, _))),
            "{text:?} should fail with PARSE, got {failure:?}"
        );
    }
}
