//! **subq** — subsumption between queries to object-oriented databases.
//!
//! This is the facade crate of the reproduction of Buchheit, Jeusfeld,
//! Nutt and Staudt, *Subsumption between Queries to Object-Oriented
//! Databases* (EDBT'94). It re-exports the component crates and offers a
//! small high-level API ([`Engine`]) that covers the common workflow:
//! parse a DL schema with query classes, translate its structural part to
//! the concept languages SL/QL, and decide query/view subsumption in
//! polynomial time — optionally driving the materialized-view query
//! optimizer of [`oodb`].
//!
//! | module | contents |
//! |---|---|
//! | [`concepts`] | the abstract languages SL and QL, their semantics |
//! | [`calculus`] | the polynomial subsumption calculus (Section 4) |
//! | [`dl`] | the concrete frame language DL: parser, validation, FOL translation |
//! | [`translate`] | structural abstraction DL → SL/QL (Section 3.2) |
//! | [`conjunctive`] | conjunctive queries and Chandra–Merlin containment |
//! | [`extensions`] | the NP-hard language extensions of Section 4.4 |
//! | [`oodb`] | object store, query-class evaluation, materialized views, optimizer |
//! | [`server`] | the `subqd` TCP server, wire protocol, client library, load generator |
//! | [`telemetry`] | process-wide metrics registry, histograms, span timers, slow-query log |
//! | [`workload`] | synthetic workload generators for the experiments |
//!
//! # Quickstart
//!
//! ```
//! use subq::Engine;
//!
//! let mut engine = Engine::from_source(subq::dl::samples::MEDICAL_SOURCE).unwrap();
//! assert!(engine.subsumes("QueryPatient", "ViewPatient").unwrap());
//! assert!(!engine.subsumes("ViewPatient", "QueryPatient").unwrap());
//! ```

pub use fxhash;
pub use subq_calculus as calculus;
pub use subq_concepts as concepts;
pub use subq_conjunctive as conjunctive;
pub use subq_dl as dl;
pub use subq_extensions as extensions;
pub use subq_oodb as oodb;
pub use subq_server as server;
pub use subq_telemetry as telemetry;
pub use subq_translate as translate;
pub use subq_workload as workload;

pub use subq_calculus::{SubsumptionChecker, SubsumptionOutcome, SubsumptionVerdict};
pub use subq_concepts::{Schema, TermArena, Vocabulary};
pub use subq_dl::{parse_model, DlModel};
pub use subq_oodb::OptimizedDatabase;
pub use subq_translate::{translate_model, TranslatedModel};

use std::collections::HashMap;
use std::fmt;
use subq_concepts::term::ConceptId;
use subq_dl::QueryClassDecl;

/// Errors of the high-level engine.
#[derive(Debug)]
pub enum EngineError {
    /// The DL source text did not parse.
    Parse(subq_dl::ParseError),
    /// The model is not well formed.
    Validation(Vec<subq_dl::ValidationError>),
    /// The structural translation failed.
    Translate(subq_translate::TranslateError),
    /// A query class name is unknown.
    UnknownQuery(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Validation(errors) => {
                write!(f, "model is not well formed: ")?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            EngineError::Translate(e) => write!(f, "{e}"),
            EngineError::UnknownQuery(name) => write!(f, "unknown query class `{name}`"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A parsed and translated DL model with a subsumption front end.
///
/// The engine is what the paper calls the "subsumption checking component
/// … embedded into a query optimizer": query classes are translated once,
/// and pairs can then be tested in time polynomial in the sizes of the
/// concepts and the schema.
pub struct Engine {
    model: DlModel,
    translated: TranslatedModel,
}

impl Engine {
    /// Parses, validates, and translates a DL model from source text.
    pub fn from_source(source: &str) -> Result<Self, EngineError> {
        let model = subq_dl::parse_model(source).map_err(EngineError::Parse)?;
        Self::from_model(model)
    }

    /// Validates and translates an already parsed model.
    pub fn from_model(model: DlModel) -> Result<Self, EngineError> {
        let problems = subq_dl::validate_model(&model);
        if !problems.is_empty() {
            return Err(EngineError::Validation(problems));
        }
        let translated = subq_translate::translate_model(&model).map_err(EngineError::Translate)?;
        Ok(Engine { model, translated })
    }

    /// The parsed DL model.
    pub fn model(&self) -> &DlModel {
        &self.model
    }

    /// The structural translation (SL schema and QL concepts).
    pub fn translated(&self) -> &TranslatedModel {
        &self.translated
    }

    /// The QL concept of a declared query class.
    pub fn concept_of(&self, query: &str) -> Result<ConceptId, EngineError> {
        self.translated
            .query_concept(query)
            .ok_or_else(|| EngineError::UnknownQuery(query.to_owned()))
    }

    /// Decides whether the answers of `query` are contained in the answers
    /// of `view` in every database state (via Σ-subsumption of the
    /// structural translations; sound, Proposition 3.1).
    pub fn subsumes(&mut self, query: &str, view: &str) -> Result<bool, EngineError> {
        let query_concept = self.concept_of(query)?;
        let view_concept = self.concept_of(view)?;
        let checker = SubsumptionChecker::new(&self.translated.schema);
        Ok(checker.subsumes(&mut self.translated.arena, query_concept, view_concept))
    }

    /// Like [`Engine::subsumes`] but returns the full outcome including the
    /// derivation trace (Figure 11 style).
    pub fn check_with_trace(
        &mut self,
        query: &str,
        view: &str,
    ) -> Result<SubsumptionOutcome, EngineError> {
        let query_concept = self.concept_of(query)?;
        let view_concept = self.concept_of(view)?;
        let checker = SubsumptionChecker::new(&self.translated.schema);
        Ok(checker.check_with_trace(&mut self.translated.arena, query_concept, view_concept))
    }

    /// Tests one query against every declared *view* (structural query
    /// class) and returns the names of the subsuming ones.
    pub fn subsuming_views(&mut self, query: &str) -> Result<Vec<String>, EngineError> {
        let query_concept = self.concept_of(query)?;
        let checker = SubsumptionChecker::new(&self.translated.schema);
        let views: Vec<(String, ConceptId)> = self
            .model
            .queries
            .iter()
            .filter(|q| q.is_view() && q.name != query)
            .filter_map(|q| {
                self.translated
                    .query_concept(&q.name)
                    .map(|c| (q.name.clone(), c))
            })
            .collect();
        let mut out = Vec::new();
        for (name, concept) in views {
            if checker.subsumes(&mut self.translated.arena, query_concept, concept) {
                out.push(name);
            }
        }
        Ok(out)
    }

    /// The declared query classes, keyed by name.
    pub fn query_classes(&self) -> HashMap<&str, &QueryClassDecl> {
        self.model
            .queries
            .iter()
            .map(|q| (q.name.as_str(), q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_reproduces_the_paper_example() {
        let mut engine = Engine::from_source(dl::samples::MEDICAL_SOURCE).expect("loads");
        assert!(engine
            .subsumes("QueryPatient", "ViewPatient")
            .expect("checks"));
        assert!(!engine
            .subsumes("ViewPatient", "QueryPatient")
            .expect("checks"));
        assert_eq!(
            engine.subsuming_views("QueryPatient").expect("checks"),
            vec!["ViewPatient".to_owned()]
        );
        let outcome = engine
            .check_with_trace("QueryPatient", "ViewPatient")
            .expect("checks");
        assert!(outcome.subsumed());
        assert!(outcome.trace.is_some());
    }

    #[test]
    fn unknown_queries_and_bad_models_are_reported() {
        let mut engine = Engine::from_source(dl::samples::MEDICAL_SOURCE).expect("loads");
        assert!(matches!(
            engine.subsumes("Nope", "ViewPatient"),
            Err(EngineError::UnknownQuery(_))
        ));
        assert!(matches!(
            Engine::from_source("Class A isA Missing with end A"),
            Err(EngineError::Validation(_))
        ));
        assert!(matches!(
            Engine::from_source("not a model"),
            Err(EngineError::Parse(_))
        ));
    }

    #[test]
    fn query_classes_are_exposed() {
        let engine = Engine::from_source(dl::samples::MEDICAL_SOURCE).expect("loads");
        let classes = engine.query_classes();
        assert!(classes.contains_key("QueryPatient"));
        assert!(classes.contains_key("ViewPatient"));
        assert!(engine.model().class("Patient").is_some());
        assert!(engine.translated().query_concept("ViewPatient").is_some());
        assert!(engine.concept_of("QueryPatient").is_ok());
    }
}
