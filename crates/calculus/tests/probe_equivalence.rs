//! Equivalence suite for the two-phase fact/goal split: for arbitrary
//! `(Σ, C, [D1..Dk])`, forking one saturated fact closure of `C` and
//! probing each view `Di` must be observationally identical — verdict,
//! clash, final fact and goal sets, outcome statistics — to a fresh
//! single-shot completion of `(C, Di)` and to the full-scan reference
//! engine, in any probe order, with forks independent of one another.

use proptest::prelude::*;
use subq_calculus::reference::ReferenceCompletion;
use subq_calculus::{
    Completion, Constraint, SaturatedFacts, SubsumptionChecker, SubsumptionVerdict,
};
use subq_concepts::normalize::normalize_concept;
use subq_concepts::prelude::*;
use subq_workload::{RandomConceptParams, RandomEnv};

const N_CLASSES: usize = 4;
const N_ATTRS: usize = 3;
const N_CONSTS: usize = 2;

/// Concept description, including constants so the substitution rules D3
/// and S4 and both clash kinds are exercised (mirrors
/// `delta_equivalence.rs`).
#[derive(Clone, Debug)]
enum Desc {
    Prim(usize),
    Top,
    Singleton(usize),
    And(Box<Desc>, Box<Desc>),
    Exists(Vec<(usize, bool, Desc)>),
    Agree(Vec<(usize, bool, Desc)>, Vec<(usize, bool, Desc)>),
}

fn desc() -> impl Strategy<Value = Desc> {
    let leaf = prop_oneof![
        (0..N_CLASSES).prop_map(Desc::Prim),
        Just(Desc::Top),
        (0..N_CONSTS).prop_map(Desc::Singleton),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        let step = (0..N_ATTRS, any::<bool>(), inner.clone());
        let path = prop::collection::vec(step, 1..3);
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Desc::And(Box::new(a), Box::new(b))),
            path.clone().prop_map(Desc::Exists),
            (path.clone(), path).prop_map(|(p, q)| Desc::Agree(p, q)),
        ]
    })
}

#[derive(Clone, Debug)]
struct SchemaDesc {
    isa: Vec<(usize, usize)>,
    all: Vec<(usize, usize, usize)>,
    necessary: Vec<(usize, usize)>,
    functional: Vec<(usize, usize)>,
    typings: Vec<(usize, usize, usize)>,
}

fn schema_desc() -> impl Strategy<Value = SchemaDesc> {
    (
        prop::collection::vec((0..N_CLASSES, 0..N_CLASSES), 0..4),
        prop::collection::vec((0..N_CLASSES, 0..N_ATTRS, 0..N_CLASSES), 0..4),
        prop::collection::vec((0..N_CLASSES, 0..N_ATTRS), 0..3),
        prop::collection::vec((0..N_CLASSES, 0..N_ATTRS), 0..2),
        prop::collection::vec((0..N_ATTRS, 0..N_CLASSES, 0..N_CLASSES), 0..2),
    )
        .prop_map(|(isa, all, necessary, functional, typings)| SchemaDesc {
            isa,
            all,
            necessary,
            functional,
            typings,
        })
}

struct World {
    arena: TermArena,
    classes: Vec<ClassId>,
    attrs: Vec<AttrId>,
    consts: Vec<ConstId>,
}

fn world() -> World {
    let mut voc = Vocabulary::new();
    let classes = (0..N_CLASSES)
        .map(|i| voc.class(&format!("K{i}")))
        .collect();
    let attrs = (0..N_ATTRS)
        .map(|i| voc.attribute(&format!("r{i}")))
        .collect();
    let consts = (0..N_CONSTS)
        .map(|i| voc.constant(&format!("c{i}")))
        .collect();
    World {
        arena: TermArena::new(),
        classes,
        attrs,
        consts,
    }
}

fn intern(world: &mut World, d: &Desc) -> ConceptId {
    match d {
        Desc::Prim(i) => world.arena.prim(world.classes[*i]),
        Desc::Top => world.arena.top(),
        Desc::Singleton(i) => world.arena.singleton(world.consts[*i]),
        Desc::And(a, b) => {
            let l = intern(world, a);
            let r = intern(world, b);
            world.arena.and(l, r)
        }
        Desc::Exists(steps) => {
            let p = intern_path(world, steps);
            world.arena.exists(p)
        }
        Desc::Agree(p, q) => {
            let pp = intern_path(world, p);
            let qq = intern_path(world, q);
            world.arena.agree(pp, qq)
        }
    }
}

fn intern_path(world: &mut World, steps: &[(usize, bool, Desc)]) -> PathId {
    let interned: Vec<(Attr, ConceptId)> = steps
        .iter()
        .map(|(a, inv, d)| {
            let c = intern(world, d);
            let attr = if *inv {
                Attr::inverse_of(world.attrs[*a])
            } else {
                Attr::primitive(world.attrs[*a])
            };
            (attr, c)
        })
        .collect();
    world.arena.path_of(&interned)
}

fn build_schema(world: &World, d: &SchemaDesc) -> Schema {
    let mut schema = Schema::new();
    for (a, b) in &d.isa {
        schema.add_isa(world.classes[*a], world.classes[*b]);
    }
    for (a, p, b) in &d.all {
        schema.add_value_restriction(world.classes[*a], world.attrs[*p], world.classes[*b]);
    }
    for (a, p) in &d.necessary {
        schema.add_necessary(world.classes[*a], world.attrs[*p]);
    }
    for (a, p) in &d.functional {
        schema.add_functional(world.classes[*a], world.attrs[*p]);
    }
    for (p, a, b) in &d.typings {
        schema.add_attr_typing(world.attrs[*p], world.classes[*a], world.classes[*b]);
    }
    schema
}

/// Everything a completion exposes, collected for comparison.
#[derive(PartialEq, Debug)]
struct Observed {
    facts: Vec<Constraint>,
    goals: Vec<Constraint>,
    derived: bool,
    clash: Option<subq_calculus::engine::Clash>,
    outcome: subq_calculus::CompletionStats,
}

fn observe_probe(
    arena: &mut TermArena,
    schema: &Schema,
    base: &SaturatedFacts,
    normalized_view: ConceptId,
) -> Observed {
    let mut completion = Completion::resume(arena, schema, base, normalized_view);
    let stats = completion.run();
    assert!(
        stats.fact_phase_reused,
        "a resumed completion must report fact-phase reuse"
    );
    assert!(
        stats.probe_examined <= stats.constraints_examined,
        "probe work is a suffix of the total"
    );
    let mut facts: Vec<Constraint> = completion.facts().iter().copied().collect();
    let mut goals: Vec<Constraint> = completion.goals().iter().copied().collect();
    facts.sort();
    goals.sort();
    Observed {
        facts,
        goals,
        derived: completion.view_fact_derived(),
        clash: completion.find_clash(),
        outcome: stats.outcome_only(),
    }
}

fn observe_fresh(
    arena: &mut TermArena,
    schema: &Schema,
    normalized_query: ConceptId,
    normalized_view: ConceptId,
) -> Observed {
    let mut completion = Completion::new(arena, schema, normalized_query, normalized_view, false);
    let stats = completion.run();
    assert!(!stats.fact_phase_reused);
    assert_eq!(stats.probe_examined, 0);
    let mut facts: Vec<Constraint> = completion.facts().iter().copied().collect();
    let mut goals: Vec<Constraint> = completion.goals().iter().copied().collect();
    facts.sort();
    goals.sort();
    Observed {
        facts,
        goals,
        derived: completion.view_fact_derived(),
        clash: completion.find_clash(),
        outcome: stats.outcome_only(),
    }
}

fn observe_reference(
    arena: &mut TermArena,
    schema: &Schema,
    normalized_query: ConceptId,
    normalized_view: ConceptId,
) -> Observed {
    let mut completion =
        ReferenceCompletion::new(arena, schema, normalized_query, normalized_view, false);
    let stats = completion.run();
    let mut facts: Vec<Constraint> = completion.facts().iter().copied().collect();
    let mut goals: Vec<Constraint> = completion.goals().iter().copied().collect();
    facts.sort();
    goals.sort();
    Observed {
        facts,
        goals,
        derived: completion.view_fact_derived(),
        clash: completion.find_clash(),
        outcome: stats.outcome_only(),
    }
}

/// Saturates `query` once and checks that probing every view — forward,
/// reversed, and repeated — agrees with fresh single-shot completions and
/// with the full-scan reference engine.
fn assert_probes_agree(
    arena: &mut TermArena,
    schema: &Schema,
    query: ConceptId,
    views: &[ConceptId],
) -> Result<(), String> {
    let normalized_query = normalize_concept(arena, query);
    let normalized_views: Vec<ConceptId> = views
        .iter()
        .map(|&view| normalize_concept(arena, view))
        .collect();
    let base = SaturatedFacts::saturate(arena, schema, normalized_query);

    let forward: Vec<Observed> = normalized_views
        .iter()
        .map(|&view| observe_probe(arena, schema, &base, view))
        .collect();
    let backward: Vec<Observed> = normalized_views
        .iter()
        .rev()
        .map(|&view| observe_probe(arena, schema, &base, view))
        .collect();

    for (i, (&view, probe)) in normalized_views.iter().zip(&forward).enumerate() {
        // Forks are independent: probing in reverse order changes nothing.
        let again = &backward[normalized_views.len() - 1 - i];
        if probe != again {
            return Err(format!("probe {i} depends on probe order"));
        }
        let fresh = observe_fresh(arena, schema, normalized_query, view);
        if *probe != fresh {
            return Err(format!(
                "probe {i} diverges from the fresh single-shot completion: probe {probe:?} vs fresh {fresh:?}"
            ));
        }
        let reference = observe_reference(arena, schema, normalized_query, view);
        if *probe != reference {
            return Err(format!(
                "probe {i} diverges from the reference engine: probe {probe:?} vs reference {reference:?}"
            ));
        }
    }
    Ok(())
}

/// The checker-level API must agree with the cached/uncached checker
/// paths verdict-for-verdict.
fn assert_checker_probe_agrees(
    arena: &mut TermArena,
    schema: &Schema,
    query: ConceptId,
    views: &[ConceptId],
) -> Result<(), String> {
    let checker = SubsumptionChecker::new(schema);
    let saturated = checker.saturate(arena, query);
    let mut cache = subq_calculus::SubsumptionCache::new();
    for (i, &view) in views.iter().enumerate() {
        let probe = saturated.probe(arena, view);
        let direct = checker.check(arena, query, view);
        let cached = checker.check_cached(arena, query, view, &mut cache);
        if probe.verdict != direct.verdict || probe.verdict != cached.verdict {
            return Err(format!(
                "verdicts diverge on view {i}: probe {:?}, direct {:?}, cached {:?}",
                probe.verdict, direct.verdict, cached.verdict
            ));
        }
        if probe.stats.outcome_only() != direct.stats.outcome_only() {
            return Err(format!(
                "outcome stats diverge on view {i}: probe {:?} vs direct {:?}",
                probe.stats.outcome_only(),
                direct.stats.outcome_only()
            ));
        }
        if probe.normalized_query != direct.normalized_query
            || probe.normalized_view != direct.normalized_view
        {
            return Err(format!("normalized concept ids diverge on view {i}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline property: saturate once, probe many — equivalent to
    /// fresh per-pair completions on arbitrary inputs, in any order.
    #[test]
    fn probe_equals_fresh_and_reference_on_random_inputs(
        c in desc(),
        ds in prop::collection::vec(desc(), 1..4),
        s in schema_desc(),
    ) {
        let mut w = world();
        let query = intern(&mut w, &c);
        let views: Vec<ConceptId> = ds.iter().map(|d| intern(&mut w, d)).collect();
        let schema = build_schema(&w, &s);
        if let Err(msg) = assert_probes_agree(&mut w.arena, &schema, query, &views) {
            prop_assert!(false, "{} on query {:?} / views {:?} / schema {:?}", msg, c, ds, s);
        }
        if let Err(msg) = assert_checker_probe_agrees(&mut w.arena, &schema, query, &views) {
            prop_assert!(false, "{} on query {:?} / views {:?} / schema {:?}", msg, c, ds, s);
        }
    }
}

/// The same equivalence over the seeded `workload` generators the benches
/// use: per seed, one query probed against three drawn views.
#[test]
fn probe_equals_fresh_on_workload_instances() {
    for seed in 0..100u64 {
        let mut env = RandomEnv::new(seed, RandomConceptParams::default());
        let query = env.concept();
        let views = [env.concept(), env.concept(), env.concept()];
        let schema = Schema::new();
        assert_probes_agree(&mut env.arena, &schema, query, &views)
            .unwrap_or_else(|msg| panic!("workload seed {seed}: {msg}"));
    }
}

/// Subsumed-by-construction pairs flow through the probe path with the
/// expected verdict.
#[test]
fn probe_confirms_constructed_subsumptions() {
    for seed in 0..100u64 {
        let mut env = RandomEnv::new(seed, RandomConceptParams::default());
        let (query, view) = env.subsumed_pair();
        let schema = Schema::new();
        let checker = SubsumptionChecker::new(&schema);
        let saturated = checker.saturate(&mut env.arena, query);
        let outcome = saturated.probe(&mut env.arena, view);
        assert!(
            outcome.verdict != SubsumptionVerdict::NotSubsumed,
            "constructed subsumption must hold (seed {seed})"
        );
        assert!(outcome.stats.fact_phase_reused);
    }
}
