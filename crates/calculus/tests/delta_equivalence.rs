//! Equivalence suite: the delta-driven engine and the retained full-scan
//! reference engine must be observationally identical — same final fact
//! and goal sets, same clash, same statistics (up to the engine-dependent
//! work counter), same rule trace, same fresh-variable numbering — on
//! arbitrary inputs.

use proptest::prelude::*;
use subq_calculus::reference::ReferenceCompletion;
use subq_calculus::{Completion, Constraint};
use subq_concepts::normalize::normalize_concept;
use subq_concepts::prelude::*;
use subq_workload::scaling::{
    conjunction_width_instance, path_depth_instance, schema_size_instance, view_growth_instance,
};
use subq_workload::{random_pair, subsumed_pair, RandomConceptParams};

const N_CLASSES: usize = 4;
const N_ATTRS: usize = 3;
const N_CONSTS: usize = 2;

/// Concept description, including constants so the substitution rules D3
/// and S4 and both clash kinds are exercised.
#[derive(Clone, Debug)]
enum Desc {
    Prim(usize),
    Top,
    Singleton(usize),
    And(Box<Desc>, Box<Desc>),
    Exists(Vec<(usize, bool, Desc)>),
    Agree(Vec<(usize, bool, Desc)>, Vec<(usize, bool, Desc)>),
}

fn desc() -> impl Strategy<Value = Desc> {
    let leaf = prop_oneof![
        (0..N_CLASSES).prop_map(Desc::Prim),
        Just(Desc::Top),
        (0..N_CONSTS).prop_map(Desc::Singleton),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        let step = (0..N_ATTRS, any::<bool>(), inner.clone());
        let path = prop::collection::vec(step, 1..3);
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Desc::And(Box::new(a), Box::new(b))),
            path.clone().prop_map(Desc::Exists),
            (path.clone(), path).prop_map(|(p, q)| Desc::Agree(p, q)),
        ]
    })
}

#[derive(Clone, Debug)]
struct SchemaDesc {
    isa: Vec<(usize, usize)>,
    all: Vec<(usize, usize, usize)>,
    necessary: Vec<(usize, usize)>,
    functional: Vec<(usize, usize)>,
    typings: Vec<(usize, usize, usize)>,
}

fn schema_desc() -> impl Strategy<Value = SchemaDesc> {
    (
        prop::collection::vec((0..N_CLASSES, 0..N_CLASSES), 0..4),
        prop::collection::vec((0..N_CLASSES, 0..N_ATTRS, 0..N_CLASSES), 0..4),
        prop::collection::vec((0..N_CLASSES, 0..N_ATTRS), 0..3),
        prop::collection::vec((0..N_CLASSES, 0..N_ATTRS), 0..2),
        prop::collection::vec((0..N_ATTRS, 0..N_CLASSES, 0..N_CLASSES), 0..2),
    )
        .prop_map(|(isa, all, necessary, functional, typings)| SchemaDesc {
            isa,
            all,
            necessary,
            functional,
            typings,
        })
}

struct World {
    arena: TermArena,
    classes: Vec<ClassId>,
    attrs: Vec<AttrId>,
    consts: Vec<ConstId>,
}

fn world() -> World {
    let mut voc = Vocabulary::new();
    let classes = (0..N_CLASSES)
        .map(|i| voc.class(&format!("K{i}")))
        .collect();
    let attrs = (0..N_ATTRS)
        .map(|i| voc.attribute(&format!("r{i}")))
        .collect();
    let consts = (0..N_CONSTS)
        .map(|i| voc.constant(&format!("c{i}")))
        .collect();
    World {
        arena: TermArena::new(),
        classes,
        attrs,
        consts,
    }
}

fn intern(world: &mut World, d: &Desc) -> ConceptId {
    match d {
        Desc::Prim(i) => world.arena.prim(world.classes[*i]),
        Desc::Top => world.arena.top(),
        Desc::Singleton(i) => world.arena.singleton(world.consts[*i]),
        Desc::And(a, b) => {
            let l = intern(world, a);
            let r = intern(world, b);
            world.arena.and(l, r)
        }
        Desc::Exists(steps) => {
            let p = intern_path(world, steps);
            world.arena.exists(p)
        }
        Desc::Agree(p, q) => {
            let pp = intern_path(world, p);
            let qq = intern_path(world, q);
            world.arena.agree(pp, qq)
        }
    }
}

fn intern_path(world: &mut World, steps: &[(usize, bool, Desc)]) -> PathId {
    let interned: Vec<(Attr, ConceptId)> = steps
        .iter()
        .map(|(a, inv, d)| {
            let c = intern(world, d);
            let attr = if *inv {
                Attr::inverse_of(world.attrs[*a])
            } else {
                Attr::primitive(world.attrs[*a])
            };
            (attr, c)
        })
        .collect();
    world.arena.path_of(&interned)
}

fn build_schema(world: &World, d: &SchemaDesc) -> Schema {
    let mut schema = Schema::new();
    for (a, b) in &d.isa {
        schema.add_isa(world.classes[*a], world.classes[*b]);
    }
    for (a, p, b) in &d.all {
        schema.add_value_restriction(world.classes[*a], world.attrs[*p], world.classes[*b]);
    }
    for (a, p) in &d.necessary {
        schema.add_necessary(world.classes[*a], world.attrs[*p]);
    }
    for (a, p) in &d.functional {
        schema.add_functional(world.classes[*a], world.attrs[*p]);
    }
    for (p, a, b) in &d.typings {
        schema.add_attr_typing(world.attrs[*p], world.classes[*a], world.classes[*b]);
    }
    schema
}

/// Runs both engines on the same (already interned) input and asserts
/// every observable agrees. Returns an error string on the first
/// disagreement so the caller can report the failing instance.
fn assert_engines_agree(
    arena: &mut TermArena,
    schema: &Schema,
    query: ConceptId,
    view: ConceptId,
) -> Result<(), String> {
    let query = normalize_concept(arena, query);
    let view = normalize_concept(arena, view);

    // The reference engine interns nothing new beyond what rule firing
    // interns, and both engines intern the same terms in the same order,
    // so a shared arena is safe; run the reference first.
    let (ref_stats, ref_facts, ref_goals, ref_clash, ref_derived, ref_seq) = {
        let mut completion = ReferenceCompletion::new(arena, schema, query, view, true);
        let stats = completion.run();
        let mut facts: Vec<Constraint> = completion.facts().iter().copied().collect();
        let mut goals: Vec<Constraint> = completion.goals().iter().copied().collect();
        facts.sort();
        goals.sort();
        (
            stats,
            facts,
            goals,
            completion.find_clash(),
            completion.view_fact_derived(),
            completion.trace().expect("traced").rule_sequence(),
        )
    };

    let mut completion = Completion::new(arena, schema, query, view, true);
    let stats = completion.run();
    let mut facts: Vec<Constraint> = completion.facts().iter().copied().collect();
    let mut goals: Vec<Constraint> = completion.goals().iter().copied().collect();
    facts.sort();
    goals.sort();

    if stats.outcome_only() != ref_stats.outcome_only() {
        return Err(format!(
            "stats diverge: delta {:?} vs reference {:?}",
            stats.outcome_only(),
            ref_stats.outcome_only()
        ));
    }
    if facts != ref_facts {
        return Err(format!(
            "fact sets diverge: delta {} facts vs reference {}",
            facts.len(),
            ref_facts.len()
        ));
    }
    if goals != ref_goals {
        return Err(format!(
            "goal sets diverge: delta {} goals vs reference {}",
            goals.len(),
            ref_goals.len()
        ));
    }
    if completion.find_clash() != ref_clash {
        return Err(format!(
            "clashes diverge: delta {:?} vs reference {:?}",
            completion.find_clash(),
            ref_clash
        ));
    }
    if completion.view_fact_derived() != ref_derived {
        return Err("view-fact verdicts diverge".to_owned());
    }
    let seq = completion.trace().expect("traced").rule_sequence();
    if seq != ref_seq {
        return Err(format!(
            "rule traces diverge at position {}: delta {:?}… vs reference {:?}…",
            seq.iter()
                .zip(ref_seq.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(seq.len().min(ref_seq.len())),
            seq.iter().take(12).collect::<Vec<_>>(),
            ref_seq.iter().take(12).collect::<Vec<_>>(),
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline property: on arbitrary concept pairs and schemas, the
    /// delta engine is indistinguishable from the full-scan reference.
    #[test]
    fn delta_equals_reference_on_random_pairs(c in desc(), d in desc(), s in schema_desc()) {
        let mut w = world();
        let query = intern(&mut w, &c);
        let view = intern(&mut w, &d);
        let schema = build_schema(&w, &s);
        if let Err(msg) = assert_engines_agree(&mut w.arena, &schema, query, view) {
            prop_assert!(false, "{} on query {:?} / view {:?} / schema {:?}", msg, c, d, s);
        }
    }
}

/// The same equivalence on the seeded `workload` generators the benches
/// use — 200 random pairs, 100 subsumed-by-construction pairs.
#[test]
fn delta_equals_reference_on_workload_instances() {
    for seed in 0..200u64 {
        let (mut env, query, view) = random_pair(seed, RandomConceptParams::default());
        let schema = Schema::new();
        assert_engines_agree(&mut env.arena, &schema, query, view)
            .unwrap_or_else(|msg| panic!("random_pair seed {seed}: {msg}"));
    }
    for seed in 0..100u64 {
        let (mut env, query, view) = subsumed_pair(seed, RandomConceptParams::default());
        let schema = Schema::new();
        assert_engines_agree(&mut env.arena, &schema, query, view)
            .unwrap_or_else(|msg| panic!("subsumed_pair seed {seed}: {msg}"));
    }
}

/// The scaling families (which drive E5) agree as well, including the
/// schema-heavy and S5-heavy ones.
#[test]
fn delta_equals_reference_on_scaling_families() {
    type Family = fn(usize) -> subq_workload::ScalingInstance;
    let families: [(&str, Family); 4] = [
        ("path_depth", path_depth_instance),
        ("conjunction_width", conjunction_width_instance),
        ("schema_size", schema_size_instance),
        ("view_growth", view_growth_instance),
    ];
    for (name, family) in families {
        for n in [1usize, 2, 3, 5, 8, 13, 21] {
            let mut instance = family(n);
            assert_engines_agree(
                &mut instance.arena,
                &instance.schema,
                instance.query,
                instance.view,
            )
            .unwrap_or_else(|msg| panic!("{name} n={n}: {msg}"));
        }
    }
}
