//! Property tests for the subsumption calculus: soundness against the
//! model-theoretic semantics, basic algebraic laws, and the polynomial
//! size bound of Proposition 4.8.

use proptest::prelude::*;
use subq_calculus::SubsumptionChecker;
use subq_concepts::prelude::*;

const N_CLASSES: usize = 4;
const N_ATTRS: usize = 3;

/// Concept description without constants (constants only matter for clash
/// detection, which has dedicated unit tests).
#[derive(Clone, Debug)]
enum Desc {
    Prim(usize),
    Top,
    And(Box<Desc>, Box<Desc>),
    Exists(Vec<(usize, bool, Desc)>),
    Agree(Vec<(usize, bool, Desc)>, Vec<(usize, bool, Desc)>),
}

fn desc() -> impl Strategy<Value = Desc> {
    let leaf = prop_oneof![(0..N_CLASSES).prop_map(Desc::Prim), Just(Desc::Top),];
    leaf.prop_recursive(3, 20, 4, |inner| {
        let step = (0..N_ATTRS, any::<bool>(), inner.clone());
        let path = prop::collection::vec(step, 1..3);
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Desc::And(Box::new(a), Box::new(b))),
            path.clone().prop_map(Desc::Exists),
            (path.clone(), path).prop_map(|(p, q)| Desc::Agree(p, q)),
        ]
    })
}

/// A random schema over the same small vocabulary: a handful of inclusion,
/// value-restriction, necessity and functionality axioms plus attribute
/// typings.
#[derive(Clone, Debug)]
struct SchemaDesc {
    isa: Vec<(usize, usize)>,
    all: Vec<(usize, usize, usize)>,
    necessary: Vec<(usize, usize)>,
    functional: Vec<(usize, usize)>,
    typings: Vec<(usize, usize, usize)>,
}

fn schema_desc() -> impl Strategy<Value = SchemaDesc> {
    (
        prop::collection::vec((0..N_CLASSES, 0..N_CLASSES), 0..4),
        prop::collection::vec((0..N_CLASSES, 0..N_ATTRS, 0..N_CLASSES), 0..4),
        prop::collection::vec((0..N_CLASSES, 0..N_ATTRS), 0..3),
        prop::collection::vec((0..N_CLASSES, 0..N_ATTRS), 0..2),
        prop::collection::vec((0..N_ATTRS, 0..N_CLASSES, 0..N_CLASSES), 0..2),
    )
        .prop_map(|(isa, all, necessary, functional, typings)| SchemaDesc {
            isa,
            all,
            necessary,
            functional,
            typings,
        })
}

struct World {
    arena: TermArena,
    classes: Vec<ClassId>,
    attrs: Vec<AttrId>,
}

fn world() -> World {
    let mut voc = Vocabulary::new();
    let classes = (0..N_CLASSES)
        .map(|i| voc.class(&format!("K{i}")))
        .collect();
    let attrs = (0..N_ATTRS)
        .map(|i| voc.attribute(&format!("r{i}")))
        .collect();
    World {
        arena: TermArena::new(),
        classes,
        attrs,
    }
}

fn intern(world: &mut World, d: &Desc) -> ConceptId {
    match d {
        Desc::Prim(i) => world.arena.prim(world.classes[*i]),
        Desc::Top => world.arena.top(),
        Desc::And(a, b) => {
            let l = intern(world, a);
            let r = intern(world, b);
            world.arena.and(l, r)
        }
        Desc::Exists(steps) => {
            let p = intern_path(world, steps);
            world.arena.exists(p)
        }
        Desc::Agree(p, q) => {
            let pp = intern_path(world, p);
            let qq = intern_path(world, q);
            world.arena.agree(pp, qq)
        }
    }
}

fn intern_path(world: &mut World, steps: &[(usize, bool, Desc)]) -> PathId {
    let interned: Vec<(Attr, ConceptId)> = steps
        .iter()
        .map(|(a, inv, d)| {
            let c = intern(world, d);
            let attr = if *inv {
                Attr::inverse_of(world.attrs[*a])
            } else {
                Attr::primitive(world.attrs[*a])
            };
            (attr, c)
        })
        .collect();
    world.arena.path_of(&interned)
}

fn build_schema(world: &World, d: &SchemaDesc) -> Schema {
    let mut schema = Schema::new();
    for (a, b) in &d.isa {
        schema.add_isa(world.classes[*a], world.classes[*b]);
    }
    for (a, p, b) in &d.all {
        schema.add_value_restriction(world.classes[*a], world.attrs[*p], world.classes[*b]);
    }
    for (a, p) in &d.necessary {
        schema.add_necessary(world.classes[*a], world.attrs[*p]);
    }
    for (a, p) in &d.functional {
        schema.add_functional(world.classes[*a], world.attrs[*p]);
    }
    for (p, a, b) in &d.typings {
        schema.add_attr_typing(world.attrs[*p], world.classes[*a], world.classes[*b]);
    }
    schema
}

#[derive(Clone, Debug)]
struct InterpDesc {
    domain: u32,
    members: Vec<(usize, u32)>,
    edges: Vec<(usize, u32, u32)>,
}

fn interp_desc() -> impl Strategy<Value = InterpDesc> {
    (2u32..5).prop_flat_map(|domain| {
        (
            Just(domain),
            prop::collection::vec((0..N_CLASSES, 0..domain), 0..12),
            prop::collection::vec((0..N_ATTRS, 0..domain, 0..domain), 0..14),
        )
            .prop_map(|(domain, members, edges)| InterpDesc {
                domain,
                members,
                edges,
            })
    })
}

fn build_interp(world: &World, d: &InterpDesc) -> Interpretation {
    let mut interp = Interpretation::new(d.domain);
    for (c, e) in &d.members {
        interp.add_class_member(world.classes[*c], Element(*e));
    }
    for (a, from, to) in &d.edges {
        interp.add_attr_pair(world.attrs[*a], Element(*from), Element(*to));
    }
    interp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness for the empty schema: whenever the calculus claims
    /// `C ⊑ D`, the extensions satisfy `C^I ⊆ D^I` in every interpretation.
    #[test]
    fn soundness_on_empty_schema(c in desc(), d in desc(), i in interp_desc()) {
        let mut w = world();
        let cq = intern(&mut w, &c);
        let dv = intern(&mut w, &d);
        let schema = Schema::new();
        let checker = SubsumptionChecker::new(&schema);
        if checker.subsumes(&mut w.arena, cq, dv) {
            let interp = build_interp(&w, &i);
            prop_assert!(
                interp.subsumed_here(&w.arena, cq, dv),
                "calculus claimed subsumption but found counterexample"
            );
        }
    }

    /// Soundness with a schema: whenever the calculus claims `C ⊑_Σ D`,
    /// every interpretation that satisfies Σ also satisfies the inclusion.
    /// Interpretations that violate Σ are skipped (they are irrelevant to
    /// Σ-subsumption).
    #[test]
    fn soundness_with_schema(
        c in desc(),
        d in desc(),
        s in schema_desc(),
        i in interp_desc(),
    ) {
        let mut w = world();
        let cq = intern(&mut w, &c);
        let dv = intern(&mut w, &d);
        let schema = build_schema(&w, &s);
        let checker = SubsumptionChecker::new(&schema);
        if checker.subsumes(&mut w.arena, cq, dv) {
            let interp = build_interp(&w, &i);
            if interp.satisfies_schema(&schema) {
                prop_assert!(
                    interp.subsumed_here(&w.arena, cq, dv),
                    "Σ-model violates claimed Σ-subsumption"
                );
            }
        }
    }

    /// Reflexivity, the ⊤ upper bound, and conjunct projection hold for
    /// every concept and schema.
    #[test]
    fn reflexivity_top_and_projection(c in desc(), d in desc(), s in schema_desc()) {
        let mut w = world();
        let cq = intern(&mut w, &c);
        let dv = intern(&mut w, &d);
        let both = w.arena.and(cq, dv);
        let top = w.arena.top();
        let schema = build_schema(&w, &s);
        let checker = SubsumptionChecker::new(&schema);
        prop_assert!(checker.subsumes(&mut w.arena, cq, cq));
        prop_assert!(checker.subsumes(&mut w.arena, cq, top));
        prop_assert!(checker.subsumes(&mut w.arena, both, cq));
        prop_assert!(checker.subsumes(&mut w.arena, both, dv));
    }

    /// Strengthening the query preserves subsumption: if `C ⊑_Σ D` then
    /// `C ⊓ E ⊑_Σ D`.
    #[test]
    fn query_strengthening_is_monotone(
        c in desc(),
        d in desc(),
        e in desc(),
        s in schema_desc(),
    ) {
        let mut w = world();
        let cq = intern(&mut w, &c);
        let dv = intern(&mut w, &d);
        let extra = intern(&mut w, &e);
        let schema = build_schema(&w, &s);
        let checker = SubsumptionChecker::new(&schema);
        if checker.subsumes(&mut w.arena, cq, dv) {
            let stronger = w.arena.and(cq, extra);
            prop_assert!(checker.subsumes(&mut w.arena, stronger, dv));
        }
    }

    /// Transitivity: `C ⊑_Σ D` and `D ⊑_Σ E` imply `C ⊑_Σ E`.
    #[test]
    fn subsumption_is_transitive(
        c in desc(),
        d in desc(),
        e in desc(),
        s in schema_desc(),
    ) {
        let mut w = world();
        let cc = intern(&mut w, &c);
        let dd = intern(&mut w, &d);
        let ee = intern(&mut w, &e);
        let schema = build_schema(&w, &s);
        let checker = SubsumptionChecker::new(&schema);
        if checker.subsumes(&mut w.arena, cc, dd) && checker.subsumes(&mut w.arena, dd, ee) {
            prop_assert!(checker.subsumes(&mut w.arena, cc, ee));
        }
    }

    /// Proposition 4.8: the number of individuals in the completion is at
    /// most the product of the concept sizes (plus the root bookkeeping).
    #[test]
    fn individual_bound_of_proposition_4_8(c in desc(), d in desc(), s in schema_desc()) {
        let mut w = world();
        let cq = intern(&mut w, &c);
        let dv = intern(&mut w, &d);
        let schema = build_schema(&w, &s);
        let checker = SubsumptionChecker::new(&schema);
        let outcome = checker.check(&mut w.arena, cq, dv);
        let m = w.arena.concept_size(outcome.normalized_query);
        let n = w.arena.concept_size(outcome.normalized_view);
        prop_assert!(
            outcome.stats.individuals <= m * n + 1,
            "individuals {} exceed bound {}·{}+1",
            outcome.stats.individuals, m, n
        );
    }
}
