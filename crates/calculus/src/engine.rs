//! The completion engine: saturation of a fact/goal pair under the rules
//! of Figures 7–10.
//!
//! A [`Completion`] starts from the pair `{x : C} : {x : D}` and applies
//! rules until none is applicable. The engine follows the paper's control
//! structure:
//!
//! * decomposition rules are applied before schema rules (the priority
//!   stated in Section 4.1);
//! * goal and composition rules are interleaved with them until the whole
//!   pair is stable;
//! * the substitution rules D3 and S4 are applied one instance at a time,
//!   since a substitution invalidates previously collected rule instances.
//!
//! All rules are deterministic, so the completion is unique up to the
//! naming of fresh variables; the engine always numbers fresh variables in
//! creation order, which makes runs reproducible and lets tests compare
//! traces against Figure 11.

use crate::constraint::{Constraint, ConstraintSet};
use crate::ind::Ind;
use crate::rules::RuleId;
use crate::trace::{DerivationTrace, TraceStep};
use subq_concepts::attribute::Attr;
use subq_concepts::schema::Schema;
use subq_concepts::term::{Concept, ConceptId, Path, PathId, Restriction, TermArena};

/// Statistics about a finished completion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompletionStats {
    /// Distinct individuals occurring in the final pair.
    pub individuals: usize,
    /// Fresh variables created by rules D4, D6, and S5.
    pub fresh_vars: usize,
    /// Total number of rule applications.
    pub rule_applications: usize,
    /// Constraints in the final fact set `F`.
    pub facts: usize,
    /// Constraints in the final goal set `G`.
    pub goals: usize,
}

/// A clash found in the fact set (Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Clash {
    /// `a : {b}` for distinct constants `a`, `b`.
    ConstantSingleton(Ind, Ind),
    /// `s P a`, `s P b`, `s : A` with `A ⊑ (≤1 P)` and distinct constants
    /// `a`, `b`.
    FunctionalFanOut(Ind, Attr, Ind, Ind),
}

/// The completion of a pair of constraint systems.
pub struct Completion<'a> {
    arena: &'a mut TermArena,
    schema: &'a Schema,
    facts: ConstraintSet,
    goals: ConstraintSet,
    next_var: u32,
    fresh_vars: usize,
    rule_applications: usize,
    trace: Option<DerivationTrace>,
    query: ConceptId,
    view: ConceptId,
}

impl<'a> Completion<'a> {
    /// Creates the initial pair `{x : query} : {x : view}`.
    ///
    /// Both concepts must already be normalized (every agreement of the
    /// form `∃p ≐ ε`); the [`crate::checker::SubsumptionChecker`] takes
    /// care of that.
    pub fn new(
        arena: &'a mut TermArena,
        schema: &'a Schema,
        query: ConceptId,
        view: ConceptId,
        record_trace: bool,
    ) -> Self {
        let mut facts = ConstraintSet::new();
        let mut goals = ConstraintSet::new();
        facts.insert(Constraint::Member(Ind::ROOT, query));
        goals.insert(Constraint::Member(Ind::ROOT, view));
        Completion {
            arena,
            schema,
            facts,
            goals,
            next_var: 1,
            fresh_vars: 0,
            rule_applications: 0,
            trace: record_trace.then(DerivationTrace::new),
            query,
            view,
        }
    }

    /// The fact set `F`.
    pub fn facts(&self) -> &ConstraintSet {
        &self.facts
    }

    /// The goal set `G`.
    pub fn goals(&self) -> &ConstraintSet {
        &self.goals
    }

    /// The recorded derivation trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&DerivationTrace> {
        self.trace.as_ref()
    }

    /// The term arena the completion works over.
    pub fn arena(&self) -> &TermArena {
        self.arena
    }

    /// The schema Σ.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// The (normalized) query concept `C`.
    pub fn query(&self) -> ConceptId {
        self.query
    }

    /// The (normalized) view concept `D`.
    pub fn view(&self) -> ConceptId {
        self.view
    }

    /// Statistics of the completion so far.
    pub fn stats(&self) -> CompletionStats {
        let mut individuals = self.facts.individuals();
        individuals.extend(self.goals.individuals());
        CompletionStats {
            individuals: individuals.len(),
            fresh_vars: self.fresh_vars,
            rule_applications: self.rule_applications,
            facts: self.facts.len(),
            goals: self.goals.len(),
        }
    }

    /// The individual `o` such that `o : D` is the (unique) top-level goal.
    ///
    /// Initially this is `x`; the substitution rules D3 and S4 may replace
    /// it by a constant or another variable.
    pub fn view_individual(&self) -> Ind {
        self.goals
            .iter()
            .find_map(|c| match *c {
                Constraint::Member(s, concept) if concept == self.view => Some(s),
                _ => None,
            })
            .unwrap_or(Ind::ROOT)
    }

    /// Runs rules until no rule is applicable, then returns the statistics.
    pub fn run(&mut self) -> CompletionStats {
        loop {
            if self.apply_group(Group::Decomposition) {
                continue;
            }
            if self.apply_group(Group::Schema) {
                continue;
            }
            if self.apply_group(Group::Goal) {
                continue;
            }
            if self.apply_group(Group::Composition) {
                continue;
            }
            break;
        }
        self.stats()
    }

    /// Whether the completed facts contain the constraint `o : D`.
    pub fn view_fact_derived(&self) -> bool {
        let o = self.view_individual();
        self.facts.has_member(o, self.view)
    }

    /// Searches the fact set for a clash (Section 4.2).
    pub fn find_clash(&self) -> Option<Clash> {
        // a : {b} with distinct constants.
        for constraint in self.facts.iter() {
            if let Constraint::Member(s, concept) = *constraint {
                if let (Some(a), Concept::Singleton(b)) = (s.as_const(), self.arena.concept(concept))
                {
                    if a != b {
                        return Some(Clash::ConstantSingleton(s, Ind::Const(b)));
                    }
                }
            }
        }
        // s P a, s P b, s : A with A ⊑ (≤1 P) and a ≠ b constants.
        for constraint in self.facts.iter() {
            let Constraint::Member(s, concept) = *constraint else {
                continue;
            };
            let Concept::Prim(class) = self.arena.concept(concept) else {
                continue;
            };
            for attr in self.schema.functional_attrs_of(class) {
                let attr = Attr::primitive(attr);
                let const_fillers: Vec<Ind> = self
                    .facts
                    .fillers_via(s, attr)
                    .filter(|t| t.is_const())
                    .collect();
                for (i, &a) in const_fillers.iter().enumerate() {
                    for &b in &const_fillers[i + 1..] {
                        if a != b {
                            return Some(Clash::FunctionalFanOut(s, attr, a, b));
                        }
                    }
                }
            }
        }
        None
    }

    // ----- bookkeeping ----------------------------------------------------

    fn fresh_var(&mut self) -> Ind {
        let v = Ind::Var(self.next_var);
        self.next_var += 1;
        self.fresh_vars += 1;
        v
    }

    fn record(&mut self, step: TraceStep) {
        self.rule_applications += 1;
        if let Some(trace) = self.trace.as_mut() {
            trace.push(step);
        }
    }

    /// Adds facts for one rule application; returns whether anything was new.
    fn add_facts(&mut self, rule: RuleId, constraints: Vec<Constraint>) -> bool {
        let added: Vec<Constraint> = constraints
            .into_iter()
            .filter(|c| self.facts.insert(*c))
            .collect();
        if added.is_empty() {
            return false;
        }
        self.record(TraceStep {
            rule,
            added_facts: added,
            added_goals: vec![],
            substitution: None,
        });
        true
    }

    /// Adds goals for one rule application; returns whether anything was new.
    fn add_goals(&mut self, rule: RuleId, constraints: Vec<Constraint>) -> bool {
        let added: Vec<Constraint> = constraints
            .into_iter()
            .filter(|c| self.goals.insert(*c))
            .collect();
        if added.is_empty() {
            return false;
        }
        self.record(TraceStep {
            rule,
            added_facts: vec![],
            added_goals: added,
            substitution: None,
        });
        true
    }

    /// Applies the substitution `[from ↦ to]` to the whole pair.
    fn substitute(&mut self, rule: RuleId, from: Ind, to: Ind) {
        self.facts.substitute(from, to);
        self.goals.substitute(from, to);
        self.record(TraceStep {
            rule,
            added_facts: vec![],
            added_goals: vec![],
            substitution: Some((from, to)),
        });
    }

    fn apply_group(&mut self, group: Group) -> bool {
        match group {
            Group::Decomposition => {
                self.rule_d1()
                    | self.rule_d2()
                    | self.rule_d3()
                    | self.rule_d4()
                    | self.rule_d5()
                    | self.rule_d6()
                    | self.rule_d7()
            }
            Group::Schema => {
                self.rule_s1() | self.rule_s2() | self.rule_s3() | self.rule_s4() | self.rule_s5()
            }
            Group::Goal => self.rule_g1() | self.rule_g23(),
            Group::Composition => {
                self.rule_c1()
                    | self.rule_c2()
                    | self.rule_c3()
                    | self.rule_c4()
                    | self.rule_c56()
            }
        }
    }

    // ----- decomposition rules (Figure 7) ---------------------------------

    /// D1: `s : C ⊓ D ∈ F` yields `s : C` and `s : D`.
    fn rule_d1(&mut self) -> bool {
        let candidates: Vec<(Ind, ConceptId, ConceptId)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::And(l, r) => Some((s, l, r)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, l, r) in candidates {
            changed |= self.add_facts(
                RuleId::D1,
                vec![Constraint::Member(s, l), Constraint::Member(s, r)],
            );
        }
        changed
    }

    /// D2: `t R⁻¹ s ∈ F` yields `s R t` (closure of fillers under
    /// inversion).
    fn rule_d2(&mut self) -> bool {
        let candidates: Vec<(Ind, Attr, Ind)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::Filler(t, r, s) => Some((s, r.inverse(), t)),
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, r, t) in candidates {
            changed |= self.add_facts(RuleId::D2, vec![Constraint::Filler(s, r, t)]);
        }
        changed
    }

    /// D3: `y : {a} ∈ F` for a variable `y` substitutes `y` by `a`.
    fn rule_d3(&mut self) -> bool {
        let candidate = self.facts.iter().find_map(|c| match *c {
            Constraint::Member(s, concept) if s.is_var() => match self.arena.concept(concept) {
                Concept::Singleton(a) => Some((s, Ind::Const(a))),
                _ => None,
            },
            _ => None,
        });
        if let Some((from, to)) = candidate {
            self.substitute(RuleId::D3, from, to);
            true
        } else {
            false
        }
    }

    /// D4: `s : ∃p ∈ F` with no witness yields `s p y` for a fresh `y`.
    fn rule_d4(&mut self) -> bool {
        let candidates: Vec<(Ind, PathId)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::Exists(p) if !self.arena.is_empty_path(p) => Some((s, p)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, p) in candidates {
            if self.facts.has_any_path_target(s, p) {
                continue;
            }
            let y = self.fresh_var();
            changed |= self.add_facts(RuleId::D4, vec![Constraint::PathRel(s, p, y)]);
        }
        changed
    }

    /// D5: `s : ∃p ≐ ε ∈ F` yields the cyclic witness `s p s`.
    fn rule_d5(&mut self) -> bool {
        let candidates: Vec<(Ind, PathId)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::Agree(p, q)
                        if self.arena.is_empty_path(q) && !self.arena.is_empty_path(p) =>
                    {
                        Some((s, p))
                    }
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, p) in candidates {
            changed |= self.add_facts(RuleId::D5, vec![Constraint::PathRel(s, p, s)]);
        }
        changed
    }

    /// D6: unfold the first step of a path fact `s (R:C)p t` (`p ≠ ε`) with
    /// a fresh middle individual, unless a suitable one already exists.
    fn rule_d6(&mut self) -> bool {
        let candidates: Vec<(Ind, Restriction, PathId, Ind)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::PathRel(s, p, t) => match self.arena.path(p) {
                    Path::Step(restriction, rest) if !self.arena.is_empty_path(rest) => {
                        Some((s, restriction, rest, t))
                    }
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, restriction, rest, t) in candidates {
            let exists_witness = self.facts.fillers_via(s, restriction.attr).any(|t_prime| {
                self.facts.has_member(t_prime, restriction.concept)
                    && self.facts.has_path(t_prime, rest, t)
            });
            if exists_witness {
                continue;
            }
            let y = self.fresh_var();
            changed |= self.add_facts(
                RuleId::D6,
                vec![
                    Constraint::Filler(s, restriction.attr, y),
                    Constraint::Member(y, restriction.concept),
                    Constraint::PathRel(y, rest, t),
                ],
            );
        }
        changed
    }

    /// D7: unfold a one-step path fact `s (R:C) t` into `s R t` and `t : C`.
    fn rule_d7(&mut self) -> bool {
        let candidates: Vec<(Ind, Restriction, Ind)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::PathRel(s, p, t) => match self.arena.path(p) {
                    Path::Step(restriction, rest) if self.arena.is_empty_path(rest) => {
                        Some((s, restriction, t))
                    }
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, restriction, t) in candidates {
            changed |= self.add_facts(
                RuleId::D7,
                vec![
                    Constraint::Filler(s, restriction.attr, t),
                    Constraint::Member(t, restriction.concept),
                ],
            );
        }
        changed
    }

    // ----- schema rules (Figure 8) -----------------------------------------

    /// The primitive classes `A` with `s : A ∈ F`.
    fn primitive_memberships(&self) -> Vec<(Ind, subq_concepts::symbol::ClassId)> {
        self.facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::Prim(class) => Some((s, class)),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    /// S1: `s : A₁ ∈ F`, `A₁ ⊑ A₂ ∈ Σ` yields `s : A₂`.
    fn rule_s1(&mut self) -> bool {
        let candidates = self.primitive_memberships();
        let mut changed = false;
        for (s, a1) in candidates {
            let supers: Vec<_> = self.schema.supers_of(a1).to_vec();
            for a2 in supers {
                let concept = self.arena.prim(a2);
                changed |= self.add_facts(RuleId::S1, vec![Constraint::Member(s, concept)]);
            }
        }
        changed
    }

    /// S2: `s : A₁`, `s P t ∈ F`, `A₁ ⊑ ∀P.A₂ ∈ Σ` yields `t : A₂`.
    fn rule_s2(&mut self) -> bool {
        let candidates = self.primitive_memberships();
        let mut changed = false;
        for (s, a1) in candidates {
            let restrictions: Vec<_> = self.schema.value_restrictions_of(a1).to_vec();
            for (p, a2) in restrictions {
                let fillers: Vec<Ind> = self.facts.fillers_via(s, Attr::primitive(p)).collect();
                for t in fillers {
                    let concept = self.arena.prim(a2);
                    changed |= self.add_facts(RuleId::S2, vec![Constraint::Member(t, concept)]);
                }
            }
        }
        changed
    }

    /// S3: `s P t ∈ F`, `P ⊑ A₁ × A₂ ∈ Σ` yields `s : A₁` and `t : A₂`.
    fn rule_s3(&mut self) -> bool {
        let candidates: Vec<(Ind, Attr, Ind)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::Filler(s, r, t) if r.is_primitive() => Some((s, r, t)),
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, r, t) in candidates {
            let Some(p) = r.as_primitive() else { continue };
            let Some((dom, rng)) = self.schema.attr_typing(p) else {
                continue;
            };
            let dom_c = self.arena.prim(dom);
            let rng_c = self.arena.prim(rng);
            changed |= self.add_facts(
                RuleId::S3,
                vec![Constraint::Member(s, dom_c), Constraint::Member(t, rng_c)],
            );
        }
        changed
    }

    /// S4: `s : A`, `s P y`, `s P t ∈ F` with `A ⊑ (≤1 P) ∈ Σ` and `y` a
    /// variable identifies `y` with `t`.
    fn rule_s4(&mut self) -> bool {
        let memberships = self.primitive_memberships();
        for (s, a) in memberships {
            let functional: Vec<_> = self.schema.functional_attrs_of(a).collect();
            for p in functional {
                let attr = Attr::primitive(p);
                let fillers: Vec<Ind> = self.facts.fillers_via(s, attr).collect();
                if fillers.len() < 2 {
                    continue;
                }
                // Pick a variable to eliminate and any other filler to keep;
                // prefer keeping constants so the substitution is stable.
                let keep = fillers
                    .iter()
                    .copied()
                    .find(|f| f.is_const())
                    .unwrap_or(fillers[0]);
                let eliminate = fillers.iter().copied().find(|f| f.is_var() && *f != keep);
                if let Some(y) = eliminate {
                    self.substitute(RuleId::S4, y, keep);
                    return true;
                }
            }
        }
        false
    }

    /// S5: a goal `s : ∃(P:C)p` or `s : ∃(P:C)p ≐ ε` demands a `P`-filler
    /// of `s`; if none exists but some fact `s : A` with `A ⊑ ∃P ∈ Σ`
    /// guarantees one, create it.
    fn rule_s5(&mut self) -> bool {
        let candidates: Vec<(Ind, Attr)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => {
                    let path = match self.arena.concept(concept) {
                        Concept::Exists(p) => Some(p),
                        Concept::Agree(p, q) if self.arena.is_empty_path(q) => Some(p),
                        _ => None,
                    }?;
                    match self.arena.path(path) {
                        Path::Step(restriction, _) if restriction.attr.is_primitive() => {
                            Some((s, restriction.attr))
                        }
                        _ => None,
                    }
                }
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, attr) in candidates {
            if self.facts.has_any_filler_via(s, attr) {
                continue;
            }
            let p = attr.as_primitive().expect("checked primitive");
            let has_necessary = self.primitive_class_facts_of(s).iter().any(|&a| {
                self.schema.is_necessary(a, p)
            });
            if !has_necessary {
                continue;
            }
            let y = self.fresh_var();
            changed |= self.add_facts(RuleId::S5, vec![Constraint::Filler(s, attr, y)]);
        }
        changed
    }

    fn primitive_class_facts_of(&self, s: Ind) -> Vec<subq_concepts::symbol::ClassId> {
        self.facts
            .concepts_of(s)
            .filter_map(|c| match self.arena.concept(c) {
                Concept::Prim(class) => Some(class),
                _ => None,
            })
            .collect()
    }

    // ----- goal rules (Figure 9) -------------------------------------------

    /// G1: `s : C ⊓ D ∈ G` yields the goals `s : C` and `s : D`.
    fn rule_g1(&mut self) -> bool {
        let candidates: Vec<(Ind, ConceptId, ConceptId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::And(l, r) => Some((s, l, r)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, l, r) in candidates {
            changed |= self.add_goals(
                RuleId::G1,
                vec![Constraint::Member(s, l), Constraint::Member(s, r)],
            );
        }
        changed
    }

    /// G2 and G3: a goal path `s : ∃(R:C)p` (or its `≐ ε` form) and a fact
    /// `s R t` yield the goals `t : C` (G2) and, if `p ≠ ε`, also `t : ∃p`
    /// (G3).
    fn rule_g23(&mut self) -> bool {
        let candidates: Vec<(Ind, Restriction, PathId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => {
                    let path = match self.arena.concept(concept) {
                        Concept::Exists(p) => Some(p),
                        Concept::Agree(p, q) if self.arena.is_empty_path(q) => Some(p),
                        _ => None,
                    }?;
                    match self.arena.path(path) {
                        Path::Step(restriction, rest) => Some((s, restriction, rest)),
                        Path::Empty => None,
                    }
                }
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, restriction, rest) in candidates {
            let fillers: Vec<Ind> = self.facts.fillers_via(s, restriction.attr).collect();
            let rest_is_empty = self.arena.is_empty_path(rest);
            for t in fillers {
                if rest_is_empty {
                    changed |= self.add_goals(
                        RuleId::G2,
                        vec![Constraint::Member(t, restriction.concept)],
                    );
                } else {
                    let exists_rest = self.arena.exists(rest);
                    changed |= self.add_goals(
                        RuleId::G3,
                        vec![
                            Constraint::Member(t, restriction.concept),
                            Constraint::Member(t, exists_rest),
                        ],
                    );
                }
            }
        }
        changed
    }

    // ----- composition rules (Figure 10) -------------------------------------

    /// C1: facts `s : C` and `s : D` compose to `s : C ⊓ D` when the goal
    /// asks for it.
    fn rule_c1(&mut self) -> bool {
        let candidates: Vec<(Ind, ConceptId, ConceptId, ConceptId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::And(l, r) => Some((s, concept, l, r)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, whole, l, r) in candidates {
            if self.facts.has_member(s, l) && self.facts.has_member(s, r) {
                changed |= self.add_facts(RuleId::C1, vec![Constraint::Member(s, whole)]);
            }
        }
        changed
    }

    /// C2: a goal `s : ⊤` is trivially satisfied.
    fn rule_c2(&mut self) -> bool {
        let candidates: Vec<(Ind, ConceptId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::Top => Some((s, concept)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, concept) in candidates {
            changed |= self.add_facts(RuleId::C2, vec![Constraint::Member(s, concept)]);
        }
        changed
    }

    /// C3: a goal `s : ∃p` composes from a witnessing path fact (or `p = ε`).
    fn rule_c3(&mut self) -> bool {
        let candidates: Vec<(Ind, ConceptId, PathId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::Exists(p) => Some((s, concept, p)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, concept, p) in candidates {
            if self.arena.is_empty_path(p) || self.facts.has_any_path_target(s, p) {
                changed |= self.add_facts(RuleId::C3, vec![Constraint::Member(s, concept)]);
            }
        }
        changed
    }

    /// C4: a goal `s : ∃p ≐ ε` composes from a cyclic path fact `s p s`
    /// (or `p = ε`).
    fn rule_c4(&mut self) -> bool {
        let candidates: Vec<(Ind, ConceptId, PathId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::Agree(p, q) if self.arena.is_empty_path(q) => Some((s, concept, p)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, concept, p) in candidates {
            if self.arena.is_empty_path(p) || self.facts.has_path(s, p, s) {
                changed |= self.add_facts(RuleId::C4, vec![Constraint::Member(s, concept)]);
            }
        }
        changed
    }

    /// C5 and C6: path facts are composed bottom-up along goal paths.
    ///
    /// For a goal path `(R:C)p` starting at `s`: if `p = ε` (C6), every
    /// filler `s R t` with `t : C` yields the path fact `s (R:C) t`; if
    /// `p ≠ ε` (C5), every filler `s R t'` with `t' : C` and a suffix fact
    /// `t' p t` yields `s (R:C)p t`.
    fn rule_c56(&mut self) -> bool {
        let candidates: Vec<(Ind, PathId, Restriction, PathId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => {
                    let path = match self.arena.concept(concept) {
                        Concept::Exists(p) => Some(p),
                        Concept::Agree(p, q) if self.arena.is_empty_path(q) => Some(p),
                        _ => None,
                    }?;
                    match self.arena.path(path) {
                        Path::Step(restriction, rest) => Some((s, path, restriction, rest)),
                        Path::Empty => None,
                    }
                }
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, full_path, restriction, rest) in candidates {
            let rest_is_empty = self.arena.is_empty_path(rest);
            let fillers: Vec<Ind> = self
                .facts
                .fillers_via(s, restriction.attr)
                .filter(|t| self.facts.has_member(*t, restriction.concept))
                .collect();
            for t_prime in fillers {
                if rest_is_empty {
                    changed |= self.add_facts(
                        RuleId::C6,
                        vec![Constraint::PathRel(s, full_path, t_prime)],
                    );
                } else {
                    let targets: Vec<Ind> = self.facts.path_targets(t_prime, rest).collect();
                    for t in targets {
                        changed |= self
                            .add_facts(RuleId::C5, vec![Constraint::PathRel(s, full_path, t)]);
                    }
                }
            }
        }
        changed
    }
}

enum Group {
    Decomposition,
    Schema,
    Goal,
    Composition,
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_concepts::symbol::Vocabulary;

    /// `Patient ⊑ Person` makes `Patient ⊑_Σ Person` derivable via S1.
    #[test]
    fn simple_isa_subsumption_derives_view_fact() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let person = voc.class("Person");
        let mut schema = Schema::new();
        schema.add_isa(patient, person);
        let mut arena = TermArena::new();
        let c = arena.prim(patient);
        let d = arena.prim(person);
        let mut completion = Completion::new(&mut arena, &schema, c, d, true);
        completion.run();
        assert!(completion.view_fact_derived());
        assert!(completion.find_clash().is_none());
        let trace = completion.trace().expect("tracing enabled");
        assert_eq!(trace.count_rule(RuleId::S1), 1);
    }

    /// Without the axiom the subsumption does not hold and no view fact is
    /// derived.
    #[test]
    fn no_axiom_no_subsumption() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let person = voc.class("Person");
        let schema = Schema::new();
        let mut arena = TermArena::new();
        let c = arena.prim(patient);
        let d = arena.prim(person);
        let mut completion = Completion::new(&mut arena, &schema, c, d, false);
        completion.run();
        assert!(!completion.view_fact_derived());
        assert!(completion.find_clash().is_none());
    }

    /// Every concept subsumes itself: the decomposition witnesses feed the
    /// composition rules back up to the full view concept.
    #[test]
    fn reflexivity_through_decomposition_and_composition() {
        let mut voc = Vocabulary::new();
        let doctor = voc.class("Doctor");
        let disease = voc.class("Disease");
        let consults = voc.attribute("consults");
        let skilled = voc.attribute("skilled_in");
        let schema = Schema::new();
        let mut arena = TermArena::new();
        let doctor_c = arena.prim(doctor);
        let disease_c = arena.prim(disease);
        let path = arena.path_of(&[
            (Attr::primitive(consults), doctor_c),
            (Attr::primitive(skilled), disease_c),
        ]);
        let agree = arena.agree_epsilon(path);
        let exists = arena.exists(path);
        let concept = arena.and(exists, agree);
        let mut completion = Completion::new(&mut arena, &schema, concept, concept, false);
        completion.run();
        assert!(completion.view_fact_derived());
    }

    /// Rule S5 creates a filler only when a goal demands it; the fact
    /// `x : ∃name` alone never materializes a name filler.
    #[test]
    fn s5_only_fires_for_goals() {
        let mut voc = Vocabulary::new();
        let person = voc.class("Person");
        let string = voc.class("String");
        let name = voc.attribute("name");
        let mut schema = Schema::new();
        schema.add_necessary(person, name);
        schema.add_value_restriction(person, name, string);

        // Query: Person. View: ∃(name: String). The filler must be invented
        // by S5 and typed by S2.
        let mut arena = TermArena::new();
        let person_c = arena.prim(person);
        let string_c = arena.prim(string);
        let view_path = arena.path1(Attr::primitive(name), string_c);
        let view = arena.exists(view_path);
        let mut completion = Completion::new(&mut arena, &schema, person_c, view, true);
        completion.run();
        assert!(completion.view_fact_derived());
        let trace = completion.trace().expect("tracing enabled");
        assert_eq!(trace.count_rule(RuleId::S5), 1);
        assert_eq!(trace.count_rule(RuleId::S2), 1);

        // Reversed: the view Person is not implied by ∃(name: String).
        let mut arena2 = TermArena::new();
        let person_c2 = arena2.prim(person);
        let string_c2 = arena2.prim(string);
        let path2 = arena2.path1(Attr::primitive(name), string_c2);
        let query2 = arena2.exists(path2);
        let mut completion2 = Completion::new(&mut arena2, &schema, query2, person_c2, false);
        completion2.run();
        assert!(!completion2.view_fact_derived());
    }

    /// Functional attributes identify fillers (rule S4): if a person has at
    /// most one name, a query naming it twice still matches a view asking
    /// for a single restricted name.
    #[test]
    fn s4_identifies_functional_fillers() {
        let mut voc = Vocabulary::new();
        let person = voc.class("Person");
        let string = voc.class("String");
        let nice = voc.class("Nice");
        let name = voc.attribute("name");
        let mut schema = Schema::new();
        schema.add_functional(person, name);

        let mut arena = TermArena::new();
        let person_c = arena.prim(person);
        let string_c = arena.prim(string);
        let nice_c = arena.prim(nice);
        // Query: Person ⊓ ∃(name: String) ⊓ ∃(name: Nice).
        let p1 = arena.path1(Attr::primitive(name), string_c);
        let p2 = arena.path1(Attr::primitive(name), nice_c);
        let e1 = arena.exists(p1);
        let e2 = arena.exists(p2);
        let query = arena.and_all([person_c, e1, e2]);
        // View: ∃(name: String ⊓ Nice).
        let both = arena.and(string_c, nice_c);
        let vp = arena.path1(Attr::primitive(name), both);
        let view = arena.exists(vp);

        let mut completion = Completion::new(&mut arena, &schema, query, view, true);
        completion.run();
        assert!(completion.view_fact_derived());
        assert!(completion.trace().expect("trace").count_rule(RuleId::S4) >= 1);

        // Without the functional axiom the two name fillers stay distinct
        // and the view is not derived.
        let empty = Schema::new();
        let mut arena2 = TermArena::new();
        let person_c = arena2.prim(person);
        let string_c = arena2.prim(string);
        let nice_c = arena2.prim(nice);
        let p1 = arena2.path1(Attr::primitive(name), string_c);
        let p2 = arena2.path1(Attr::primitive(name), nice_c);
        let e1 = arena2.exists(p1);
        let e2 = arena2.exists(p2);
        let query = arena2.and_all([person_c, e1, e2]);
        let both = arena2.and(string_c, nice_c);
        let vp = arena2.path1(Attr::primitive(name), both);
        let view = arena2.exists(vp);
        let mut completion2 = Completion::new(&mut arena2, &empty, query, view, false);
        completion2.run();
        assert!(!completion2.view_fact_derived());
    }

    /// D3 substitutes variables bound to singletons; a clash appears when a
    /// constant is forced into a different singleton.
    #[test]
    fn singleton_substitution_and_clash() {
        let mut voc = Vocabulary::new();
        let drug = voc.class("Drug");
        let takes = voc.attribute("takes");
        let aspirin = voc.constant("Aspirin");
        let ibuprofen = voc.constant("Ibuprofen");
        let schema = Schema::new();

        // Query: ∃(takes: {Aspirin} ⊓ {Ibuprofen}) — unsatisfiable.
        let mut arena = TermArena::new();
        let a = arena.singleton(aspirin);
        let b = arena.singleton(ibuprofen);
        let both = arena.and(a, b);
        let path = arena.path1(Attr::primitive(takes), both);
        let query = arena.exists(path);
        let drug_c = arena.prim(drug);
        let mut completion = Completion::new(&mut arena, &schema, query, drug_c, true);
        completion.run();
        // The unsatisfiable query is subsumed by anything: a clash appears.
        assert!(matches!(
            completion.find_clash(),
            Some(Clash::ConstantSingleton(..))
        ));
        assert!(completion.trace().expect("trace").count_rule(RuleId::D3) >= 1);
    }

    /// A functional attribute with two distinct constant fillers clashes.
    #[test]
    fn functional_fanout_clash() {
        let mut voc = Vocabulary::new();
        let person = voc.class("Person");
        let name = voc.attribute("name");
        let alice = voc.constant("alice");
        let bob = voc.constant("bob");
        let mut schema = Schema::new();
        schema.add_functional(person, name);

        let mut arena = TermArena::new();
        let person_c = arena.prim(person);
        let a = arena.singleton(alice);
        let b = arena.singleton(bob);
        let p1 = arena.path1(Attr::primitive(name), a);
        let p2 = arena.path1(Attr::primitive(name), b);
        let e1 = arena.exists(p1);
        let e2 = arena.exists(p2);
        let query = arena.and_all([person_c, e1, e2]);
        let top = arena.top();
        let mut completion = Completion::new(&mut arena, &schema, query, top, false);
        completion.run();
        assert!(matches!(
            completion.find_clash(),
            Some(Clash::FunctionalFanOut(..))
        ));
    }

    /// The inverse-closure rule D2 lets a view reach backwards over an
    /// attribute the query traversed forwards.
    #[test]
    fn inverse_closure_connects_both_directions() {
        let mut voc = Vocabulary::new();
        let doctor = voc.class("Doctor");
        let consults = voc.attribute("consults");
        let schema = Schema::new();
        let mut arena = TermArena::new();
        let doctor_c = arena.prim(doctor);
        let top = arena.top();
        // Query: ∃(consults: Doctor ⊓ ∃(consults⁻¹: ⊤)) — trivially the
        // inverse edge exists.
        let back = arena.path1(Attr::inverse_of(consults), top);
        let back_exists = arena.exists(back);
        let doctor_and_back = arena.and(doctor_c, back_exists);
        let qpath = arena.path1(Attr::primitive(consults), doctor_and_back);
        let query = arena.exists(qpath);
        // View: ∃(consults: Doctor).
        let vpath = arena.path1(Attr::primitive(consults), doctor_c);
        let view = arena.exists(vpath);
        let mut completion = Completion::new(&mut arena, &schema, query, view, false);
        completion.run();
        assert!(completion.view_fact_derived());
    }

    /// The number of individuals stays within the `M · N` bound of
    /// Proposition 4.8.
    #[test]
    fn individual_count_respects_mn_bound() {
        let mut voc = Vocabulary::new();
        let a = voc.class("A");
        let r = voc.attribute("r");
        let mut schema = Schema::new();
        schema.add_necessary(a, r);
        schema.add_value_restriction(a, r, a);

        let mut arena = TermArena::new();
        let a_c = arena.prim(a);
        let top = arena.top();
        // View: ∃(r:⊤)(r:⊤)(r:⊤) — demands a chain of three fillers.
        let view_path = arena.path_of(&[
            (Attr::primitive(r), top),
            (Attr::primitive(r), top),
            (Attr::primitive(r), top),
        ]);
        let view = arena.exists(view_path);
        let m = arena.concept_size(a_c);
        let n = arena.concept_size(view);
        let mut completion = Completion::new(&mut arena, &schema, a_c, view, false);
        let stats = completion.run();
        assert!(completion.view_fact_derived());
        assert!(
            stats.individuals <= m * n + 1,
            "individuals {} must respect the M*N bound ({} * {})",
            stats.individuals,
            m,
            n
        );
    }

    /// Completions are deterministic: running twice yields identical stats
    /// and rule sequences.
    #[test]
    fn completion_is_deterministic() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let person = voc.class("Person");
        let disease = voc.class("Disease");
        let suffers = voc.attribute("suffers");
        let mut schema = Schema::new();
        schema.add_isa(patient, person);
        schema.add_necessary(patient, suffers);
        schema.add_value_restriction(patient, suffers, disease);

        let build = |arena: &mut TermArena| {
            let patient_c = arena.prim(patient);
            let disease_c = arena.prim(disease);
            let path = arena.path1(Attr::primitive(suffers), disease_c);
            let view = arena.exists(path);
            (patient_c, view)
        };
        let mut arena1 = TermArena::new();
        let (c1, d1) = build(&mut arena1);
        let mut run1 = Completion::new(&mut arena1, &schema, c1, d1, true);
        let stats1 = run1.run();
        let seq1 = run1.trace().expect("trace").rule_sequence();

        let mut arena2 = TermArena::new();
        let (c2, d2) = build(&mut arena2);
        let mut run2 = Completion::new(&mut arena2, &schema, c2, d2, true);
        let stats2 = run2.run();
        let seq2 = run2.trace().expect("trace").rule_sequence();

        assert_eq!(stats1, stats2);
        assert_eq!(seq1, seq2);
    }
}
