//! The completion engine: delta-driven (semi-naive) saturation of a
//! fact/goal pair under the rules of Figures 7–10.
//!
//! # The worklist / delta design
//!
//! The naive engine (retained as [`crate::reference::ReferenceCompletion`])
//! re-collects the candidates of all 19 rules by scanning the *entire*
//! fact and goal sets on every fixpoint round, for a real cost of
//! O(rounds × rules × |F ∪ G|). This engine is *semi-naive*: every
//! constraint is classified **once**, when it is inserted, and routed to
//! the rules it can feed; a rule pass consumes only the work queued since
//! its last firing. Two kinds of per-rule state exist:
//!
//! * **fire-once queues** (D1–D7, S1, S3, G1, C2): the rule's precondition
//!   depends only on the constraint itself (plus immutable schema), so a
//!   FIFO queue of freshly inserted candidates is drained per pass;
//! * **registries + pending sets** (S2, S4, S5, G2/G3, C1, C3, C4, C5/C6):
//!   the rule joins several constraints, so candidates are *registered*
//!   (in insertion order) and an ordered pending set records which
//!   registry entries — or (candidate, filler) pairs — were touched by a
//!   newly inserted join partner. The reverse indexes of
//!   [`ConstraintSet`] (`fillers_to`, `members_of`, attr-keyed filler
//!   maps) make each trigger an O(1) lookup.
//!
//! # Why determinism (and the paper's traces) are preserved
//!
//! The engine keeps the reference control structure — decomposition before
//! schema before goal before composition rules, substitutions one at a
//! time — and fires within each pass in **exactly the order the full scan
//! would**:
//!
//! * queues and registries are filled in constraint insertion order, and
//!   per-`(individual, attribute)` index vectors preserve the insertion
//!   order of a full-scan filter, so FIFO draining equals a full scan that
//!   skips unproductive candidates;
//! * pending sets are `BTreeSet`s keyed by registry position (and filler
//!   position for join pairs), drained in ascending order with a cursor,
//!   so joint candidates fire ordered by (primary, secondary) insertion
//!   position — the nested-loop order of the scans; entries enqueued
//!   *during* a pass fire in the same pass exactly when their key lies
//!   ahead of the cursor, which is precisely when the full scan's live
//!   inner loops would have seen them;
//! * a pass is bounded by the registry length at pass start, mirroring the
//!   full scan's collect-then-fire snapshot of candidates;
//! * substitutions (D3/S4) rebuild the constraint sets, so all rule state
//!   is reset and replayed from the rebuilt insertion order — the same
//!   state the full scan recomputes from scratch.
//!
//! Fresh variables are therefore numbered in the same creation order as in
//! the reference engine, completions are unique up to nothing at all (two
//! runs are bit-identical), and the Figure 11 trace tests hold for both
//! engines. The equivalence is enforced by the property suite in
//! `tests/delta_equivalence.rs`.
//!
//! # The fact/goal split: saturate once, probe many times
//!
//! The optimizer workload is one incoming query classified against *every*
//! materialized view. The fact side of a completion — the closure of
//! `{o : C}` under the decomposition and schema rules — depends only on
//! `(Σ, C)`, never on the view: with an empty goal set, the goal and
//! composition rules have no candidates and S5 has no demands, so `run()`
//! computes exactly that closure. [`SaturatedFacts`] snapshots the result
//! *together with the per-rule worklist positions* (drained queues, filled
//! registries, counters), so a probe can fork it with one `clone` and
//! [`Completion::resume`] layers a view's goal on top: only the goal-side
//! rules (G1–G3, C1–C6, S5) and the fact consequences they trigger run to a
//! verdict. Planning a query against N views thus costs one fact
//! saturation plus N cheap goal probes instead of N full completions.
//!
//! Fact-reuse applies whenever the schema and the (normalized) query are
//! fixed — forks are independent, so probes may run in any order and
//! interleave freely. Substitutions during the fact phase are tracked
//! through [`SaturatedFacts::root`], so a probe inserts its goal at
//! whatever individual the start variable `x` was mapped to. The
//! `tests/probe_equivalence.rs` suite pins probe outcomes (verdict, clash,
//! final sets, stats) to fresh single-shot completions and to the
//! full-scan reference engine.

use crate::constraint::{Constraint, ConstraintSet};
use crate::ind::Ind;
use crate::rules::RuleId;
use crate::trace::{DerivationTrace, TraceStep};
use fxhash::FxHashMap;
use std::collections::{BTreeSet, VecDeque};
use std::ops::Bound::{Excluded, Unbounded};
use subq_concepts::attribute::Attr;
use subq_concepts::schema::Schema;
use subq_concepts::symbol::{ClassId, ConstId};
use subq_concepts::term::{Concept, ConceptId, Path, PathId, Restriction, TermArena};

/// Statistics about a finished completion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompletionStats {
    /// Distinct individuals occurring in the final pair.
    pub individuals: usize,
    /// Fresh variables created by rules D4, D6, and S5.
    pub fresh_vars: usize,
    /// Total number of rule applications.
    pub rule_applications: usize,
    /// Constraints in the final fact set `F`.
    pub facts: usize,
    /// Constraints in the final goal set `G`.
    pub goals: usize,
    /// Rule candidates examined while saturating. For the delta engine
    /// this is O(|Δ|) — each queued candidate or triggered join pair
    /// counts once; for the full-scan reference engine it counts every
    /// candidate of every round, O(rounds × |F ∪ G|).
    pub constraints_examined: usize,
    /// Candidates examined *after* the fork, i.e. by the goal-side probe
    /// alone. Zero for single-shot completions; for a resumed completion
    /// this is the work the fact-phase reuse did not have to repeat.
    pub probe_examined: usize,
    /// Whether this completion was resumed from a [`SaturatedFacts`] fork
    /// instead of saturating the fact side itself.
    pub fact_phase_reused: bool,
}

impl CompletionStats {
    /// The statistics with the engine-dependent work counter zeroed —
    /// every remaining field must agree between the delta engine and the
    /// full-scan reference on the same input.
    pub fn outcome_only(mut self) -> CompletionStats {
        self.constraints_examined = 0;
        self.probe_examined = 0;
        self.fact_phase_reused = false;
        self
    }
}

/// A clash found in the fact set (Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Clash {
    /// `a : {b}` for distinct constants `a`, `b`.
    ConstantSingleton(Ind, Ind),
    /// `s P a`, `s P b`, `s : A` with `A ⊑ (≤1 P)` and distinct constants
    /// `a`, `b`.
    FunctionalFanOut(Ind, Attr, Ind, Ind),
}

/// An S5 demand: some goal asks for a `attr`-filler of `s`.
#[derive(Clone, Copy, Debug)]
struct FillerDemand {
    s: Ind,
    attr: Attr,
    done: bool,
}

/// A registered G2/G3 or C5/C6 goal: `s : ∃(R:C)p` (or its `≐ ε` form).
#[derive(Clone, Copy, Debug)]
struct PathGoal {
    s: Ind,
    full_path: PathId,
    restriction: Restriction,
    rest: PathId,
}

/// A registered C1 goal `s : l ⊓ r`.
#[derive(Clone, Copy, Debug)]
struct AndGoal {
    s: Ind,
    whole: ConceptId,
    left: ConceptId,
    right: ConceptId,
    done: bool,
}

/// A registered C3 goal `s : ∃p` or C4 goal `s : ∃p ≐ ε`.
#[derive(Clone, Copy, Debug)]
struct PathDemand {
    s: Ind,
    concept: ConceptId,
    path: PathId,
    done: bool,
}

/// Per-rule worklists, registries and trigger indexes. Reset (and replayed
/// from the rebuilt constraint sets) after every substitution. Clonable so
/// a fact-phase snapshot can be forked per view probe with the worklist
/// positions intact.
#[derive(Clone, Debug, Default)]
struct RuleState {
    // Fire-once FIFO queues over newly inserted facts.
    d1: VecDeque<(Ind, ConceptId, ConceptId)>,
    d2: VecDeque<(Ind, Attr, Ind)>,
    d3: VecDeque<(Ind, ConstId)>,
    d4: VecDeque<(Ind, PathId)>,
    d5: VecDeque<(Ind, PathId)>,
    d6: VecDeque<(Ind, Restriction, PathId, Ind)>,
    d7: VecDeque<(Ind, Restriction, Ind)>,
    s1: VecDeque<(Ind, ClassId)>,
    s3: VecDeque<(Ind, Attr, Ind)>,
    // S2: primitive memberships joined with attr-keyed fillers. Pending
    // keys are (membership index, value-restriction index, filler
    // position) — the nested loop order of the full scan.
    s2_members: Vec<(Ind, ClassId)>,
    s2_members_by_ind: FxHashMap<Ind, Vec<u32>>,
    s2_pending: BTreeSet<(u32, u32, u32)>,
    // S4: memberships of classes with ≥1 functional attribute, in
    // insertion order; the dirty flag skips the (indexed) scan entirely
    // when nothing relevant changed.
    s4_members: Vec<(Ind, ClassId)>,
    s4_dirty: bool,
    // S5: goal-side filler demands, re-triggered by new memberships.
    s5_all: Vec<FillerDemand>,
    s5_by_ind: FxHashMap<Ind, Vec<u32>>,
    s5_pending: BTreeSet<u32>,
    // Fire-once FIFO queues over newly inserted goals.
    g1: VecDeque<(Ind, ConceptId, ConceptId)>,
    c2: VecDeque<(Ind, ConceptId)>,
    // G2/G3: goal × filler join pairs.
    g23_goals: Vec<PathGoal>,
    g23_by_src_attr: FxHashMap<(Ind, Attr), Vec<u32>>,
    g23_pending: BTreeSet<(u32, u32)>,
    // C1: conjunction goals waiting on their conjunct facts.
    c1_goals: Vec<AndGoal>,
    c1_by_member: FxHashMap<(Ind, ConceptId), Vec<u32>>,
    c1_pending: BTreeSet<u32>,
    // C3/C4: path-existence goals waiting on a witnessing path fact.
    c3_goals: Vec<PathDemand>,
    c3_by_path: FxHashMap<(Ind, PathId), Vec<u32>>,
    c3_pending: BTreeSet<u32>,
    c4_goals: Vec<PathDemand>,
    c4_by_path: FxHashMap<(Ind, PathId), Vec<u32>>,
    c4_pending: BTreeSet<u32>,
    // C5/C6: goal × filler join pairs with live suffix lookups.
    c56_goals: Vec<PathGoal>,
    c56_by_src_attr: FxHashMap<(Ind, Attr), Vec<u32>>,
    c56_pending: BTreeSet<(u32, u32)>,
    // Clash registries (Section 4.2), in insertion order.
    singletons: Vec<(Ind, ConstId)>,
}

/// The fact-side closure of a normalized query: the completion of
/// `{x : C}` under the decomposition and schema rules of Σ, snapshotted
/// together with the per-rule worklist positions and counters.
///
/// Computed once per `(Σ, C)` by [`SaturatedFacts::saturate`]; forked
/// cheaply (one `clone`) by [`Completion::resume`] for every view probe.
/// The snapshot owns no arena or schema borrow, so it can be stored in a
/// cache (as [`crate::checker::SubsumptionCache`] does) and outlive the
/// completion that built it — it only stays meaningful for the
/// `(TermArena, Schema)` pair it was saturated against.
#[derive(Clone, Debug)]
pub struct SaturatedFacts {
    query: ConceptId,
    facts: ConstraintSet,
    root: Ind,
    next_var: u32,
    fresh_vars: usize,
    rule_applications: usize,
    constraints_examined: usize,
    rules: RuleState,
}

impl SaturatedFacts {
    /// Saturates the fact side of `{x : query}` under the decomposition
    /// and schema rules. The query must already be normalized.
    pub fn saturate(arena: &mut TermArena, schema: &Schema, query: ConceptId) -> SaturatedFacts {
        let mut completion = Completion::new_fact_phase(arena, schema, query);
        completion.run();
        completion.into_saturated()
    }

    /// The (normalized) query concept the facts were saturated from.
    pub fn query(&self) -> ConceptId {
        self.query
    }

    /// The saturated fact set.
    pub fn facts(&self) -> &ConstraintSet {
        &self.facts
    }

    /// The individual the start variable `x` was mapped to by fact-phase
    /// substitutions (initially `x` itself); probes insert their goal
    /// here.
    pub fn root(&self) -> Ind {
        self.root
    }

    /// Candidates the fact phase examined — the work every probe forking
    /// this snapshot skips.
    pub fn constraints_examined(&self) -> usize {
        self.constraints_examined
    }
}

/// The completion of a pair of constraint systems.
pub struct Completion<'a> {
    arena: &'a mut TermArena,
    schema: &'a Schema,
    facts: ConstraintSet,
    goals: ConstraintSet,
    root: Ind,
    next_var: u32,
    fresh_vars: usize,
    rule_applications: usize,
    constraints_examined: usize,
    fact_phase_examined: usize,
    fact_phase_reused: bool,
    trace: Option<DerivationTrace>,
    query: ConceptId,
    view: ConceptId,
    rules: RuleState,
}

impl<'a> Completion<'a> {
    /// Creates the initial pair `{x : query} : {x : view}`.
    ///
    /// Both concepts must already be normalized (every agreement of the
    /// form `∃p ≐ ε`); the [`crate::checker::SubsumptionChecker`] takes
    /// care of that.
    pub fn new(
        arena: &'a mut TermArena,
        schema: &'a Schema,
        query: ConceptId,
        view: ConceptId,
        record_trace: bool,
    ) -> Self {
        let mut completion = Completion::empty(arena, schema, query, view, record_trace);
        completion.insert_fact(Constraint::Member(Ind::ROOT, query));
        completion.insert_goal(Constraint::Member(Ind::ROOT, view));
        completion
    }

    /// A completion with no constraints inserted yet.
    fn empty(
        arena: &'a mut TermArena,
        schema: &'a Schema,
        query: ConceptId,
        view: ConceptId,
        record_trace: bool,
    ) -> Self {
        Completion {
            arena,
            schema,
            facts: ConstraintSet::new(),
            goals: ConstraintSet::new(),
            root: Ind::ROOT,
            next_var: 1,
            fresh_vars: 0,
            rule_applications: 0,
            constraints_examined: 0,
            fact_phase_examined: 0,
            fact_phase_reused: false,
            trace: record_trace.then(DerivationTrace::new),
            query,
            view,
            rules: RuleState::default(),
        }
    }

    /// A fact-phase-only completion `{x : query} : ∅`. With no goals, the
    /// goal/composition rules and S5 have no candidates, so [`run`]
    /// computes exactly the fact closure under decomposition and schema
    /// rules. The `view` is a placeholder (the query itself) and is never
    /// consulted.
    ///
    /// [`run`]: Completion::run
    fn new_fact_phase(arena: &'a mut TermArena, schema: &'a Schema, query: ConceptId) -> Self {
        let mut completion = Completion::empty(arena, schema, query, query, false);
        completion.insert_fact(Constraint::Member(Ind::ROOT, query));
        completion
    }

    /// Snapshots a (fact-phase) completion into a forkable [`SaturatedFacts`].
    fn into_saturated(self) -> SaturatedFacts {
        SaturatedFacts {
            query: self.query,
            facts: self.facts,
            root: self.root,
            next_var: self.next_var,
            fresh_vars: self.fresh_vars,
            rule_applications: self.rule_applications,
            constraints_examined: self.constraints_examined,
            rules: self.rules,
        }
    }

    /// Forks a saturated fact closure and layers the goal `{o : view}` on
    /// top, where `o` is whatever the start variable was substituted to
    /// during the fact phase. Running the result performs only the
    /// goal-side work; the base snapshot is untouched and can be forked
    /// again for other views in any order.
    ///
    /// The view must be normalized against the same arena and the schema
    /// must be the one `base` was saturated with. Probes do not record
    /// traces (the fact-phase steps are not replayed, so a probe trace
    /// would be partial).
    pub fn resume(
        arena: &'a mut TermArena,
        schema: &'a Schema,
        base: &SaturatedFacts,
        view: ConceptId,
    ) -> Self {
        let mut completion = Completion {
            arena,
            schema,
            facts: base.facts.clone(),
            goals: ConstraintSet::new(),
            root: base.root,
            next_var: base.next_var,
            fresh_vars: base.fresh_vars,
            rule_applications: base.rule_applications,
            constraints_examined: base.constraints_examined,
            fact_phase_examined: base.constraints_examined,
            fact_phase_reused: true,
            trace: None,
            query: base.query,
            view,
            rules: base.rules.clone(),
        };
        completion.insert_goal(Constraint::Member(base.root, view));
        completion
    }

    /// The fact set `F`.
    pub fn facts(&self) -> &ConstraintSet {
        &self.facts
    }

    /// The goal set `G`.
    pub fn goals(&self) -> &ConstraintSet {
        &self.goals
    }

    /// The recorded derivation trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&DerivationTrace> {
        self.trace.as_ref()
    }

    /// The term arena the completion works over.
    pub fn arena(&self) -> &TermArena {
        self.arena
    }

    /// The schema Σ.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// The (normalized) query concept `C`.
    pub fn query(&self) -> ConceptId {
        self.query
    }

    /// The (normalized) view concept `D`.
    pub fn view(&self) -> ConceptId {
        self.view
    }

    /// Statistics of the completion so far.
    pub fn stats(&self) -> CompletionStats {
        let fact_inds = self.facts.individuals();
        let extra_goal_inds = self
            .goals
            .individuals()
            .iter()
            .filter(|i| !fact_inds.contains(i))
            .count();
        CompletionStats {
            individuals: fact_inds.len() + extra_goal_inds,
            fresh_vars: self.fresh_vars,
            rule_applications: self.rule_applications,
            facts: self.facts.len(),
            goals: self.goals.len(),
            constraints_examined: self.constraints_examined,
            probe_examined: if self.fact_phase_reused {
                self.constraints_examined - self.fact_phase_examined
            } else {
                0
            },
            fact_phase_reused: self.fact_phase_reused,
        }
    }

    /// The individual `o` such that `o : D` is the (unique) top-level goal.
    ///
    /// Initially this is `x`; the substitution rules D3 and S4 may replace
    /// it by a constant or another variable.
    pub fn view_individual(&self) -> Ind {
        self.goals
            .members_of(self.view)
            .first()
            .copied()
            .unwrap_or(Ind::ROOT)
    }

    /// Runs rules until no rule is applicable, then returns the statistics.
    pub fn run(&mut self) -> CompletionStats {
        loop {
            if self.apply_group(Group::Decomposition) {
                continue;
            }
            if self.apply_group(Group::Schema) {
                continue;
            }
            if self.apply_group(Group::Goal) {
                continue;
            }
            if self.apply_group(Group::Composition) {
                continue;
            }
            break;
        }
        self.stats()
    }

    /// Whether the completed facts contain the constraint `o : D`.
    pub fn view_fact_derived(&self) -> bool {
        let o = self.view_individual();
        self.facts.has_member(o, self.view)
    }

    /// Searches the fact set for a clash (Section 4.2), using the
    /// incrementally maintained singleton and functional registries.
    pub fn find_clash(&self) -> Option<Clash> {
        // a : {b} with distinct constants.
        for &(s, b) in &self.rules.singletons {
            if let Some(a) = s.as_const() {
                if a != b {
                    return Some(Clash::ConstantSingleton(s, Ind::Const(b)));
                }
            }
        }
        // s P a, s P b, s : A with A ⊑ (≤1 P) and a ≠ b constants.
        for &(s, class) in &self.rules.s4_members {
            for attr in self.schema.functional_attrs_of(class) {
                let attr = Attr::primitive(attr);
                let mut first_const: Option<Ind> = None;
                for t in self.facts.fillers_via(s, attr) {
                    if !t.is_const() {
                        continue;
                    }
                    match first_const {
                        None => first_const = Some(t),
                        Some(a) if a != t => {
                            return Some(Clash::FunctionalFanOut(s, attr, a, t));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        None
    }

    // ----- bookkeeping ----------------------------------------------------

    fn fresh_var(&mut self) -> Ind {
        let v = Ind::Var(self.next_var);
        self.next_var += 1;
        self.fresh_vars += 1;
        v
    }

    fn record(&mut self, step: TraceStep) {
        self.rule_applications += 1;
        if let Some(trace) = self.trace.as_mut() {
            trace.push(step);
        }
    }

    /// Adds facts for one rule application; returns whether anything was new.
    fn add_facts<const N: usize>(&mut self, rule: RuleId, constraints: [Constraint; N]) -> bool {
        if self.trace.is_some() {
            let added: Vec<Constraint> = constraints
                .into_iter()
                .filter(|c| self.insert_fact(*c))
                .collect();
            if added.is_empty() {
                return false;
            }
            self.record(TraceStep {
                rule,
                added_facts: added,
                added_goals: vec![],
                substitution: None,
            });
            true
        } else {
            let mut any = false;
            for constraint in constraints {
                any |= self.insert_fact(constraint);
            }
            if any {
                self.rule_applications += 1;
            }
            any
        }
    }

    /// Adds goals for one rule application; returns whether anything was new.
    fn add_goals<const N: usize>(&mut self, rule: RuleId, constraints: [Constraint; N]) -> bool {
        if self.trace.is_some() {
            let added: Vec<Constraint> = constraints
                .into_iter()
                .filter(|c| self.insert_goal(*c))
                .collect();
            if added.is_empty() {
                return false;
            }
            self.record(TraceStep {
                rule,
                added_facts: vec![],
                added_goals: added,
                substitution: None,
            });
            true
        } else {
            let mut any = false;
            for constraint in constraints {
                any |= self.insert_goal(constraint);
            }
            if any {
                self.rule_applications += 1;
            }
            any
        }
    }

    /// Applies the substitution `[from ↦ to]` to the whole pair. The sets
    /// are rebuilt, so all rule state is reset and replayed.
    fn substitute(&mut self, rule: RuleId, from: Ind, to: Ind) {
        if self.root == from {
            self.root = to;
        }
        self.facts.substitute(from, to);
        self.goals.substitute(from, to);
        self.record(TraceStep {
            rule,
            added_facts: vec![],
            added_goals: vec![],
            substitution: Some((from, to)),
        });
        self.reset_rule_state();
    }

    /// Rebuilds all worklists and registries from the current sets (after
    /// a substitution), as if every constraint had just been inserted.
    fn reset_rule_state(&mut self) {
        self.rules = RuleState::default();
        for index in 0..self.facts.len() {
            let constraint = self.facts.nth(index);
            self.notice_fact(constraint);
        }
        for index in 0..self.goals.len() {
            let constraint = self.goals.nth(index);
            self.notice_goal(constraint);
        }
    }

    fn insert_fact(&mut self, constraint: Constraint) -> bool {
        if self.facts.insert(constraint) {
            self.notice_fact(constraint);
            true
        } else {
            false
        }
    }

    fn insert_goal(&mut self, constraint: Constraint) -> bool {
        if self.goals.insert(constraint) {
            self.notice_goal(constraint);
            true
        } else {
            false
        }
    }

    // ----- insertion-time classification and triggers ---------------------

    /// Routes a newly inserted fact to every rule it can feed.
    fn notice_fact(&mut self, constraint: Constraint) {
        match constraint {
            Constraint::Member(s, concept) => {
                match self.arena.concept(concept) {
                    Concept::And(l, r) => self.rules.d1.push_back((s, l, r)),
                    Concept::Singleton(a) => {
                        self.rules.singletons.push((s, a));
                        if s.is_var() {
                            self.rules.d3.push_back((s, a));
                        }
                    }
                    Concept::Exists(p) if !self.arena.is_empty_path(p) => {
                        self.rules.d4.push_back((s, p));
                    }
                    Concept::Agree(p, q)
                        if self.arena.is_empty_path(q) && !self.arena.is_empty_path(p) =>
                    {
                        self.rules.d5.push_back((s, p));
                    }
                    Concept::Prim(class) => self.notice_primitive_membership(s, class),
                    _ => {}
                }
                // C1: the membership may complete a conjunction goal.
                if let Some(waiting) = self.rules.c1_by_member.get(&(s, concept)) {
                    for &idx in waiting {
                        if !self.rules.c1_goals[idx as usize].done {
                            self.rules.c1_pending.insert(idx);
                        }
                    }
                }
                // C5/C6: the membership may type an edge target `s`; every
                // goal whose first step reaches `s` must re-examine that
                // filler pair.
                for &(attr, src) in self.facts.fillers_to(s) {
                    if let Some(goals) = self.rules.c56_by_src_attr.get(&(src, attr)) {
                        let ford = self
                            .facts
                            .filler_position(src, attr, s)
                            .expect("reverse index is consistent");
                        for &g_idx in goals {
                            if self.rules.c56_goals[g_idx as usize].restriction.concept == concept {
                                self.rules.c56_pending.insert((g_idx, ford));
                            }
                        }
                    }
                }
                // S5: a new membership can make a registered filler demand
                // schema-justified.
                if let Some(demands) = self.rules.s5_by_ind.get(&s) {
                    for &idx in demands {
                        if !self.rules.s5_all[idx as usize].done {
                            self.rules.s5_pending.insert(idx);
                        }
                    }
                }
            }
            Constraint::Filler(s, attr, t) => {
                // D2: close under inversion.
                self.rules.d2.push_back((t, attr.inverse(), s));
                let ford = self
                    .facts
                    .filler_position(s, attr, t)
                    .expect("just inserted");
                if attr.is_primitive() {
                    self.rules.s3.push_back((s, attr, t));
                    self.rules.s4_dirty = true;
                    // S2: join the new filler with every registered
                    // membership of `s` whose class restricts this
                    // attribute.
                    if let Some(p) = attr.as_primitive() {
                        if let Some(members) = self.rules.s2_members_by_ind.get(&s) {
                            for &m_idx in members {
                                let (_, a1) = self.rules.s2_members[m_idx as usize];
                                for (r_idx, &(rp, _)) in
                                    self.schema.value_restrictions_of(a1).iter().enumerate()
                                {
                                    if rp == p {
                                        self.rules.s2_pending.insert((m_idx, r_idx as u32, ford));
                                    }
                                }
                            }
                        }
                    }
                }
                // G2/G3 and C5/C6: the filler pairs with every registered
                // goal whose first step leaves `s` through `attr`.
                if let Some(goals) = self.rules.g23_by_src_attr.get(&(s, attr)) {
                    for &g_idx in goals {
                        self.rules.g23_pending.insert((g_idx, ford));
                    }
                }
                if let Some(goals) = self.rules.c56_by_src_attr.get(&(s, attr)) {
                    for &g_idx in goals {
                        self.rules.c56_pending.insert((g_idx, ford));
                    }
                }
            }
            Constraint::PathRel(s, path, t) => {
                match self.arena.path(path) {
                    Path::Step(restriction, rest) if !self.arena.is_empty_path(rest) => {
                        self.rules.d6.push_back((s, restriction, rest, t));
                    }
                    Path::Step(restriction, _) => {
                        self.rules.d7.push_back((s, restriction, t));
                    }
                    Path::Empty => {}
                }
                // C3/C4: the path fact may witness a registered demand.
                if let Some(waiting) = self.rules.c3_by_path.get(&(s, path)) {
                    for &idx in waiting {
                        if !self.rules.c3_goals[idx as usize].done {
                            self.rules.c3_pending.insert(idx);
                        }
                    }
                }
                if t == s {
                    if let Some(waiting) = self.rules.c4_by_path.get(&(s, path)) {
                        for &idx in waiting {
                            if !self.rules.c4_goals[idx as usize].done {
                                self.rules.c4_pending.insert(idx);
                            }
                        }
                    }
                }
                // C5: the path may extend a goal path one step back — every
                // goal whose first step reaches `s` and whose suffix is
                // this path must re-examine that filler pair.
                for &(attr, src) in self.facts.fillers_to(s) {
                    if let Some(goals) = self.rules.c56_by_src_attr.get(&(src, attr)) {
                        let ford = self
                            .facts
                            .filler_position(src, attr, s)
                            .expect("reverse index is consistent");
                        for &g_idx in goals {
                            if self.rules.c56_goals[g_idx as usize].rest == path {
                                self.rules.c56_pending.insert((g_idx, ford));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Registers a primitive membership fact with the schema rules.
    fn notice_primitive_membership(&mut self, s: Ind, class: ClassId) {
        self.rules.s1.push_back((s, class));
        // S2 registry: pair with every existing filler of a restricted
        // attribute.
        let m_idx = self.rules.s2_members.len() as u32;
        self.rules.s2_members.push((s, class));
        self.rules
            .s2_members_by_ind
            .entry(s)
            .or_default()
            .push(m_idx);
        for (r_idx, &(p, _)) in self.schema.value_restrictions_of(class).iter().enumerate() {
            let count = self.facts.fillers_via_slice(s, Attr::primitive(p)).len();
            for ford in 0..count {
                self.rules
                    .s2_pending
                    .insert((m_idx, r_idx as u32, ford as u32));
            }
        }
        // S4 registry (also drives functional clash detection).
        if self.schema.functional_attrs_of(class).next().is_some() {
            self.rules.s4_members.push((s, class));
            self.rules.s4_dirty = true;
        }
    }

    /// Routes a newly inserted goal to every rule it can feed.
    fn notice_goal(&mut self, constraint: Constraint) {
        let Constraint::Member(s, concept) = constraint else {
            return;
        };
        match self.arena.concept(concept) {
            Concept::And(l, r) => {
                self.rules.g1.push_back((s, l, r));
                let idx = self.rules.c1_goals.len() as u32;
                self.rules.c1_goals.push(AndGoal {
                    s,
                    whole: concept,
                    left: l,
                    right: r,
                    done: false,
                });
                self.rules.c1_by_member.entry((s, l)).or_default().push(idx);
                self.rules.c1_by_member.entry((s, r)).or_default().push(idx);
                self.rules.c1_pending.insert(idx);
            }
            Concept::Top => self.rules.c2.push_back((s, concept)),
            Concept::Exists(path) => {
                let idx = self.rules.c3_goals.len() as u32;
                self.rules.c3_goals.push(PathDemand {
                    s,
                    concept,
                    path,
                    done: false,
                });
                self.rules
                    .c3_by_path
                    .entry((s, path))
                    .or_default()
                    .push(idx);
                self.rules.c3_pending.insert(idx);
                self.notice_path_goal(s, path);
            }
            Concept::Agree(path, q) if self.arena.is_empty_path(q) => {
                let idx = self.rules.c4_goals.len() as u32;
                self.rules.c4_goals.push(PathDemand {
                    s,
                    concept,
                    path,
                    done: false,
                });
                self.rules
                    .c4_by_path
                    .entry((s, path))
                    .or_default()
                    .push(idx);
                self.rules.c4_pending.insert(idx);
                self.notice_path_goal(s, path);
            }
            _ => {}
        }
    }

    /// Registers the first step of a path-shaped goal with S5, G2/G3 and
    /// C5/C6.
    fn notice_path_goal(&mut self, s: Ind, path: PathId) {
        let Path::Step(restriction, rest) = self.arena.path(path) else {
            return;
        };
        let filler_count = self.facts.fillers_via_slice(s, restriction.attr).len() as u32;
        // G2/G3.
        let g_idx = self.rules.g23_goals.len() as u32;
        self.rules.g23_goals.push(PathGoal {
            s,
            full_path: path,
            restriction,
            rest,
        });
        self.rules
            .g23_by_src_attr
            .entry((s, restriction.attr))
            .or_default()
            .push(g_idx);
        for ford in 0..filler_count {
            self.rules.g23_pending.insert((g_idx, ford));
        }
        // C5/C6.
        let c_idx = self.rules.c56_goals.len() as u32;
        self.rules.c56_goals.push(PathGoal {
            s,
            full_path: path,
            restriction,
            rest,
        });
        self.rules
            .c56_by_src_attr
            .entry((s, restriction.attr))
            .or_default()
            .push(c_idx);
        for ford in 0..filler_count {
            self.rules.c56_pending.insert((c_idx, ford));
        }
        // S5.
        if restriction.attr.is_primitive() {
            let idx = self.rules.s5_all.len() as u32;
            self.rules.s5_all.push(FillerDemand {
                s,
                attr: restriction.attr,
                done: false,
            });
            self.rules.s5_by_ind.entry(s).or_default().push(idx);
            self.rules.s5_pending.insert(idx);
        }
    }

    fn apply_group(&mut self, group: Group) -> bool {
        match group {
            Group::Decomposition => {
                self.rule_d1()
                    | self.rule_d2()
                    | self.rule_d3()
                    | self.rule_d4()
                    | self.rule_d5()
                    | self.rule_d6()
                    | self.rule_d7()
            }
            Group::Schema => {
                self.rule_s1() | self.rule_s2() | self.rule_s3() | self.rule_s4() | self.rule_s5()
            }
            Group::Goal => self.rule_g1() | self.rule_g23(),
            Group::Composition => {
                self.rule_c1() | self.rule_c2() | self.rule_c3() | self.rule_c4() | self.rule_c56()
            }
        }
    }

    // ----- decomposition rules (Figure 7) ---------------------------------

    /// D1: `s : C ⊓ D ∈ F` yields `s : C` and `s : D`.
    fn rule_d1(&mut self) -> bool {
        let snapshot = self.rules.d1.len();
        let mut changed = false;
        for _ in 0..snapshot {
            let (s, l, r) = self.rules.d1.pop_front().expect("bounded by snapshot");
            self.constraints_examined += 1;
            changed |= self.add_facts(
                RuleId::D1,
                [Constraint::Member(s, l), Constraint::Member(s, r)],
            );
        }
        changed
    }

    /// D2: `t R⁻¹ s ∈ F` yields `s R t` (closure of fillers under
    /// inversion).
    fn rule_d2(&mut self) -> bool {
        let snapshot = self.rules.d2.len();
        let mut changed = false;
        for _ in 0..snapshot {
            let (s, r, t) = self.rules.d2.pop_front().expect("bounded by snapshot");
            self.constraints_examined += 1;
            changed |= self.add_facts(RuleId::D2, [Constraint::Filler(s, r, t)]);
        }
        changed
    }

    /// D3: `y : {a} ∈ F` for a variable `y` substitutes `y` by `a`.
    fn rule_d3(&mut self) -> bool {
        if let Some((from, a)) = self.rules.d3.pop_front() {
            self.constraints_examined += 1;
            self.substitute(RuleId::D3, from, Ind::Const(a));
            true
        } else {
            false
        }
    }

    /// D4: `s : ∃p ∈ F` with no witness yields `s p y` for a fresh `y`.
    fn rule_d4(&mut self) -> bool {
        let snapshot = self.rules.d4.len();
        let mut changed = false;
        for _ in 0..snapshot {
            let (s, p) = self.rules.d4.pop_front().expect("bounded by snapshot");
            self.constraints_examined += 1;
            if self.facts.has_any_path_target(s, p) {
                continue;
            }
            let y = self.fresh_var();
            changed |= self.add_facts(RuleId::D4, [Constraint::PathRel(s, p, y)]);
        }
        changed
    }

    /// D5: `s : ∃p ≐ ε ∈ F` yields the cyclic witness `s p s`.
    fn rule_d5(&mut self) -> bool {
        let snapshot = self.rules.d5.len();
        let mut changed = false;
        for _ in 0..snapshot {
            let (s, p) = self.rules.d5.pop_front().expect("bounded by snapshot");
            self.constraints_examined += 1;
            changed |= self.add_facts(RuleId::D5, [Constraint::PathRel(s, p, s)]);
        }
        changed
    }

    /// D6: unfold the first step of a path fact `s (R:C)p t` (`p ≠ ε`) with
    /// a fresh middle individual, unless a suitable one already exists.
    fn rule_d6(&mut self) -> bool {
        let snapshot = self.rules.d6.len();
        let mut changed = false;
        for _ in 0..snapshot {
            let (s, restriction, rest, t) = self.rules.d6.pop_front().expect("bounded by snapshot");
            self.constraints_examined += 1;
            let exists_witness = self.facts.fillers_via(s, restriction.attr).any(|t_prime| {
                self.facts.has_member(t_prime, restriction.concept)
                    && self.facts.has_path(t_prime, rest, t)
            });
            if exists_witness {
                continue;
            }
            let y = self.fresh_var();
            changed |= self.add_facts(
                RuleId::D6,
                [
                    Constraint::Filler(s, restriction.attr, y),
                    Constraint::Member(y, restriction.concept),
                    Constraint::PathRel(y, rest, t),
                ],
            );
        }
        changed
    }

    /// D7: unfold a one-step path fact `s (R:C) t` into `s R t` and `t : C`.
    fn rule_d7(&mut self) -> bool {
        let snapshot = self.rules.d7.len();
        let mut changed = false;
        for _ in 0..snapshot {
            let (s, restriction, t) = self.rules.d7.pop_front().expect("bounded by snapshot");
            self.constraints_examined += 1;
            changed |= self.add_facts(
                RuleId::D7,
                [
                    Constraint::Filler(s, restriction.attr, t),
                    Constraint::Member(t, restriction.concept),
                ],
            );
        }
        changed
    }

    // ----- schema rules (Figure 8) -----------------------------------------

    /// S1: `s : A₁ ∈ F`, `A₁ ⊑ A₂ ∈ Σ` yields `s : A₂`.
    fn rule_s1(&mut self) -> bool {
        let snapshot = self.rules.s1.len();
        let mut changed = false;
        let schema = self.schema;
        for _ in 0..snapshot {
            let (s, a1) = self.rules.s1.pop_front().expect("bounded by snapshot");
            self.constraints_examined += 1;
            for &a2 in schema.supers_of(a1) {
                let concept = self.arena.prim(a2);
                changed |= self.add_facts(RuleId::S1, [Constraint::Member(s, concept)]);
            }
        }
        changed
    }

    /// S2: `s : A₁`, `s P t ∈ F`, `A₁ ⊑ ∀P.A₂ ∈ Σ` yields `t : A₂`.
    fn rule_s2(&mut self) -> bool {
        let bound = self.rules.s2_members.len() as u32;
        let mut changed = false;
        while let Some(&key) = self.rules.s2_pending.iter().next() {
            if key.0 >= bound {
                break;
            }
            self.rules.s2_pending.remove(&key);
            let (m_idx, r_idx, ford) = key;
            self.constraints_examined += 1;
            let (s, a1) = self.rules.s2_members[m_idx as usize];
            let (p, a2) = self.schema.value_restrictions_of(a1)[r_idx as usize];
            let t = self.facts.fillers_via_slice(s, Attr::primitive(p))[ford as usize];
            let concept = self.arena.prim(a2);
            changed |= self.add_facts(RuleId::S2, [Constraint::Member(t, concept)]);
        }
        changed
    }

    /// S3: `s P t ∈ F`, `P ⊑ A₁ × A₂ ∈ Σ` yields `s : A₁` and `t : A₂`.
    fn rule_s3(&mut self) -> bool {
        let snapshot = self.rules.s3.len();
        let mut changed = false;
        for _ in 0..snapshot {
            let (s, r, t) = self.rules.s3.pop_front().expect("bounded by snapshot");
            self.constraints_examined += 1;
            let Some(p) = r.as_primitive() else { continue };
            let Some((dom, rng)) = self.schema.attr_typing(p) else {
                continue;
            };
            let dom_c = self.arena.prim(dom);
            let rng_c = self.arena.prim(rng);
            changed |= self.add_facts(
                RuleId::S3,
                [Constraint::Member(s, dom_c), Constraint::Member(t, rng_c)],
            );
        }
        changed
    }

    /// S4: `s : A`, `s P y`, `s P t ∈ F` with `A ⊑ (≤1 P) ∈ Σ` and `y` a
    /// variable identifies `y` with `t`.
    ///
    /// The registry holds only memberships of classes with functional
    /// attributes, and the dirty flag skips the scan when no membership or
    /// primitive filler was added since the last call.
    fn rule_s4(&mut self) -> bool {
        if !self.rules.s4_dirty {
            return false;
        }
        for idx in 0..self.rules.s4_members.len() {
            let (s, class) = self.rules.s4_members[idx];
            let schema = self.schema;
            for p in schema.functional_attrs_of(class) {
                self.constraints_examined += 1;
                let attr = Attr::primitive(p);
                let fillers = self.facts.fillers_via_slice(s, attr);
                if fillers.len() < 2 {
                    continue;
                }
                // Pick a variable to eliminate and any other filler to keep;
                // prefer keeping constants so the substitution is stable.
                let keep = fillers
                    .iter()
                    .copied()
                    .find(|f| f.is_const())
                    .unwrap_or(fillers[0]);
                let eliminate = fillers.iter().copied().find(|f| f.is_var() && *f != keep);
                if let Some(y) = eliminate {
                    self.substitute(RuleId::S4, y, keep);
                    return true;
                }
            }
        }
        self.rules.s4_dirty = false;
        false
    }

    /// S5: a goal `s : ∃(P:C)p` or `s : ∃(P:C)p ≐ ε` demands a `P`-filler
    /// of `s`; if none exists but some fact `s : A` with `A ⊑ ∃P ∈ Σ`
    /// guarantees one, create it.
    fn rule_s5(&mut self) -> bool {
        let mut changed = false;
        while let Some(&idx) = self.rules.s5_pending.iter().next() {
            self.rules.s5_pending.remove(&idx);
            self.constraints_examined += 1;
            let FillerDemand { s, attr, done } = self.rules.s5_all[idx as usize];
            if done {
                continue;
            }
            if self.facts.has_any_filler_via(s, attr) {
                self.rules.s5_all[idx as usize].done = true;
                continue;
            }
            let p = attr.as_primitive().expect("s5 demands are primitive");
            let has_necessary = self.facts.concepts_of(s).any(|c| {
                matches!(self.arena.concept(c), Concept::Prim(class) if self.schema.is_necessary(class, p))
            });
            if !has_necessary {
                // Stays registered: a later membership re-triggers it.
                continue;
            }
            let y = self.fresh_var();
            changed |= self.add_facts(RuleId::S5, [Constraint::Filler(s, attr, y)]);
            self.rules.s5_all[idx as usize].done = true;
        }
        changed
    }

    // ----- goal rules (Figure 9) -------------------------------------------

    /// G1: `s : C ⊓ D ∈ G` yields the goals `s : C` and `s : D`.
    fn rule_g1(&mut self) -> bool {
        let snapshot = self.rules.g1.len();
        let mut changed = false;
        for _ in 0..snapshot {
            let (s, l, r) = self.rules.g1.pop_front().expect("bounded by snapshot");
            self.constraints_examined += 1;
            changed |= self.add_goals(
                RuleId::G1,
                [Constraint::Member(s, l), Constraint::Member(s, r)],
            );
        }
        changed
    }

    /// G2 and G3: a goal path `s : ∃(R:C)p` (or its `≐ ε` form) and a fact
    /// `s R t` yield the goals `t : C` (G2) and, if `p ≠ ε`, also `t : ∃p`
    /// (G3).
    fn rule_g23(&mut self) -> bool {
        let bound = self.rules.g23_goals.len() as u32;
        let mut changed = false;
        while let Some(&key) = self.rules.g23_pending.iter().next() {
            if key.0 >= bound {
                break;
            }
            self.rules.g23_pending.remove(&key);
            let (g_idx, ford) = key;
            self.constraints_examined += 1;
            let PathGoal {
                s,
                restriction,
                rest,
                ..
            } = self.rules.g23_goals[g_idx as usize];
            let t = self.facts.fillers_via_slice(s, restriction.attr)[ford as usize];
            if self.arena.is_empty_path(rest) {
                changed |= self.add_goals(RuleId::G2, [Constraint::Member(t, restriction.concept)]);
            } else {
                let exists_rest = self.arena.exists(rest);
                changed |= self.add_goals(
                    RuleId::G3,
                    [
                        Constraint::Member(t, restriction.concept),
                        Constraint::Member(t, exists_rest),
                    ],
                );
            }
        }
        changed
    }

    // ----- composition rules (Figure 10) -------------------------------------

    /// C1: facts `s : C` and `s : D` compose to `s : C ⊓ D` when the goal
    /// asks for it.
    fn rule_c1(&mut self) -> bool {
        let bound = self.rules.c1_goals.len() as u32;
        let mut changed = false;
        let mut cursor: Option<u32> = None;
        loop {
            let lower = match cursor {
                None => Unbounded,
                Some(c) => Excluded(c),
            };
            let Some(&idx) = self.rules.c1_pending.range((lower, Excluded(bound))).next() else {
                break;
            };
            self.rules.c1_pending.remove(&idx);
            cursor = Some(idx);
            self.constraints_examined += 1;
            let AndGoal {
                s,
                whole,
                left,
                right,
                done,
            } = self.rules.c1_goals[idx as usize];
            if done {
                continue;
            }
            if self.facts.has_member(s, left) && self.facts.has_member(s, right) {
                changed |= self.add_facts(RuleId::C1, [Constraint::Member(s, whole)]);
                self.rules.c1_goals[idx as usize].done = true;
            }
        }
        changed
    }

    /// C2: a goal `s : ⊤` is trivially satisfied.
    fn rule_c2(&mut self) -> bool {
        let snapshot = self.rules.c2.len();
        let mut changed = false;
        for _ in 0..snapshot {
            let (s, concept) = self.rules.c2.pop_front().expect("bounded by snapshot");
            self.constraints_examined += 1;
            changed |= self.add_facts(RuleId::C2, [Constraint::Member(s, concept)]);
        }
        changed
    }

    /// C3: a goal `s : ∃p` composes from a witnessing path fact (or `p = ε`).
    fn rule_c3(&mut self) -> bool {
        let bound = self.rules.c3_goals.len() as u32;
        let mut changed = false;
        while let Some(&idx) = self.rules.c3_pending.range(..bound).next() {
            self.rules.c3_pending.remove(&idx);
            self.constraints_examined += 1;
            let PathDemand {
                s,
                concept,
                path,
                done,
            } = self.rules.c3_goals[idx as usize];
            if done {
                continue;
            }
            if self.arena.is_empty_path(path) || self.facts.has_any_path_target(s, path) {
                changed |= self.add_facts(RuleId::C3, [Constraint::Member(s, concept)]);
                self.rules.c3_goals[idx as usize].done = true;
            }
        }
        changed
    }

    /// C4: a goal `s : ∃p ≐ ε` composes from a cyclic path fact `s p s`
    /// (or `p = ε`).
    fn rule_c4(&mut self) -> bool {
        let bound = self.rules.c4_goals.len() as u32;
        let mut changed = false;
        while let Some(&idx) = self.rules.c4_pending.range(..bound).next() {
            self.rules.c4_pending.remove(&idx);
            self.constraints_examined += 1;
            let PathDemand {
                s,
                concept,
                path,
                done,
            } = self.rules.c4_goals[idx as usize];
            if done {
                continue;
            }
            if self.arena.is_empty_path(path) || self.facts.has_path(s, path, s) {
                changed |= self.add_facts(RuleId::C4, [Constraint::Member(s, concept)]);
                self.rules.c4_goals[idx as usize].done = true;
            }
        }
        changed
    }

    /// C5 and C6: path facts are composed bottom-up along goal paths.
    ///
    /// For a goal path `(R:C)p` starting at `s`: if `p = ε` (C6), every
    /// filler `s R t` with `t : C` yields the path fact `s (R:C) t`; if
    /// `p ≠ ε` (C5), every filler `s R t'` with `t' : C` and a suffix fact
    /// `t' p t` yields `s (R:C)p t`.
    fn rule_c56(&mut self) -> bool {
        let bound = (self.rules.c56_goals.len() as u32, 0u32);
        let mut changed = false;
        let mut cursor: Option<(u32, u32)> = None;
        loop {
            let lower = match cursor {
                None => Unbounded,
                Some(c) => Excluded(c),
            };
            let Some(&key) = self
                .rules
                .c56_pending
                .range((lower, Excluded(bound)))
                .next()
            else {
                break;
            };
            self.rules.c56_pending.remove(&key);
            cursor = Some(key);
            let (g_idx, ford) = key;
            self.constraints_examined += 1;
            let PathGoal {
                s,
                full_path,
                restriction,
                rest,
            } = self.rules.c56_goals[g_idx as usize];
            let t_prime = self.facts.fillers_via_slice(s, restriction.attr)[ford as usize];
            if !self.facts.has_member(t_prime, restriction.concept) {
                // Dormant until a membership trigger re-queues the pair.
                continue;
            }
            if self.arena.is_empty_path(rest) {
                changed |= self.add_facts(RuleId::C6, [Constraint::PathRel(s, full_path, t_prime)]);
            } else {
                let target_count = self.facts.path_targets_slice(t_prime, rest).len();
                for target_index in 0..target_count {
                    let t = self.facts.path_targets_slice(t_prime, rest)[target_index];
                    changed |= self.add_facts(RuleId::C5, [Constraint::PathRel(s, full_path, t)]);
                }
            }
        }
        changed
    }
}

enum Group {
    Decomposition,
    Schema,
    Goal,
    Composition,
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_concepts::symbol::Vocabulary;

    /// `Patient ⊑ Person` makes `Patient ⊑_Σ Person` derivable via S1.
    #[test]
    fn simple_isa_subsumption_derives_view_fact() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let person = voc.class("Person");
        let mut schema = Schema::new();
        schema.add_isa(patient, person);
        let mut arena = TermArena::new();
        let c = arena.prim(patient);
        let d = arena.prim(person);
        let mut completion = Completion::new(&mut arena, &schema, c, d, true);
        completion.run();
        assert!(completion.view_fact_derived());
        assert!(completion.find_clash().is_none());
        let trace = completion.trace().expect("tracing enabled");
        assert_eq!(trace.count_rule(RuleId::S1), 1);
    }

    /// Without the axiom the subsumption does not hold and no view fact is
    /// derived.
    #[test]
    fn no_axiom_no_subsumption() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let person = voc.class("Person");
        let schema = Schema::new();
        let mut arena = TermArena::new();
        let c = arena.prim(patient);
        let d = arena.prim(person);
        let mut completion = Completion::new(&mut arena, &schema, c, d, false);
        completion.run();
        assert!(!completion.view_fact_derived());
        assert!(completion.find_clash().is_none());
    }

    /// Every concept subsumes itself: the decomposition witnesses feed the
    /// composition rules back up to the full view concept.
    #[test]
    fn reflexivity_through_decomposition_and_composition() {
        let mut voc = Vocabulary::new();
        let doctor = voc.class("Doctor");
        let disease = voc.class("Disease");
        let consults = voc.attribute("consults");
        let skilled = voc.attribute("skilled_in");
        let schema = Schema::new();
        let mut arena = TermArena::new();
        let doctor_c = arena.prim(doctor);
        let disease_c = arena.prim(disease);
        let path = arena.path_of(&[
            (Attr::primitive(consults), doctor_c),
            (Attr::primitive(skilled), disease_c),
        ]);
        let agree = arena.agree_epsilon(path);
        let exists = arena.exists(path);
        let concept = arena.and(exists, agree);
        let mut completion = Completion::new(&mut arena, &schema, concept, concept, false);
        completion.run();
        assert!(completion.view_fact_derived());
    }

    /// Rule S5 creates a filler only when a goal demands it; the fact
    /// `x : ∃name` alone never materializes a name filler.
    #[test]
    fn s5_only_fires_for_goals() {
        let mut voc = Vocabulary::new();
        let person = voc.class("Person");
        let string = voc.class("String");
        let name = voc.attribute("name");
        let mut schema = Schema::new();
        schema.add_necessary(person, name);
        schema.add_value_restriction(person, name, string);

        // Query: Person. View: ∃(name: String). The filler must be invented
        // by S5 and typed by S2.
        let mut arena = TermArena::new();
        let person_c = arena.prim(person);
        let string_c = arena.prim(string);
        let view_path = arena.path1(Attr::primitive(name), string_c);
        let view = arena.exists(view_path);
        let mut completion = Completion::new(&mut arena, &schema, person_c, view, true);
        completion.run();
        assert!(completion.view_fact_derived());
        let trace = completion.trace().expect("tracing enabled");
        assert_eq!(trace.count_rule(RuleId::S5), 1);
        assert_eq!(trace.count_rule(RuleId::S2), 1);

        // Reversed: the view Person is not implied by ∃(name: String).
        let mut arena2 = TermArena::new();
        let person_c2 = arena2.prim(person);
        let string_c2 = arena2.prim(string);
        let path2 = arena2.path1(Attr::primitive(name), string_c2);
        let query2 = arena2.exists(path2);
        let mut completion2 = Completion::new(&mut arena2, &schema, query2, person_c2, false);
        completion2.run();
        assert!(!completion2.view_fact_derived());
    }

    /// Functional attributes identify fillers (rule S4): if a person has at
    /// most one name, a query naming it twice still matches a view asking
    /// for a single restricted name.
    #[test]
    fn s4_identifies_functional_fillers() {
        let mut voc = Vocabulary::new();
        let person = voc.class("Person");
        let string = voc.class("String");
        let nice = voc.class("Nice");
        let name = voc.attribute("name");
        let mut schema = Schema::new();
        schema.add_functional(person, name);

        let mut arena = TermArena::new();
        let person_c = arena.prim(person);
        let string_c = arena.prim(string);
        let nice_c = arena.prim(nice);
        // Query: Person ⊓ ∃(name: String) ⊓ ∃(name: Nice).
        let p1 = arena.path1(Attr::primitive(name), string_c);
        let p2 = arena.path1(Attr::primitive(name), nice_c);
        let e1 = arena.exists(p1);
        let e2 = arena.exists(p2);
        let query = arena.and_all([person_c, e1, e2]);
        // View: ∃(name: String ⊓ Nice).
        let both = arena.and(string_c, nice_c);
        let vp = arena.path1(Attr::primitive(name), both);
        let view = arena.exists(vp);

        let mut completion = Completion::new(&mut arena, &schema, query, view, true);
        completion.run();
        assert!(completion.view_fact_derived());
        assert!(completion.trace().expect("trace").count_rule(RuleId::S4) >= 1);

        // Without the functional axiom the two name fillers stay distinct
        // and the view is not derived.
        let empty = Schema::new();
        let mut arena2 = TermArena::new();
        let person_c = arena2.prim(person);
        let string_c = arena2.prim(string);
        let nice_c = arena2.prim(nice);
        let p1 = arena2.path1(Attr::primitive(name), string_c);
        let p2 = arena2.path1(Attr::primitive(name), nice_c);
        let e1 = arena2.exists(p1);
        let e2 = arena2.exists(p2);
        let query = arena2.and_all([person_c, e1, e2]);
        let both = arena2.and(string_c, nice_c);
        let vp = arena2.path1(Attr::primitive(name), both);
        let view = arena2.exists(vp);
        let mut completion2 = Completion::new(&mut arena2, &empty, query, view, false);
        completion2.run();
        assert!(!completion2.view_fact_derived());
    }

    /// D3 substitutes variables bound to singletons; a clash appears when a
    /// constant is forced into a different singleton.
    #[test]
    fn singleton_substitution_and_clash() {
        let mut voc = Vocabulary::new();
        let drug = voc.class("Drug");
        let takes = voc.attribute("takes");
        let aspirin = voc.constant("Aspirin");
        let ibuprofen = voc.constant("Ibuprofen");
        let schema = Schema::new();

        // Query: ∃(takes: {Aspirin} ⊓ {Ibuprofen}) — unsatisfiable.
        let mut arena = TermArena::new();
        let a = arena.singleton(aspirin);
        let b = arena.singleton(ibuprofen);
        let both = arena.and(a, b);
        let path = arena.path1(Attr::primitive(takes), both);
        let query = arena.exists(path);
        let drug_c = arena.prim(drug);
        let mut completion = Completion::new(&mut arena, &schema, query, drug_c, true);
        completion.run();
        // The unsatisfiable query is subsumed by anything: a clash appears.
        assert!(matches!(
            completion.find_clash(),
            Some(Clash::ConstantSingleton(..))
        ));
        assert!(completion.trace().expect("trace").count_rule(RuleId::D3) >= 1);
    }

    /// A functional attribute with two distinct constant fillers clashes.
    #[test]
    fn functional_fanout_clash() {
        let mut voc = Vocabulary::new();
        let person = voc.class("Person");
        let name = voc.attribute("name");
        let alice = voc.constant("alice");
        let bob = voc.constant("bob");
        let mut schema = Schema::new();
        schema.add_functional(person, name);

        let mut arena = TermArena::new();
        let person_c = arena.prim(person);
        let a = arena.singleton(alice);
        let b = arena.singleton(bob);
        let p1 = arena.path1(Attr::primitive(name), a);
        let p2 = arena.path1(Attr::primitive(name), b);
        let e1 = arena.exists(p1);
        let e2 = arena.exists(p2);
        let query = arena.and_all([person_c, e1, e2]);
        let top = arena.top();
        let mut completion = Completion::new(&mut arena, &schema, query, top, false);
        completion.run();
        assert!(matches!(
            completion.find_clash(),
            Some(Clash::FunctionalFanOut(..))
        ));
    }

    /// The inverse-closure rule D2 lets a view reach backwards over an
    /// attribute the query traversed forwards.
    #[test]
    fn inverse_closure_connects_both_directions() {
        let mut voc = Vocabulary::new();
        let doctor = voc.class("Doctor");
        let consults = voc.attribute("consults");
        let schema = Schema::new();
        let mut arena = TermArena::new();
        let doctor_c = arena.prim(doctor);
        let top = arena.top();
        // Query: ∃(consults: Doctor ⊓ ∃(consults⁻¹: ⊤)) — trivially the
        // inverse edge exists.
        let back = arena.path1(Attr::inverse_of(consults), top);
        let back_exists = arena.exists(back);
        let doctor_and_back = arena.and(doctor_c, back_exists);
        let qpath = arena.path1(Attr::primitive(consults), doctor_and_back);
        let query = arena.exists(qpath);
        // View: ∃(consults: Doctor).
        let vpath = arena.path1(Attr::primitive(consults), doctor_c);
        let view = arena.exists(vpath);
        let mut completion = Completion::new(&mut arena, &schema, query, view, false);
        completion.run();
        assert!(completion.view_fact_derived());
    }

    /// The number of individuals stays within the `M · N` bound of
    /// Proposition 4.8.
    #[test]
    fn individual_count_respects_mn_bound() {
        let mut voc = Vocabulary::new();
        let a = voc.class("A");
        let r = voc.attribute("r");
        let mut schema = Schema::new();
        schema.add_necessary(a, r);
        schema.add_value_restriction(a, r, a);

        let mut arena = TermArena::new();
        let a_c = arena.prim(a);
        let top = arena.top();
        // View: ∃(r:⊤)(r:⊤)(r:⊤) — demands a chain of three fillers.
        let view_path = arena.path_of(&[
            (Attr::primitive(r), top),
            (Attr::primitive(r), top),
            (Attr::primitive(r), top),
        ]);
        let view = arena.exists(view_path);
        let m = arena.concept_size(a_c);
        let n = arena.concept_size(view);
        let mut completion = Completion::new(&mut arena, &schema, a_c, view, false);
        let stats = completion.run();
        assert!(completion.view_fact_derived());
        assert!(
            stats.individuals <= m * n + 1,
            "individuals {} must respect the M*N bound ({} * {})",
            stats.individuals,
            m,
            n
        );
    }

    /// Completions are deterministic: running twice yields identical stats
    /// and rule sequences.
    #[test]
    fn completion_is_deterministic() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let person = voc.class("Person");
        let disease = voc.class("Disease");
        let suffers = voc.attribute("suffers");
        let mut schema = Schema::new();
        schema.add_isa(patient, person);
        schema.add_necessary(patient, suffers);
        schema.add_value_restriction(patient, suffers, disease);

        let build = |arena: &mut TermArena| {
            let patient_c = arena.prim(patient);
            let disease_c = arena.prim(disease);
            let path = arena.path1(Attr::primitive(suffers), disease_c);
            let view = arena.exists(path);
            (patient_c, view)
        };
        let mut arena1 = TermArena::new();
        let (c1, d1) = build(&mut arena1);
        let mut run1 = Completion::new(&mut arena1, &schema, c1, d1, true);
        let stats1 = run1.run();
        let seq1 = run1.trace().expect("trace").rule_sequence();

        let mut arena2 = TermArena::new();
        let (c2, d2) = build(&mut arena2);
        let mut run2 = Completion::new(&mut arena2, &schema, c2, d2, true);
        let stats2 = run2.run();
        let seq2 = run2.trace().expect("trace").rule_sequence();

        assert_eq!(stats1, stats2);
        assert_eq!(seq1, seq2);
    }

    /// The delta engine's work counter is genuinely incremental: the
    /// candidates examined stay close to the number of constraints
    /// derived, instead of growing with rounds × set size.
    #[test]
    fn examined_candidates_track_the_delta() {
        let mut voc = Vocabulary::new();
        let a = voc.class("A");
        let r = voc.attribute("r");
        let mut schema = Schema::new();
        schema.add_necessary(a, r);
        schema.add_value_restriction(a, r, a);
        let mut arena = TermArena::new();
        let a_c = arena.prim(a);
        let view_path = arena.path_of(&vec![(Attr::primitive(r), a_c); 24]);
        let view = arena.exists(view_path);
        let mut completion = Completion::new(&mut arena, &schema, a_c, view, false);
        let stats = completion.run();
        let derived = stats.facts + stats.goals;
        assert!(
            stats.constraints_examined < 20 * derived,
            "examined {} should be within a constant factor of derived {}",
            stats.constraints_examined,
            derived
        );
    }
}
