//! Process-wide telemetry counters of the calculus layer.
//!
//! Every [`SubsumptionCache`](crate::SubsumptionCache) — private reader
//! caches and the writer's alike — bumps the same global counters at the
//! same sites that maintain its per-cache `stats()` fields, so the
//! registry exposes one aggregate view of all subsumption work in the
//! process without double-counting: completion work (rule applications,
//! constraints examined) is accumulated only on cache *misses*, where the
//! completion actually ran.

use std::sync::OnceLock;
use subq_telemetry::Counter;

/// Handles to the calculus counters in the global registry.
pub struct CalcMetrics {
    /// Probes answered from a cache or the shared memo.
    pub cache_hits: Counter,
    /// Probes that ran a goal-side completion.
    pub cache_misses: Counter,
    /// Fact closures saturated (misses whose closure was not retained).
    pub fact_saturations: Counter,
    /// Goal-side probes run (one per miss).
    pub probes: Counter,
    /// Saturated fact closures evicted by the LRU cap.
    pub saturation_evictions: Counter,
    /// Completion rule applications, summed over all fresh probes.
    pub rule_applications: Counter,
    /// Rule candidates examined, summed over all fresh probes.
    pub constraints_examined: Counter,
}

/// The calculus counters, registered on first use.
pub fn metrics() -> &'static CalcMetrics {
    static METRICS: OnceLock<CalcMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CalcMetrics {
        cache_hits: subq_telemetry::counter("subq_subsumption_cache_hits_total"),
        cache_misses: subq_telemetry::counter("subq_subsumption_cache_misses_total"),
        fact_saturations: subq_telemetry::counter("subq_subsumption_fact_saturations_total"),
        probes: subq_telemetry::counter("subq_subsumption_probes_total"),
        saturation_evictions: subq_telemetry::counter(
            "subq_subsumption_saturation_evictions_total",
        ),
        rule_applications: subq_telemetry::counter("subq_completion_rule_applications_total"),
        constraints_examined: subq_telemetry::counter("subq_completion_constraints_examined_total"),
    })
}
