//! The public subsumption checking API.
//!
//! [`SubsumptionChecker`] wraps the completion engine into the decision
//! procedure of Theorem 4.7: `C ⊑_Σ D` iff the completed facts contain
//! `o : D` or a clash. It normalizes path agreements first, runs the
//! completion, and reports the verdict together with statistics and (on
//! request) the full derivation trace.
//!
//! For the optimizer's one-query-against-N-views workload, the check
//! splits into two phases: [`SubsumptionChecker::saturate`] computes the
//! fact-side closure of the query once (it depends only on the schema and
//! the query), and [`SaturatedQuery::probe`] forks that closure per view
//! and runs only the goal-side rules. [`SubsumptionCache`] composes both
//! levels: a repeated `(query, view)` pair skips the probe entirely, and a
//! *fresh* pair for an already-seen query skips the fact saturation.

use crate::engine::{Completion, CompletionStats, SaturatedFacts};
use crate::trace::DerivationTrace;
use fxhash::{FxHashMap, FxHasher};
use std::collections::VecDeque;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use subq_concepts::normalize::normalize_concept;
use subq_concepts::schema::Schema;
use subq_concepts::term::{ConceptId, TermArena};

/// How a subsumption was established (or refuted).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubsumptionVerdict {
    /// The completed facts contain the constraint `o : D`.
    SubsumedByFact,
    /// The completed facts contain a clash, so the query is unsatisfiable
    /// with respect to Σ and therefore subsumed by every concept.
    SubsumedByClash,
    /// Neither holds: the canonical interpretation is a counter-model.
    NotSubsumed,
}

impl SubsumptionVerdict {
    /// Whether the verdict means the subsumption holds.
    pub fn holds(self) -> bool {
        !matches!(self, SubsumptionVerdict::NotSubsumed)
    }
}

/// The result of a subsumption check.
#[derive(Clone, Debug)]
pub struct SubsumptionOutcome {
    /// The verdict.
    pub verdict: SubsumptionVerdict,
    /// Statistics of the completion run.
    pub stats: CompletionStats,
    /// The normalized query concept that was actually checked.
    pub normalized_query: ConceptId,
    /// The normalized view concept that was actually checked.
    pub normalized_view: ConceptId,
    /// The derivation trace, when requested.
    pub trace: Option<DerivationTrace>,
}

impl SubsumptionOutcome {
    /// Whether the subsumption holds.
    pub fn subsumed(&self) -> bool {
        self.verdict.holds()
    }

    /// Whether the subsumption was established through a clash
    /// (unsatisfiable query).
    pub fn via_clash(&self) -> bool {
        self.verdict == SubsumptionVerdict::SubsumedByClash
    }
}

/// A memo table for repeated subsumption checks over one arena and schema.
///
/// Hash-consing makes `ConceptId` equality coincide with structural
/// equality, so the outcome of a check is fully determined by the pair of
/// *normalized* concept identifiers (for a fixed schema). The cache
/// exploits that twice:
///
/// * `concept → normalized concept`, so a query probed against N views
///   pays for one normalization pass instead of N, and a view probed by
///   every incoming query is normalized once ever;
/// * `(normalized query, normalized view) → outcome`, so the whole
///   saturation is skipped on a repeat probe — the usage pattern of the
///   query optimizer, which tests every incoming query against every
///   materialized view.
///
/// A third level keeps the fork-able fact closures: `normalized query →
/// SaturatedFacts`, capped at
/// [`SubsumptionCache::SATURATED_QUERIES_CAP`] entries with
/// **least-recently-used** eviction (every reuse of a closure moves it to
/// the back of the eviction queue), so a *fresh* `(query, view)` pair pays
/// only a goal-side probe when the query was saturated before (the hot
/// path of `plan()` when a view is added, or of the very first plan
/// against N views: one saturation, N probes) — and hot query shapes keep
/// their closures even when a churny stream of one-off queries rolls
/// through the cache.
///
/// A cache is only meaningful for the `(TermArena, Schema)` pair it was
/// populated with; use one cache per optimized database (as
/// `subq_oodb::OptimizedDatabase` does) and discard it if the schema
/// changes.
#[derive(Clone, Debug, Default)]
pub struct SubsumptionCache {
    normalized: FxHashMap<ConceptId, ConceptId>,
    outcomes: FxHashMap<(ConceptId, ConceptId), CachedCheck>,
    saturated: FxHashMap<ConceptId, SaturatedFacts>,
    /// Recency queue over `saturated`: front = least recently used.
    saturated_order: VecDeque<ConceptId>,
    hits: u64,
    misses: u64,
    fact_saturations: u64,
    probes: u64,
    saturation_evictions: u64,
}

#[derive(Clone, Copy, Debug)]
struct CachedCheck {
    verdict: SubsumptionVerdict,
    stats: CompletionStats,
}

impl SubsumptionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SubsumptionCache::default()
    }

    /// Number of cached `(query, view)` outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no outcome has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Most saturated fact closures retained at once; the **least
    /// recently used** is evicted first, so hot query shapes survive
    /// churny streams of one-off queries. Repeat `(query, view)` pairs
    /// are unaffected (they hit the outcome level), so the cap only
    /// bounds memory for streams of many *distinct* queries.
    pub const SATURATED_QUERIES_CAP: usize = 64;

    /// `(hits, misses)` counters over the cache's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// `(fact saturations, goal probes)` run on behalf of this cache over
    /// its lifetime. Every miss is one probe; saturations count only the
    /// fact closures that could not be reused.
    pub fn saturation_stats(&self) -> (u64, u64) {
        (self.fact_saturations, self.probes)
    }

    /// Number of saturated queries currently retained.
    pub fn saturated_len(&self) -> usize {
        self.saturated.len()
    }

    /// Number of saturated fact closures evicted over the cache's
    /// lifetime (LRU order — see
    /// [`SubsumptionCache::SATURATED_QUERIES_CAP`]).
    pub fn saturation_evictions(&self) -> u64 {
        self.saturation_evictions
    }

    /// Drops all cached outcomes, normalizations and saturated queries
    /// (keeps the counters).
    pub fn clear(&mut self) {
        self.normalized.clear();
        self.outcomes.clear();
        self.saturated.clear();
        self.saturated_order.clear();
    }

    /// The memoized normalization of `concept`.
    fn normalize(&mut self, arena: &mut TermArena, concept: ConceptId) -> ConceptId {
        if let Some(&normalized) = self.normalized.get(&concept) {
            return normalized;
        }
        let normalized = normalize_concept(arena, concept);
        self.normalized.insert(concept, normalized);
        // Normalization is idempotent; remember that too so probing with
        // an already-normalized concept also hits.
        self.normalized.insert(normalized, normalized);
        normalized
    }

    /// Retains a saturated fact closure, evicting the least recently used
    /// entry once the cap is reached. The key must not be present yet.
    fn store_saturated(&mut self, query: ConceptId, base: SaturatedFacts) {
        if self.saturated.len() >= Self::SATURATED_QUERIES_CAP {
            if let Some(coldest) = self.saturated_order.pop_front() {
                self.saturated.remove(&coldest);
                self.saturation_evictions += 1;
                crate::metrics::metrics().saturation_evictions.inc();
            }
        }
        self.saturated_order.push_back(query);
        self.saturated.insert(query, base);
    }

    /// Marks a retained closure as just used: moves it to the back of the
    /// eviction queue (O(cap), and the cap is small).
    fn touch_saturated(&mut self, query: ConceptId) {
        if let Some(pos) = self.saturated_order.iter().position(|&q| q == query) {
            self.saturated_order.remove(pos);
            self.saturated_order.push_back(query);
        }
    }
}

/// Number of independently locked shards of a [`SharedSubsumptionMemo`].
const MEMO_SHARDS: usize = 16;

/// A thread-safe subsumption memo shared by concurrent readers of one
/// optimized database: the `(normalized query, normalized view) → verdict`
/// level of a [`SubsumptionCache`], sharded over [`MEMO_SHARDS`] RwLocks
/// so readers on different cores rarely contend, with atomic hit/miss
/// counters.
///
/// # Which concept ids may enter the memo
///
/// `ConceptId`s are arena indexes. Readers work on *clones* of a
/// published arena and intern fresh concepts locally, so an id is
/// meaningful across threads only while it lies **below the published
/// arena's concept count** (the arena is append-only and hash-consed, so
/// the shared prefix denotes the same terms in every clone). Callers pass
/// that bound to [`SubsumptionChecker::check_shared`]; pairs with a
/// locally interned id stay in the caller's private cache. A memo is only
/// meaningful for one schema epoch — discard it (as
/// `subq_oodb::OptimizedDatabase` does) whenever the schema is
/// re-translated.
#[derive(Debug)]
pub struct SharedSubsumptionMemo {
    shards: [RwLock<FxHashMap<(ConceptId, ConceptId), CachedCheck>>; MEMO_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SharedSubsumptionMemo {
    fn default() -> Self {
        SharedSubsumptionMemo {
            shards: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl SharedSubsumptionMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        SharedSubsumptionMemo::default()
    }

    fn shard(
        &self,
        key: (ConceptId, ConceptId),
    ) -> &RwLock<FxHashMap<(ConceptId, ConceptId), CachedCheck>> {
        let mut hasher = FxHasher::default();
        hasher.write_u64(((key.0.index() as u64) << 32) | key.1.index() as u64);
        &self.shards[(hasher.finish() as usize) % MEMO_SHARDS]
    }

    fn get(&self, key: (ConceptId, ConceptId)) -> Option<CachedCheck> {
        let found = self
            .shard(key)
            .read()
            .expect("shared memo shard poisoned")
            .get(&key)
            .copied();
        match found {
            Some(check) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(check)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: (ConceptId, ConceptId), check: CachedCheck) {
        self.shard(key)
            .write()
            .expect("shared memo shard poisoned")
            .insert(key, check);
    }

    /// `(hits, misses)` of the shared level over its lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of memoized `(query, view)` verdicts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shared memo shard poisoned").len())
            .sum()
    }

    /// Whether no verdict has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A query whose fact side has been saturated once, ready to be probed
/// against any number of views.
///
/// Obtained from [`SubsumptionChecker::saturate`]. Each
/// [`SaturatedQuery::probe`] forks the snapshot and runs only the
/// goal-side rules, so classifying a query against N views costs one fact
/// saturation plus N cheap probes. Forks are independent: probes may run
/// in any order and the same view may be probed repeatedly with identical
/// outcomes.
pub struct SaturatedQuery<'a> {
    schema: &'a Schema,
    base: SaturatedFacts,
}

impl<'a> SaturatedQuery<'a> {
    /// The normalized query concept the facts were saturated from.
    pub fn query(&self) -> ConceptId {
        self.base.query()
    }

    /// The underlying forkable snapshot.
    pub fn base(&self) -> &SaturatedFacts {
        &self.base
    }

    /// Surrenders the snapshot (e.g. to store it in a cache).
    pub fn into_base(self) -> SaturatedFacts {
        self.base
    }

    /// Decides `query ⊑_Σ view` by forking the saturated facts and
    /// running the goal-side probe.
    pub fn probe(&self, arena: &mut TermArena, view: ConceptId) -> SubsumptionOutcome {
        let normalized_view = normalize_concept(arena, view);
        probe_saturated(arena, self.schema, &self.base, normalized_view)
    }

    /// [`SaturatedQuery::probe`], reduced to the verdict.
    pub fn subsumed_by(&self, arena: &mut TermArena, view: ConceptId) -> bool {
        self.probe(arena, view).subsumed()
    }
}

/// Runs the goal-side probe of `view` over a forked fact closure. The
/// view must already be normalized.
fn probe_saturated(
    arena: &mut TermArena,
    schema: &Schema,
    base: &SaturatedFacts,
    normalized_view: ConceptId,
) -> SubsumptionOutcome {
    let mut completion = Completion::resume(arena, schema, base, normalized_view);
    let stats = completion.run();
    let verdict = completion_verdict(&completion);
    SubsumptionOutcome {
        verdict,
        stats,
        normalized_query: base.query(),
        normalized_view,
        trace: None,
    }
}

/// A clash means the query is Σ-unsatisfiable and hence subsumed by every
/// concept; check it first so `via_clash` doubles as an unsatisfiability
/// signal even when the view fact also happens to be derivable.
fn completion_verdict(completion: &Completion<'_>) -> SubsumptionVerdict {
    if completion.find_clash().is_some() {
        SubsumptionVerdict::SubsumedByClash
    } else if completion.view_fact_derived() {
        SubsumptionVerdict::SubsumedByFact
    } else {
        SubsumptionVerdict::NotSubsumed
    }
}

/// A Σ-subsumption checker for QL concepts.
///
/// The checker is cheap to construct and borrows the schema; one checker
/// can serve many queries against many views, which is exactly the usage
/// pattern of the query optimizer described in the paper (test each
/// incoming query against every materialized view).
#[derive(Clone, Copy, Debug)]
pub struct SubsumptionChecker<'a> {
    schema: &'a Schema,
}

impl<'a> SubsumptionChecker<'a> {
    /// Creates a checker for the given schema.
    pub fn new(schema: &'a Schema) -> Self {
        SubsumptionChecker { schema }
    }

    /// The schema this checker reasons with respect to.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// Decides `sub ⊑_Σ sup`.
    pub fn subsumes(&self, arena: &mut TermArena, sub: ConceptId, sup: ConceptId) -> bool {
        self.run(arena, sub, sup, false).subsumed()
    }

    /// Decides `sub ⊑_Σ sup` and returns the full outcome (verdict,
    /// statistics, normalized concepts).
    pub fn check(
        &self,
        arena: &mut TermArena,
        sub: ConceptId,
        sup: ConceptId,
    ) -> SubsumptionOutcome {
        self.run(arena, sub, sup, false)
    }

    /// Like [`SubsumptionChecker::check`] but also records the derivation
    /// trace (Figure 11 style).
    pub fn check_with_trace(
        &self,
        arena: &mut TermArena,
        sub: ConceptId,
        sup: ConceptId,
    ) -> SubsumptionOutcome {
        self.run(arena, sub, sup, true)
    }

    /// Whether a concept is Σ-unsatisfiable, detected through a clash in
    /// its completion. (In SL/QL unsatisfiability can only arise from
    /// singleton conflicts; see Section 4.4 for why richer schema languages
    /// change this.)
    pub fn is_unsatisfiable(&self, arena: &mut TermArena, concept: ConceptId) -> bool {
        let top = arena.top();
        self.run(arena, concept, top, false).via_clash()
    }

    /// Checks two concepts for Σ-equivalence (mutual subsumption).
    pub fn equivalent(&self, arena: &mut TermArena, a: ConceptId, b: ConceptId) -> bool {
        self.subsumes(arena, a, b) && self.subsumes(arena, b, a)
    }

    /// Saturates the fact side of `query` once; the result can be probed
    /// against any number of views without repeating that work.
    pub fn saturate(&self, arena: &mut TermArena, query: ConceptId) -> SaturatedQuery<'a> {
        let normalized_query = normalize_concept(arena, query);
        SaturatedQuery {
            schema: self.schema,
            base: SaturatedFacts::saturate(arena, self.schema, normalized_query),
        }
    }

    /// Decides `sub ⊑_Σ sup` through a [`SubsumptionCache`]: the
    /// normalizations of both concepts are memoized, a repeated
    /// `(query, view)` probe skips the completion entirely, and a fresh
    /// pair forks the query's cached fact closure (saturating it first if
    /// this is the query's first miss) and runs only the goal-side probe.
    pub fn check_cached(
        &self,
        arena: &mut TermArena,
        sub: ConceptId,
        sup: ConceptId,
        cache: &mut SubsumptionCache,
    ) -> SubsumptionOutcome {
        let normalized_query = cache.normalize(arena, sub);
        let normalized_view = cache.normalize(arena, sup);
        if let Some(cached) = cache.outcomes.get(&(normalized_query, normalized_view)) {
            cache.hits += 1;
            crate::metrics::metrics().cache_hits.inc();
            return SubsumptionOutcome {
                verdict: cached.verdict,
                stats: cached.stats,
                normalized_query,
                normalized_view,
                trace: None,
            };
        }
        self.saturate_and_probe(arena, cache, normalized_query, normalized_view)
    }

    /// The miss path of the cached checks: fork the query's retained fact
    /// closure (saturating and retaining it first if absent, touching its
    /// LRU slot otherwise), run the goal-side probe, and memoize the
    /// outcome.
    fn saturate_and_probe(
        &self,
        arena: &mut TermArena,
        cache: &mut SubsumptionCache,
        normalized_query: ConceptId,
        normalized_view: ConceptId,
    ) -> SubsumptionOutcome {
        let metrics = crate::metrics::metrics();
        cache.misses += 1;
        metrics.cache_misses.inc();
        if cache.saturated.contains_key(&normalized_query) {
            cache.touch_saturated(normalized_query);
        } else {
            let base = SaturatedFacts::saturate(arena, self.schema, normalized_query);
            cache.store_saturated(normalized_query, base);
            cache.fact_saturations += 1;
            metrics.fact_saturations.inc();
        }
        cache.probes += 1;
        metrics.probes.inc();
        let base = cache
            .saturated
            .get(&normalized_query)
            .expect("saturated just above");
        let outcome = probe_saturated(arena, self.schema, base, normalized_view);
        metrics
            .rule_applications
            .add(outcome.stats.rule_applications as u64);
        metrics
            .constraints_examined
            .add(outcome.stats.constraints_examined as u64);
        cache.outcomes.insert(
            (normalized_query, normalized_view),
            CachedCheck {
                verdict: outcome.verdict,
                stats: outcome.stats,
            },
        );
        outcome
    }

    /// [`SubsumptionChecker::check_cached`] composed with a
    /// [`SharedSubsumptionMemo`]: the caller's private cache is consulted
    /// first, then the shared memo (counting a shared hit as a private hit
    /// too, so per-caller counters keep their meaning), and a full miss
    /// saturates/probes locally and publishes the verdict to the memo —
    /// but **only** when both normalized ids lie below `shared_bound`,
    /// the published arena's concept count (ids at or above it were
    /// interned locally by this caller and mean nothing to other
    /// threads). Pass `usize::MAX` when the arena *is* the published one
    /// (the single writer).
    pub fn check_shared(
        &self,
        arena: &mut TermArena,
        sub: ConceptId,
        sup: ConceptId,
        cache: &mut SubsumptionCache,
        shared: &SharedSubsumptionMemo,
        shared_bound: usize,
    ) -> SubsumptionOutcome {
        let normalized_query = cache.normalize(arena, sub);
        let normalized_view = cache.normalize(arena, sup);
        let key = (normalized_query, normalized_view);
        if let Some(cached) = cache.outcomes.get(&key) {
            cache.hits += 1;
            crate::metrics::metrics().cache_hits.inc();
            return SubsumptionOutcome {
                verdict: cached.verdict,
                stats: cached.stats,
                normalized_query,
                normalized_view,
                trace: None,
            };
        }
        let shareable =
            normalized_query.index() < shared_bound && normalized_view.index() < shared_bound;
        if shareable {
            if let Some(cached) = shared.get(key) {
                cache.hits += 1;
                crate::metrics::metrics().cache_hits.inc();
                cache.outcomes.insert(key, cached);
                return SubsumptionOutcome {
                    verdict: cached.verdict,
                    stats: cached.stats,
                    normalized_query,
                    normalized_view,
                    trace: None,
                };
            }
        }
        let outcome = self.saturate_and_probe(arena, cache, normalized_query, normalized_view);
        if shareable {
            shared.insert(
                key,
                CachedCheck {
                    verdict: outcome.verdict,
                    stats: outcome.stats,
                },
            );
        }
        outcome
    }

    /// [`SubsumptionChecker::check_shared`], reduced to the verdict.
    pub fn subsumes_shared(
        &self,
        arena: &mut TermArena,
        sub: ConceptId,
        sup: ConceptId,
        cache: &mut SubsumptionCache,
        shared: &SharedSubsumptionMemo,
        shared_bound: usize,
    ) -> bool {
        self.check_shared(arena, sub, sup, cache, shared, shared_bound)
            .subsumed()
    }

    /// [`SubsumptionChecker::check_cached`], reduced to the verdict.
    pub fn subsumes_cached(
        &self,
        arena: &mut TermArena,
        sub: ConceptId,
        sup: ConceptId,
        cache: &mut SubsumptionCache,
    ) -> bool {
        self.check_cached(arena, sub, sup, cache).subsumed()
    }

    /// Σ-equivalence (mutual subsumption) through a [`SubsumptionCache`]:
    /// the cached counterpart of [`SubsumptionChecker::equivalent`], for
    /// view-vs-view questions over a long-lived catalog — e.g. asking
    /// whether two materialized definitions denote the same node of the
    /// subsumption lattice. Both directions go through the cache, so each
    /// concept's fact closure is saturated at most once across all such
    /// checks and repeats are pure lookups.
    pub fn equivalent_cached(
        &self,
        arena: &mut TermArena,
        a: ConceptId,
        b: ConceptId,
        cache: &mut SubsumptionCache,
    ) -> bool {
        self.subsumes_cached(arena, a, b, cache) && self.subsumes_cached(arena, b, a, cache)
    }

    /// Batch probe: decides `sub ⊑_Σ view` for every view, sharing one
    /// normalization pass and one fact saturation for `sub` and the
    /// cached outcomes for each `(sub, view)` pair — the optimizer's
    /// per-query hot path. Planning against N fresh views costs exactly
    /// one fact saturation plus N goal probes.
    pub fn check_many(
        &self,
        arena: &mut TermArena,
        sub: ConceptId,
        views: &[ConceptId],
        cache: &mut SubsumptionCache,
    ) -> Vec<SubsumptionOutcome> {
        views
            .iter()
            .map(|&view| self.check_cached(arena, sub, view, cache))
            .collect()
    }

    fn run(
        &self,
        arena: &mut TermArena,
        sub: ConceptId,
        sup: ConceptId,
        record_trace: bool,
    ) -> SubsumptionOutcome {
        let normalized_query = normalize_concept(arena, sub);
        let normalized_view = normalize_concept(arena, sup);
        self.run_normalized(arena, normalized_query, normalized_view, record_trace)
    }

    fn run_normalized(
        &self,
        arena: &mut TermArena,
        normalized_query: ConceptId,
        normalized_view: ConceptId,
        record_trace: bool,
    ) -> SubsumptionOutcome {
        let mut completion = Completion::new(
            arena,
            self.schema,
            normalized_query,
            normalized_view,
            record_trace,
        );
        let stats = completion.run();
        let verdict = completion_verdict(&completion);
        let trace = completion.trace().cloned();
        SubsumptionOutcome {
            verdict,
            stats,
            normalized_query,
            normalized_view,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_concepts::attribute::Attr;
    use subq_concepts::symbol::Vocabulary;

    struct Medical {
        voc: Vocabulary,
        arena: TermArena,
        schema: Schema,
        query: ConceptId,
        view: ConceptId,
    }

    /// The running example of the paper: the medical schema of Figure 6 and
    /// the concepts C_Q / D_V of Section 3.2.
    fn medical_example() -> Medical {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let person = voc.class("Person");
        let doctor = voc.class("Doctor");
        let disease = voc.class("Disease");
        let drug = voc.class("Drug");
        let string = voc.class("String");
        let topic = voc.class("Topic");
        let male = voc.class("Male");
        let female = voc.class("Female");
        let takes = voc.attribute("takes");
        let consults = voc.attribute("consults");
        let suffers = voc.attribute("suffers");
        let name = voc.attribute("name");
        let skilled_in = voc.attribute("skilled_in");

        let mut schema = Schema::new();
        schema.add_isa(patient, person);
        schema.add_value_restriction(patient, takes, drug);
        schema.add_value_restriction(patient, consults, doctor);
        schema.add_value_restriction(patient, suffers, disease);
        schema.add_necessary(patient, suffers);
        schema.add_value_restriction(person, name, string);
        schema.add_necessary(person, name);
        schema.add_functional(person, name);
        schema.add_value_restriction(doctor, skilled_in, disease);
        schema.add_attr_typing(skilled_in, person, topic);

        let mut arena = TermArena::new();
        // C_Q = Male ⊓ Patient ⊓
        //       ∃(consults: Female) ≐ (suffers: ⊤)(skilled_in⁻¹: Doctor)
        let male_c = arena.prim(male);
        let patient_c = arena.prim(patient);
        let female_c = arena.prim(female);
        let doctor_c = arena.prim(doctor);
        let top = arena.top();
        let p = arena.path1(Attr::primitive(consults), female_c);
        let q = arena.path_of(&[
            (Attr::primitive(suffers), top),
            (Attr::inverse_of(skilled_in), doctor_c),
        ]);
        let agree = arena.agree(p, q);
        let query = arena.and_all([male_c, patient_c, agree]);

        // D_V = Patient ⊓ ∃(name: String) ⊓
        //       ∃(consults: Doctor)(skilled_in: Disease) ≐ (suffers: Disease)
        let string_c = arena.prim(string);
        let disease_c = arena.prim(disease);
        let name_path = arena.path1(Attr::primitive(name), string_c);
        let has_name = arena.exists(name_path);
        let vp = arena.path_of(&[
            (Attr::primitive(consults), doctor_c),
            (Attr::primitive(skilled_in), disease_c),
        ]);
        let vq = arena.path1(Attr::primitive(suffers), disease_c);
        let vagree = arena.agree(vp, vq);
        let view = arena.and_all([patient_c, has_name, vagree]);

        Medical {
            voc,
            arena,
            schema,
            query,
            view,
        }
    }

    /// The headline result of the worked example: C_Q ⊑_Σ D_V (Figure 11),
    /// while the converse fails.
    #[test]
    fn paper_example_subsumption_holds_one_way() {
        let mut m = medical_example();
        let checker = SubsumptionChecker::new(&m.schema);
        let outcome = checker.check_with_trace(&mut m.arena, m.query, m.view);
        assert_eq!(outcome.verdict, SubsumptionVerdict::SubsumedByFact);
        let trace = outcome.trace.as_ref().expect("trace requested");
        assert!(!trace.is_empty());
        // The derivation must use the schema: the necessary-name filler is
        // created by S5 and the inverse-attribute reasoning by D2.
        assert!(trace.count_rule(crate::rules::RuleId::S5) >= 1);
        assert!(trace.count_rule(crate::rules::RuleId::D2) >= 1);
        assert!(trace.count_rule(crate::rules::RuleId::C5) >= 1);

        let reverse = checker.check(&mut m.arena, m.view, m.query);
        assert_eq!(reverse.verdict, SubsumptionVerdict::NotSubsumed);
    }

    /// The trace renders in the style of Figure 11 and mentions the
    /// individuals and concepts of the example.
    #[test]
    fn paper_example_trace_renders() {
        let mut m = medical_example();
        let checker = SubsumptionChecker::new(&m.schema);
        let outcome = checker.check_with_trace(&mut m.arena, m.query, m.view);
        let trace = outcome.trace.expect("trace requested");
        let rendered = trace.render(&m.voc, &m.arena);
        assert!(rendered.contains("[D1]"));
        assert!(rendered.contains("[S1]"));
        assert!(rendered.contains("x: Person"));
        assert!(rendered.contains("consults"));
    }

    /// Subsumption without the schema fails: the schema information is what
    /// makes the example work (inverse of skilled_in, necessary name,
    /// suffers typing).
    #[test]
    fn paper_example_needs_the_schema() {
        let mut m = medical_example();
        let empty = Schema::new();
        let checker = SubsumptionChecker::new(&empty);
        assert!(!checker.subsumes(&mut m.arena, m.query, m.view));
    }

    /// Basic algebraic sanity: reflexivity, ⊤ as greatest element, and the
    /// conjunct-projection `C ⊓ D ⊑ C`.
    #[test]
    fn algebraic_properties() {
        let mut m = medical_example();
        let checker = SubsumptionChecker::new(&m.schema);
        let top = m.arena.top();
        assert!(checker.subsumes(&mut m.arena, m.query, m.query));
        assert!(checker.subsumes(&mut m.arena, m.view, m.view));
        assert!(checker.subsumes(&mut m.arena, m.query, top));
        assert!(!checker.subsumes(&mut m.arena, top, m.query));

        let patient = m.voc.find_class("Patient").expect("interned");
        let patient_c = m.arena.prim(patient);
        assert!(checker.subsumes(&mut m.arena, m.query, patient_c));
        assert!(!checker.subsumes(&mut m.arena, patient_c, m.query));
    }

    /// Unsatisfiability detection through singleton clashes.
    #[test]
    fn unsatisfiable_concepts_are_subsumed_by_everything() {
        let mut voc = Vocabulary::new();
        let a = voc.constant("a");
        let b = voc.constant("b");
        let thing = voc.class("Thing");
        let schema = Schema::new();
        let mut arena = TermArena::new();
        let sa = arena.singleton(a);
        let sb = arena.singleton(b);
        let both = arena.and(sa, sb);
        let thing_c = arena.prim(thing);
        let checker = SubsumptionChecker::new(&schema);
        assert!(checker.is_unsatisfiable(&mut arena, both));
        let outcome = checker.check(&mut arena, both, thing_c);
        assert_eq!(outcome.verdict, SubsumptionVerdict::SubsumedByClash);
        assert!(!checker.is_unsatisfiable(&mut arena, thing_c));
    }

    /// Equivalence is mutual subsumption; `C ⊓ ⊤` is equivalent to `C`.
    #[test]
    fn equivalence_modulo_top() {
        let mut m = medical_example();
        let checker = SubsumptionChecker::new(&m.schema);
        let top = m.arena.top();
        let query_and_top = m.arena.and(m.query, top);
        assert!(checker.equivalent(&mut m.arena, m.query, query_and_top));
        assert!(!checker.equivalent(&mut m.arena, m.query, m.view));
    }

    /// The cache memoizes outcomes: a repeated probe is a lookup, the
    /// verdicts agree with the uncached path, and the normalization of the
    /// query is shared across views.
    #[test]
    fn cached_checks_agree_and_hit() {
        let mut m = medical_example();
        let checker = SubsumptionChecker::new(&m.schema);
        let mut cache = SubsumptionCache::new();
        let patient = m.voc.find_class("Patient").expect("interned");
        let patient_c = m.arena.prim(patient);
        let views = [m.view, patient_c, m.query];

        let uncached: Vec<bool> = views
            .iter()
            .map(|&v| checker.subsumes(&mut m.arena, m.query, v))
            .collect();
        let first: Vec<bool> = checker
            .check_many(&mut m.arena, m.query, &views, &mut cache)
            .into_iter()
            .map(|o| o.subsumed())
            .collect();
        assert_eq!(first, uncached);
        let (hits_before, misses) = cache.stats();
        assert_eq!(hits_before, 0);
        assert_eq!(misses, 3);

        // Second probe: all hits, same verdicts, no new outcomes.
        let second: Vec<bool> = checker
            .check_many(&mut m.arena, m.query, &views, &mut cache)
            .into_iter()
            .map(|o| o.subsumed())
            .collect();
        assert_eq!(second, uncached);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 3);
        assert_eq!(misses, 3);
        assert_eq!(cache.len(), 3);

        // The cached outcome carries the same stats and normalized ids.
        let direct = checker.check(&mut m.arena, m.query, m.view);
        let cached = checker.check_cached(&mut m.arena, m.query, m.view, &mut cache);
        assert_eq!(direct.verdict, cached.verdict);
        assert_eq!(direct.stats.outcome_only(), cached.stats.outcome_only());
        assert_eq!(direct.normalized_query, cached.normalized_query);
        assert_eq!(direct.normalized_view, cached.normalized_view);

        cache.clear();
        assert!(cache.is_empty());
    }

    /// Cached equivalence agrees with the uncached mutual-subsumption
    /// check and reuses the saturated closures of both operands.
    #[test]
    fn cached_equivalence_agrees_with_uncached() {
        let mut m = medical_example();
        let checker = SubsumptionChecker::new(&m.schema);
        let mut cache = SubsumptionCache::new();
        let top = m.arena.top();
        let query_and_top = m.arena.and(m.query, top);
        assert!(checker.equivalent_cached(&mut m.arena, m.query, query_and_top, &mut cache));
        assert!(!checker.equivalent_cached(&mut m.arena, m.query, m.view, &mut cache));
        let (_, misses_before) = cache.stats();
        // Repeating both checks is pure lookups.
        assert!(checker.equivalent_cached(&mut m.arena, m.query, query_and_top, &mut cache));
        assert!(!checker.equivalent_cached(&mut m.arena, m.query, m.view, &mut cache));
        let (hits, misses) = cache.stats();
        assert_eq!(misses, misses_before);
        assert!(hits >= 3, "repeat equivalence checks must hit, got {hits}");
    }

    /// The saturation level evicts **least-recently-used** closures: a
    /// query shape kept hot by repeated probes survives a churny stream
    /// of `CAP` one-off queries that would have rolled it out under the
    /// old FIFO policy, and the eviction counter accounts for exactly the
    /// cold entries dropped.
    #[test]
    fn saturation_cache_evicts_least_recently_used() {
        let mut voc = Vocabulary::new();
        let schema = Schema::new();
        let mut arena = TermArena::new();
        let checker = SubsumptionChecker::new(&schema);
        let mut cache = SubsumptionCache::new();
        let top = arena.top();
        let cap = SubsumptionCache::SATURATED_QUERIES_CAP;

        // The hot query, saturated once.
        let hot = arena.prim(voc.class("Hot"));
        assert!(checker.subsumes_cached(&mut arena, hot, top, &mut cache));
        assert_eq!(cache.saturation_stats().0, 1);

        // A churny stream of `cap` distinct one-off queries, the hot
        // query re-probed (against a fresh view, so the outcome level
        // does not short-circuit the closure reuse) between every few.
        let mut churn_saturations = 0;
        for i in 0..cap {
            let cold = arena.prim(voc.class(&format!("Cold{i}")));
            assert!(checker.subsumes_cached(&mut arena, cold, top, &mut cache));
            churn_saturations += 1;
            if i % 8 == 0 {
                let view = arena.prim(voc.class(&format!("View{i}")));
                let before = cache.saturation_stats().0;
                checker.subsumes_cached(&mut arena, hot, view, &mut cache);
                assert_eq!(
                    cache.saturation_stats().0,
                    before,
                    "touching the hot query must reuse its closure"
                );
            }
        }

        // Under FIFO the hot query (the oldest insertion) would be gone;
        // under LRU it survived the whole stream.
        let view = arena.prim(voc.class("FinalView"));
        let before = cache.saturation_stats().0;
        checker.subsumes_cached(&mut arena, hot, view, &mut cache);
        assert_eq!(
            cache.saturation_stats().0,
            before,
            "the hot closure must still be retained after {cap} churny queries"
        );
        // 1 hot + `cap` churn saturations into a `cap`-slot cache: the
        // overflow is exactly the eviction count, and every eviction hit
        // a cold entry.
        assert_eq!(cache.saturated_len(), cap);
        assert_eq!(
            cache.saturation_evictions(),
            (1 + churn_saturations - cap) as u64
        );
    }

    /// The shared memo agrees with the private path, counts hits and
    /// misses, and refuses pairs above the shared bound (locally interned
    /// concepts stay private).
    #[test]
    fn shared_memo_agrees_and_respects_the_bound() {
        let mut m = medical_example();
        let checker = SubsumptionChecker::new(&m.schema);
        let shared = SharedSubsumptionMemo::new();
        assert!(shared.is_empty());

        // Warm the base arena first (normalization interns the normal
        // forms), as the single writer does before publishing a snapshot;
        // only then do the "readers" clone it.
        let expect = checker.subsumes(&mut m.arena, m.query, m.view);
        let mut arena_a = m.arena.clone();
        let mut arena_b = m.arena.clone();
        let bound = m.arena.concept_count();
        let mut cache_a = SubsumptionCache::new();
        let mut cache_b = SubsumptionCache::new();
        let a = checker.check_shared(&mut arena_a, m.query, m.view, &mut cache_a, &shared, bound);
        assert_eq!(a.subsumed(), expect);
        let published = shared.len();
        assert!(published >= 1, "verdict must be published");

        // The second reader answers from the memo: no new saturation.
        let b = checker.check_shared(&mut arena_b, m.query, m.view, &mut cache_b, &shared, bound);
        assert_eq!(b.subsumed(), expect);
        assert_eq!(cache_b.saturation_stats(), (0, 0));
        assert_eq!(shared.len(), published);
        let (hits, _) = shared.stats();
        assert!(hits >= 1);

        // A pair involving a locally interned concept stays private.
        let local = arena_b.and(m.query, m.view);
        assert!(local.index() >= bound, "freshly interned above the bound");
        checker.check_shared(&mut arena_b, local, m.view, &mut cache_b, &shared, bound);
        assert_eq!(shared.len(), published, "local pair must not be published");
        // …but is still memoized privately: a repeat is a hit.
        let (hits_before, misses_before) = cache_b.stats();
        checker.check_shared(&mut arena_b, local, m.view, &mut cache_b, &shared, bound);
        assert_eq!(cache_b.stats(), (hits_before + 1, misses_before));
    }

    /// The outcome reports completion statistics compatible with the
    /// polynomial bound.
    #[test]
    fn stats_are_reported_and_bounded() {
        let mut m = medical_example();
        let checker = SubsumptionChecker::new(&m.schema);
        let outcome = checker.check(&mut m.arena, m.query, m.view);
        let msize = m.arena.concept_size(outcome.normalized_query);
        let nsize = m.arena.concept_size(outcome.normalized_view);
        assert!(outcome.stats.individuals >= 2);
        assert!(
            outcome.stats.individuals <= msize * nsize + 1,
            "individuals {} exceed M·N = {}·{}",
            outcome.stats.individuals,
            msize,
            nsize
        );
        assert!(outcome.stats.rule_applications > 0);
        assert!(outcome.stats.facts >= outcome.stats.goals);
    }
}
