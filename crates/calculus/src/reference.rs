//! The naive full-scan completion engine, retained as the semantic
//! reference for the delta-driven [`crate::engine::Completion`].
//!
//! This is the seed implementation of the saturation loop: every fixpoint
//! round re-collects the candidates of each rule by scanning the whole
//! fact/goal sets, for a cost of O(rounds × rules × |F ∪ G|). It is kept
//! (not exported through the prelude) because it is the executable
//! specification the delta engine is tested against: the equivalence
//! property suite in `tests/delta_equivalence.rs` asserts that both
//! engines produce identical final fact/goal sets, clashes, statistics and
//! rule traces on arbitrary inputs, and the E5 counter tables quote its
//! `constraints_examined` next to the delta engine's to show the
//! naive-versus-incremental gap.

use crate::constraint::{Constraint, ConstraintSet};
use crate::engine::{Clash, CompletionStats};
use crate::ind::Ind;
use crate::rules::RuleId;
use crate::trace::{DerivationTrace, TraceStep};
use subq_concepts::attribute::Attr;
use subq_concepts::schema::Schema;
use subq_concepts::term::{Concept, ConceptId, Path, PathId, Restriction, TermArena};

/// The full-scan completion of a pair of constraint systems.
pub struct ReferenceCompletion<'a> {
    arena: &'a mut TermArena,
    schema: &'a Schema,
    facts: ConstraintSet,
    goals: ConstraintSet,
    next_var: u32,
    fresh_vars: usize,
    rule_applications: usize,
    constraints_examined: usize,
    trace: Option<DerivationTrace>,
    query: ConceptId,
    view: ConceptId,
}

impl<'a> ReferenceCompletion<'a> {
    /// Creates the initial pair `{x : query} : {x : view}`.
    pub fn new(
        arena: &'a mut TermArena,
        schema: &'a Schema,
        query: ConceptId,
        view: ConceptId,
        record_trace: bool,
    ) -> Self {
        let mut facts = ConstraintSet::new();
        let mut goals = ConstraintSet::new();
        facts.insert(Constraint::Member(Ind::ROOT, query));
        goals.insert(Constraint::Member(Ind::ROOT, view));
        ReferenceCompletion {
            arena,
            schema,
            facts,
            goals,
            next_var: 1,
            fresh_vars: 0,
            rule_applications: 0,
            constraints_examined: 0,
            trace: record_trace.then(DerivationTrace::new),
            query,
            view,
        }
    }

    /// The fact set `F`.
    pub fn facts(&self) -> &ConstraintSet {
        &self.facts
    }

    /// The goal set `G`.
    pub fn goals(&self) -> &ConstraintSet {
        &self.goals
    }

    /// The recorded derivation trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&DerivationTrace> {
        self.trace.as_ref()
    }

    /// The term arena the completion works over.
    pub fn arena(&self) -> &TermArena {
        self.arena
    }

    /// The (normalized) query concept `C`.
    pub fn query(&self) -> ConceptId {
        self.query
    }

    /// The (normalized) view concept `D`.
    pub fn view(&self) -> ConceptId {
        self.view
    }

    /// Statistics of the completion so far.
    pub fn stats(&self) -> CompletionStats {
        let fact_inds = self.facts.individuals();
        let extra_goal_inds = self
            .goals
            .individuals()
            .iter()
            .filter(|i| !fact_inds.contains(i))
            .count();
        CompletionStats {
            individuals: fact_inds.len() + extra_goal_inds,
            fresh_vars: self.fresh_vars,
            rule_applications: self.rule_applications,
            facts: self.facts.len(),
            goals: self.goals.len(),
            constraints_examined: self.constraints_examined,
            probe_examined: 0,
            fact_phase_reused: false,
        }
    }

    /// The individual `o` such that `o : D` is the (unique) top-level goal.
    pub fn view_individual(&self) -> Ind {
        self.goals
            .iter()
            .find_map(|c| match *c {
                Constraint::Member(s, concept) if concept == self.view => Some(s),
                _ => None,
            })
            .unwrap_or(Ind::ROOT)
    }

    /// Runs rules until no rule is applicable, then returns the statistics.
    pub fn run(&mut self) -> CompletionStats {
        loop {
            if self.apply_group(Group::Decomposition) {
                continue;
            }
            if self.apply_group(Group::Schema) {
                continue;
            }
            if self.apply_group(Group::Goal) {
                continue;
            }
            if self.apply_group(Group::Composition) {
                continue;
            }
            break;
        }
        self.stats()
    }

    /// Whether the completed facts contain the constraint `o : D`.
    pub fn view_fact_derived(&self) -> bool {
        let o = self.view_individual();
        self.facts.has_member(o, self.view)
    }

    /// Searches the fact set for a clash (Section 4.2) by scanning.
    pub fn find_clash(&self) -> Option<Clash> {
        // a : {b} with distinct constants.
        for constraint in self.facts.iter() {
            if let Constraint::Member(s, concept) = *constraint {
                if let (Some(a), Concept::Singleton(b)) =
                    (s.as_const(), self.arena.concept(concept))
                {
                    if a != b {
                        return Some(Clash::ConstantSingleton(s, Ind::Const(b)));
                    }
                }
            }
        }
        // s P a, s P b, s : A with A ⊑ (≤1 P) and a ≠ b constants.
        for constraint in self.facts.iter() {
            let Constraint::Member(s, concept) = *constraint else {
                continue;
            };
            let Concept::Prim(class) = self.arena.concept(concept) else {
                continue;
            };
            for attr in self.schema.functional_attrs_of(class) {
                let attr = Attr::primitive(attr);
                let const_fillers: Vec<Ind> = self
                    .facts
                    .fillers_via(s, attr)
                    .filter(|t| t.is_const())
                    .collect();
                for (i, &a) in const_fillers.iter().enumerate() {
                    for &b in &const_fillers[i + 1..] {
                        if a != b {
                            return Some(Clash::FunctionalFanOut(s, attr, a, b));
                        }
                    }
                }
            }
        }
        None
    }

    // ----- bookkeeping ----------------------------------------------------

    fn fresh_var(&mut self) -> Ind {
        let v = Ind::Var(self.next_var);
        self.next_var += 1;
        self.fresh_vars += 1;
        v
    }

    fn record(&mut self, step: TraceStep) {
        self.rule_applications += 1;
        if let Some(trace) = self.trace.as_mut() {
            trace.push(step);
        }
    }

    /// Adds facts for one rule application; returns whether anything was new.
    fn add_facts(&mut self, rule: RuleId, constraints: Vec<Constraint>) -> bool {
        let added: Vec<Constraint> = constraints
            .into_iter()
            .filter(|c| self.facts.insert(*c))
            .collect();
        if added.is_empty() {
            return false;
        }
        self.record(TraceStep {
            rule,
            added_facts: added,
            added_goals: vec![],
            substitution: None,
        });
        true
    }

    /// Adds goals for one rule application; returns whether anything was new.
    fn add_goals(&mut self, rule: RuleId, constraints: Vec<Constraint>) -> bool {
        let added: Vec<Constraint> = constraints
            .into_iter()
            .filter(|c| self.goals.insert(*c))
            .collect();
        if added.is_empty() {
            return false;
        }
        self.record(TraceStep {
            rule,
            added_facts: vec![],
            added_goals: added,
            substitution: None,
        });
        true
    }

    /// Applies the substitution `[from ↦ to]` to the whole pair.
    fn substitute(&mut self, rule: RuleId, from: Ind, to: Ind) {
        self.facts.substitute(from, to);
        self.goals.substitute(from, to);
        self.record(TraceStep {
            rule,
            added_facts: vec![],
            added_goals: vec![],
            substitution: Some((from, to)),
        });
    }

    fn apply_group(&mut self, group: Group) -> bool {
        match group {
            Group::Decomposition => {
                self.rule_d1()
                    | self.rule_d2()
                    | self.rule_d3()
                    | self.rule_d4()
                    | self.rule_d5()
                    | self.rule_d6()
                    | self.rule_d7()
            }
            Group::Schema => {
                self.rule_s1() | self.rule_s2() | self.rule_s3() | self.rule_s4() | self.rule_s5()
            }
            Group::Goal => self.rule_g1() | self.rule_g23(),
            Group::Composition => {
                self.rule_c1() | self.rule_c2() | self.rule_c3() | self.rule_c4() | self.rule_c56()
            }
        }
    }

    // ----- decomposition rules (Figure 7) ---------------------------------

    /// D1: `s : C ⊓ D ∈ F` yields `s : C` and `s : D`.
    fn rule_d1(&mut self) -> bool {
        self.constraints_examined += self.facts.len();
        let candidates: Vec<(Ind, ConceptId, ConceptId)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::And(l, r) => Some((s, l, r)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, l, r) in candidates {
            changed |= self.add_facts(
                RuleId::D1,
                vec![Constraint::Member(s, l), Constraint::Member(s, r)],
            );
        }
        changed
    }

    /// D2: `t R⁻¹ s ∈ F` yields `s R t`.
    fn rule_d2(&mut self) -> bool {
        self.constraints_examined += self.facts.len();
        let candidates: Vec<(Ind, Attr, Ind)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::Filler(t, r, s) => Some((s, r.inverse(), t)),
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, r, t) in candidates {
            changed |= self.add_facts(RuleId::D2, vec![Constraint::Filler(s, r, t)]);
        }
        changed
    }

    /// D3: `y : {a} ∈ F` for a variable `y` substitutes `y` by `a`.
    fn rule_d3(&mut self) -> bool {
        self.constraints_examined += self.facts.len();
        let candidate = self.facts.iter().find_map(|c| match *c {
            Constraint::Member(s, concept) if s.is_var() => match self.arena.concept(concept) {
                Concept::Singleton(a) => Some((s, Ind::Const(a))),
                _ => None,
            },
            _ => None,
        });
        if let Some((from, to)) = candidate {
            self.substitute(RuleId::D3, from, to);
            true
        } else {
            false
        }
    }

    /// D4: `s : ∃p ∈ F` with no witness yields `s p y` for a fresh `y`.
    fn rule_d4(&mut self) -> bool {
        self.constraints_examined += self.facts.len();
        let candidates: Vec<(Ind, PathId)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::Exists(p) if !self.arena.is_empty_path(p) => Some((s, p)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, p) in candidates {
            if self.facts.has_any_path_target(s, p) {
                continue;
            }
            let y = self.fresh_var();
            changed |= self.add_facts(RuleId::D4, vec![Constraint::PathRel(s, p, y)]);
        }
        changed
    }

    /// D5: `s : ∃p ≐ ε ∈ F` yields the cyclic witness `s p s`.
    fn rule_d5(&mut self) -> bool {
        self.constraints_examined += self.facts.len();
        let candidates: Vec<(Ind, PathId)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::Agree(p, q)
                        if self.arena.is_empty_path(q) && !self.arena.is_empty_path(p) =>
                    {
                        Some((s, p))
                    }
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, p) in candidates {
            changed |= self.add_facts(RuleId::D5, vec![Constraint::PathRel(s, p, s)]);
        }
        changed
    }

    /// D6: unfold the first step of a path fact `s (R:C)p t` (`p ≠ ε`) with
    /// a fresh middle individual, unless a suitable one already exists.
    fn rule_d6(&mut self) -> bool {
        self.constraints_examined += self.facts.len();
        let candidates: Vec<(Ind, Restriction, PathId, Ind)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::PathRel(s, p, t) => match self.arena.path(p) {
                    Path::Step(restriction, rest) if !self.arena.is_empty_path(rest) => {
                        Some((s, restriction, rest, t))
                    }
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, restriction, rest, t) in candidates {
            let exists_witness = self.facts.fillers_via(s, restriction.attr).any(|t_prime| {
                self.facts.has_member(t_prime, restriction.concept)
                    && self.facts.has_path(t_prime, rest, t)
            });
            if exists_witness {
                continue;
            }
            let y = self.fresh_var();
            changed |= self.add_facts(
                RuleId::D6,
                vec![
                    Constraint::Filler(s, restriction.attr, y),
                    Constraint::Member(y, restriction.concept),
                    Constraint::PathRel(y, rest, t),
                ],
            );
        }
        changed
    }

    /// D7: unfold a one-step path fact `s (R:C) t` into `s R t` and `t : C`.
    fn rule_d7(&mut self) -> bool {
        self.constraints_examined += self.facts.len();
        let candidates: Vec<(Ind, Restriction, Ind)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::PathRel(s, p, t) => match self.arena.path(p) {
                    Path::Step(restriction, rest) if self.arena.is_empty_path(rest) => {
                        Some((s, restriction, t))
                    }
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, restriction, t) in candidates {
            changed |= self.add_facts(
                RuleId::D7,
                vec![
                    Constraint::Filler(s, restriction.attr, t),
                    Constraint::Member(t, restriction.concept),
                ],
            );
        }
        changed
    }

    // ----- schema rules (Figure 8) -----------------------------------------

    /// The primitive classes `A` with `s : A ∈ F`.
    fn primitive_memberships(&self) -> Vec<(Ind, subq_concepts::symbol::ClassId)> {
        self.facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::Prim(class) => Some((s, class)),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    /// S1: `s : A₁ ∈ F`, `A₁ ⊑ A₂ ∈ Σ` yields `s : A₂`.
    fn rule_s1(&mut self) -> bool {
        self.constraints_examined += self.facts.len();
        let candidates = self.primitive_memberships();
        let mut changed = false;
        for (s, a1) in candidates {
            let supers: Vec<_> = self.schema.supers_of(a1).to_vec();
            for a2 in supers {
                let concept = self.arena.prim(a2);
                changed |= self.add_facts(RuleId::S1, vec![Constraint::Member(s, concept)]);
            }
        }
        changed
    }

    /// S2: `s : A₁`, `s P t ∈ F`, `A₁ ⊑ ∀P.A₂ ∈ Σ` yields `t : A₂`.
    fn rule_s2(&mut self) -> bool {
        self.constraints_examined += self.facts.len();
        let candidates = self.primitive_memberships();
        let mut changed = false;
        for (s, a1) in candidates {
            let restrictions: Vec<_> = self.schema.value_restrictions_of(a1).to_vec();
            for (p, a2) in restrictions {
                let fillers: Vec<Ind> = self.facts.fillers_via(s, Attr::primitive(p)).collect();
                for t in fillers {
                    let concept = self.arena.prim(a2);
                    changed |= self.add_facts(RuleId::S2, vec![Constraint::Member(t, concept)]);
                }
            }
        }
        changed
    }

    /// S3: `s P t ∈ F`, `P ⊑ A₁ × A₂ ∈ Σ` yields `s : A₁` and `t : A₂`.
    fn rule_s3(&mut self) -> bool {
        self.constraints_examined += self.facts.len();
        let candidates: Vec<(Ind, Attr, Ind)> = self
            .facts
            .iter()
            .filter_map(|c| match *c {
                Constraint::Filler(s, r, t) if r.is_primitive() => Some((s, r, t)),
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, r, t) in candidates {
            let Some(p) = r.as_primitive() else { continue };
            let Some((dom, rng)) = self.schema.attr_typing(p) else {
                continue;
            };
            let dom_c = self.arena.prim(dom);
            let rng_c = self.arena.prim(rng);
            changed |= self.add_facts(
                RuleId::S3,
                vec![Constraint::Member(s, dom_c), Constraint::Member(t, rng_c)],
            );
        }
        changed
    }

    /// S4: `s : A`, `s P y`, `s P t ∈ F` with `A ⊑ (≤1 P) ∈ Σ` and `y` a
    /// variable identifies `y` with `t`.
    fn rule_s4(&mut self) -> bool {
        self.constraints_examined += self.facts.len();
        let memberships = self.primitive_memberships();
        for (s, a) in memberships {
            let functional: Vec<_> = self.schema.functional_attrs_of(a).collect();
            for p in functional {
                let attr = Attr::primitive(p);
                let fillers: Vec<Ind> = self.facts.fillers_via(s, attr).collect();
                if fillers.len() < 2 {
                    continue;
                }
                // Pick a variable to eliminate and any other filler to keep;
                // prefer keeping constants so the substitution is stable.
                let keep = fillers
                    .iter()
                    .copied()
                    .find(|f| f.is_const())
                    .unwrap_or(fillers[0]);
                let eliminate = fillers.iter().copied().find(|f| f.is_var() && *f != keep);
                if let Some(y) = eliminate {
                    self.substitute(RuleId::S4, y, keep);
                    return true;
                }
            }
        }
        false
    }

    /// S5: a goal `s : ∃(P:C)p` or `s : ∃(P:C)p ≐ ε` demands a `P`-filler
    /// of `s`; if none exists but some fact `s : A` with `A ⊑ ∃P ∈ Σ`
    /// guarantees one, create it.
    fn rule_s5(&mut self) -> bool {
        self.constraints_examined += self.goals.len();
        let candidates: Vec<(Ind, Attr)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => {
                    let path = match self.arena.concept(concept) {
                        Concept::Exists(p) => Some(p),
                        Concept::Agree(p, q) if self.arena.is_empty_path(q) => Some(p),
                        _ => None,
                    }?;
                    match self.arena.path(path) {
                        Path::Step(restriction, _) if restriction.attr.is_primitive() => {
                            Some((s, restriction.attr))
                        }
                        _ => None,
                    }
                }
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, attr) in candidates {
            if self.facts.has_any_filler_via(s, attr) {
                continue;
            }
            let p = attr.as_primitive().expect("checked primitive");
            let has_necessary = self
                .primitive_class_facts_of(s)
                .iter()
                .any(|&a| self.schema.is_necessary(a, p));
            if !has_necessary {
                continue;
            }
            let y = self.fresh_var();
            changed |= self.add_facts(RuleId::S5, vec![Constraint::Filler(s, attr, y)]);
        }
        changed
    }

    fn primitive_class_facts_of(&self, s: Ind) -> Vec<subq_concepts::symbol::ClassId> {
        self.facts
            .concepts_of(s)
            .filter_map(|c| match self.arena.concept(c) {
                Concept::Prim(class) => Some(class),
                _ => None,
            })
            .collect()
    }

    // ----- goal rules (Figure 9) -------------------------------------------

    /// G1: `s : C ⊓ D ∈ G` yields the goals `s : C` and `s : D`.
    fn rule_g1(&mut self) -> bool {
        self.constraints_examined += self.goals.len();
        let candidates: Vec<(Ind, ConceptId, ConceptId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::And(l, r) => Some((s, l, r)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, l, r) in candidates {
            changed |= self.add_goals(
                RuleId::G1,
                vec![Constraint::Member(s, l), Constraint::Member(s, r)],
            );
        }
        changed
    }

    /// G2 and G3: a goal path `s : ∃(R:C)p` (or its `≐ ε` form) and a fact
    /// `s R t` yield the goals `t : C` (G2) and, if `p ≠ ε`, also `t : ∃p`
    /// (G3).
    fn rule_g23(&mut self) -> bool {
        self.constraints_examined += self.goals.len();
        let candidates: Vec<(Ind, Restriction, PathId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => {
                    let path = match self.arena.concept(concept) {
                        Concept::Exists(p) => Some(p),
                        Concept::Agree(p, q) if self.arena.is_empty_path(q) => Some(p),
                        _ => None,
                    }?;
                    match self.arena.path(path) {
                        Path::Step(restriction, rest) => Some((s, restriction, rest)),
                        Path::Empty => None,
                    }
                }
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, restriction, rest) in candidates {
            let fillers: Vec<Ind> = self.facts.fillers_via(s, restriction.attr).collect();
            let rest_is_empty = self.arena.is_empty_path(rest);
            for t in fillers {
                if rest_is_empty {
                    changed |= self
                        .add_goals(RuleId::G2, vec![Constraint::Member(t, restriction.concept)]);
                } else {
                    let exists_rest = self.arena.exists(rest);
                    changed |= self.add_goals(
                        RuleId::G3,
                        vec![
                            Constraint::Member(t, restriction.concept),
                            Constraint::Member(t, exists_rest),
                        ],
                    );
                }
            }
        }
        changed
    }

    // ----- composition rules (Figure 10) -------------------------------------

    /// C1: facts `s : C` and `s : D` compose to `s : C ⊓ D` when the goal
    /// asks for it.
    fn rule_c1(&mut self) -> bool {
        self.constraints_examined += self.goals.len();
        let candidates: Vec<(Ind, ConceptId, ConceptId, ConceptId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::And(l, r) => Some((s, concept, l, r)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, whole, l, r) in candidates {
            if self.facts.has_member(s, l) && self.facts.has_member(s, r) {
                changed |= self.add_facts(RuleId::C1, vec![Constraint::Member(s, whole)]);
            }
        }
        changed
    }

    /// C2: a goal `s : ⊤` is trivially satisfied.
    fn rule_c2(&mut self) -> bool {
        self.constraints_examined += self.goals.len();
        let candidates: Vec<(Ind, ConceptId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::Top => Some((s, concept)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, concept) in candidates {
            changed |= self.add_facts(RuleId::C2, vec![Constraint::Member(s, concept)]);
        }
        changed
    }

    /// C3: a goal `s : ∃p` composes from a witnessing path fact (or `p = ε`).
    fn rule_c3(&mut self) -> bool {
        self.constraints_examined += self.goals.len();
        let candidates: Vec<(Ind, ConceptId, PathId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::Exists(p) => Some((s, concept, p)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, concept, p) in candidates {
            if self.arena.is_empty_path(p) || self.facts.has_any_path_target(s, p) {
                changed |= self.add_facts(RuleId::C3, vec![Constraint::Member(s, concept)]);
            }
        }
        changed
    }

    /// C4: a goal `s : ∃p ≐ ε` composes from a cyclic path fact `s p s`
    /// (or `p = ε`).
    fn rule_c4(&mut self) -> bool {
        self.constraints_examined += self.goals.len();
        let candidates: Vec<(Ind, ConceptId, PathId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => match self.arena.concept(concept) {
                    Concept::Agree(p, q) if self.arena.is_empty_path(q) => Some((s, concept, p)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, concept, p) in candidates {
            if self.arena.is_empty_path(p) || self.facts.has_path(s, p, s) {
                changed |= self.add_facts(RuleId::C4, vec![Constraint::Member(s, concept)]);
            }
        }
        changed
    }

    /// C5 and C6: path facts are composed bottom-up along goal paths.
    fn rule_c56(&mut self) -> bool {
        self.constraints_examined += self.goals.len();
        let candidates: Vec<(Ind, PathId, Restriction, PathId)> = self
            .goals
            .iter()
            .filter_map(|c| match *c {
                Constraint::Member(s, concept) => {
                    let path = match self.arena.concept(concept) {
                        Concept::Exists(p) => Some(p),
                        Concept::Agree(p, q) if self.arena.is_empty_path(q) => Some(p),
                        _ => None,
                    }?;
                    match self.arena.path(path) {
                        Path::Step(restriction, rest) => Some((s, path, restriction, rest)),
                        Path::Empty => None,
                    }
                }
                _ => None,
            })
            .collect();
        let mut changed = false;
        for (s, full_path, restriction, rest) in candidates {
            let rest_is_empty = self.arena.is_empty_path(rest);
            let fillers: Vec<Ind> = self
                .facts
                .fillers_via(s, restriction.attr)
                .filter(|t| self.facts.has_member(*t, restriction.concept))
                .collect();
            for t_prime in fillers {
                if rest_is_empty {
                    changed |= self
                        .add_facts(RuleId::C6, vec![Constraint::PathRel(s, full_path, t_prime)]);
                } else {
                    let targets: Vec<Ind> = self.facts.path_targets(t_prime, rest).collect();
                    for t in targets {
                        changed |=
                            self.add_facts(RuleId::C5, vec![Constraint::PathRel(s, full_path, t)]);
                    }
                }
            }
        }
        changed
    }
}

enum Group {
    Decomposition,
    Schema,
    Goal,
    Composition,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Completion;
    use subq_concepts::symbol::Vocabulary;

    /// A targeted check of the headline equivalence (the exhaustive suite
    /// lives in `tests/delta_equivalence.rs`): both engines produce the
    /// same sets, stats and trace on a schema-heavy instance.
    #[test]
    fn reference_and_delta_agree_on_a_schema_heavy_instance() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let person = voc.class("Person");
        let string = voc.class("String");
        let disease = voc.class("Disease");
        let suffers = voc.attribute("suffers");
        let name = voc.attribute("name");
        let mut schema = Schema::new();
        schema.add_isa(patient, person);
        schema.add_necessary(patient, suffers);
        schema.add_value_restriction(patient, suffers, disease);
        schema.add_necessary(person, name);
        schema.add_value_restriction(person, name, string);
        schema.add_functional(person, name);

        let build = |arena: &mut TermArena| {
            let patient_c = arena.prim(patient);
            let string_c = arena.prim(string);
            let disease_c = arena.prim(disease);
            let np = arena.path1(Attr::primitive(name), string_c);
            let has_name = arena.exists(np);
            let sp = arena.path1(Attr::primitive(suffers), disease_c);
            let has_sickness = arena.agree_epsilon(sp);
            let view = arena.and_all([patient_c, has_name, has_sickness]);
            (patient_c, view)
        };

        let mut arena_ref = TermArena::new();
        let (q1, v1) = build(&mut arena_ref);
        let mut reference = ReferenceCompletion::new(&mut arena_ref, &schema, q1, v1, true);
        let ref_stats = reference.run();

        let mut arena_delta = TermArena::new();
        let (q2, v2) = build(&mut arena_delta);
        let mut delta = Completion::new(&mut arena_delta, &schema, q2, v2, true);
        let delta_stats = delta.run();

        assert_eq!(ref_stats.outcome_only(), delta_stats.outcome_only());
        assert_eq!(reference.view_fact_derived(), delta.view_fact_derived());
        assert_eq!(reference.find_clash(), delta.find_clash());
        assert_eq!(
            reference.trace().expect("traced").rule_sequence(),
            delta.trace().expect("traced").rule_sequence()
        );
        let mut ref_facts: Vec<Constraint> = reference.facts().iter().copied().collect();
        let mut delta_facts: Vec<Constraint> = delta.facts().iter().copied().collect();
        ref_facts.sort();
        delta_facts.sort();
        assert_eq!(ref_facts, delta_facts);
    }

    /// The full scan really does quadratically more candidate work than
    /// the delta engine on a deep instance.
    #[test]
    fn full_scan_examines_far_more_candidates() {
        let mut voc = Vocabulary::new();
        let a = voc.class("A");
        let r = voc.attribute("r");
        let mut schema = Schema::new();
        schema.add_necessary(a, r);
        schema.add_value_restriction(a, r, a);

        let build = |arena: &mut TermArena| {
            let a_c = arena.prim(a);
            let path = arena.path_of(&[(Attr::primitive(r), a_c); 16]);
            let view = arena.exists(path);
            (a_c, view)
        };
        let mut arena_ref = TermArena::new();
        let (q1, v1) = build(&mut arena_ref);
        let mut reference = ReferenceCompletion::new(&mut arena_ref, &schema, q1, v1, false);
        let ref_stats = reference.run();

        let mut arena_delta = TermArena::new();
        let (q2, v2) = build(&mut arena_delta);
        let mut delta = Completion::new(&mut arena_delta, &schema, q2, v2, false);
        let delta_stats = delta.run();

        assert_eq!(ref_stats.outcome_only(), delta_stats.outcome_only());
        assert!(
            ref_stats.constraints_examined > 5 * delta_stats.constraints_examined,
            "reference examined {} vs delta {}",
            ref_stats.constraints_examined,
            delta_stats.constraints_examined
        );
    }
}
