//! Identifiers of the calculus rules (Figures 7–10) for traces and
//! statistics.

use std::fmt;

/// A rule of the calculus.
///
/// The names follow the paper: `D` for decomposition, `S` for schema, `G`
/// for goal, and `C` for composition rules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RuleId {
    /// D1: decompose a fact `s : C ⊓ D` into `s : C` and `s : D`.
    D1,
    /// D2: close attribute facts under inversion (`t R⁻¹ s` yields `s R t`).
    D2,
    /// D3: substitute a variable `y` with the constant `a` when `y : {a}`.
    D3,
    /// D4: give a fact `s : ∃p` a witness path `s p y` with fresh `y`.
    D4,
    /// D5: give a fact `s : ∃p ≐ ε` the cyclic witness `s p s`.
    D5,
    /// D6: unfold a path fact `s (R:C)p t` by one step with a fresh middle
    /// individual.
    D6,
    /// D7: unfold the last step of a path fact `s (R:C) t`.
    D7,
    /// S1: apply an inclusion axiom `A₁ ⊑ A₂`.
    S1,
    /// S2: apply a value restriction axiom `A₁ ⊑ ∀P.A₂` to a filler.
    S2,
    /// S3: apply an attribute typing axiom `P ⊑ A₁ × A₂`.
    S3,
    /// S4: identify fillers of a functional attribute (`A ⊑ (≤1 P)`).
    S4,
    /// S5: create a filler for a necessary attribute (`A ⊑ ∃P`) demanded by
    /// a goal.
    S5,
    /// G1: decompose a goal `s : C ⊓ D`.
    G1,
    /// G2: derive the filler subgoal of a one-step goal path.
    G2,
    /// G3: derive the filler and remaining-path subgoals of a longer goal
    /// path.
    G3,
    /// C1: compose a fact `s : C ⊓ D` from its conjunct facts.
    C1,
    /// C2: add the trivial fact `s : ⊤` demanded by a goal.
    C2,
    /// C3: compose a fact `s : ∃p` from a witnessing path fact.
    C3,
    /// C4: compose a fact `s : ∃p ≐ ε` from a cyclic path fact.
    C4,
    /// C5: compose a path fact `s (R:C)p t` from its first step and suffix.
    C5,
    /// C6: compose a one-step path fact `s (R:C) t`.
    C6,
}

impl RuleId {
    /// All rules in their priority groups (decomposition, schema, goal,
    /// composition).
    pub const ALL: [RuleId; 21] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::D6,
        RuleId::D7,
        RuleId::S1,
        RuleId::S2,
        RuleId::S3,
        RuleId::S4,
        RuleId::S5,
        RuleId::G1,
        RuleId::G2,
        RuleId::G3,
        RuleId::C1,
        RuleId::C2,
        RuleId::C3,
        RuleId::C4,
        RuleId::C5,
        RuleId::C6,
    ];

    /// Whether this is a decomposition rule (Figure 7).
    pub fn is_decomposition(self) -> bool {
        matches!(
            self,
            RuleId::D1
                | RuleId::D2
                | RuleId::D3
                | RuleId::D4
                | RuleId::D5
                | RuleId::D6
                | RuleId::D7
        )
    }

    /// Whether this is a schema rule (Figure 8).
    pub fn is_schema(self) -> bool {
        matches!(
            self,
            RuleId::S1 | RuleId::S2 | RuleId::S3 | RuleId::S4 | RuleId::S5
        )
    }

    /// Whether this is a goal rule (Figure 9).
    pub fn is_goal(self) -> bool {
        matches!(self, RuleId::G1 | RuleId::G2 | RuleId::G3)
    }

    /// Whether this is a composition rule (Figure 10).
    pub fn is_composition(self) -> bool {
        matches!(
            self,
            RuleId::C1 | RuleId::C2 | RuleId::C3 | RuleId::C4 | RuleId::C5 | RuleId::C6
        )
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_the_rules() {
        for rule in RuleId::ALL {
            let groups = [
                rule.is_decomposition(),
                rule.is_schema(),
                rule.is_goal(),
                rule.is_composition(),
            ];
            assert_eq!(
                groups.iter().filter(|&&g| g).count(),
                1,
                "{rule} must belong to exactly one group"
            );
        }
    }

    #[test]
    fn all_lists_each_rule_once() {
        let mut seen = std::collections::HashSet::new();
        for rule in RuleId::ALL {
            assert!(seen.insert(rule));
        }
        assert_eq!(seen.len(), 21);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(RuleId::D4.to_string(), "D4");
        assert_eq!(RuleId::S5.to_string(), "S5");
        assert_eq!(RuleId::C6.to_string(), "C6");
    }
}
