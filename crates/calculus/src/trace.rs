//! Derivation traces: a record of every rule application, sufficient to
//! regenerate Figure 11 of the paper.

use crate::constraint::Constraint;
use crate::ind::Ind;
use crate::rules::RuleId;
use subq_concepts::symbol::Vocabulary;
use subq_concepts::term::TermArena;

/// One rule application.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// The rule that was applied.
    pub rule: RuleId,
    /// Constraints added to the facts `F` by this application.
    pub added_facts: Vec<Constraint>,
    /// Constraints added to the goals `G` by this application.
    pub added_goals: Vec<Constraint>,
    /// A substitution `[from ↦ to]` performed by this application (rules D3
    /// and S4).
    pub substitution: Option<(Ind, Ind)>,
}

impl TraceStep {
    /// Renders the step as a single line in the style of Figure 11, e.g.
    /// `F ∪= {x consults y1, y1: Female ⊓ Doctor}   [D6]`.
    pub fn render(&self, voc: &Vocabulary, arena: &TermArena) -> String {
        let mut parts = Vec::new();
        if let Some((from, to)) = self.substitution {
            parts.push(format!("[{} ↦ {}]", from.render(voc), to.render(voc)));
        }
        if !self.added_facts.is_empty() {
            let facts: Vec<String> = self
                .added_facts
                .iter()
                .map(|c| c.render(voc, arena))
                .collect();
            parts.push(format!("F ∪= {{{}}}", facts.join(", ")));
        }
        if !self.added_goals.is_empty() {
            let goals: Vec<String> = self
                .added_goals
                .iter()
                .map(|c| c.render(voc, arena))
                .collect();
            parts.push(format!("G ∪= {{{}}}", goals.join(", ")));
        }
        format!("{:<60}  [{}]", parts.join("   "), self.rule)
    }
}

/// The full derivation of a completion.
#[derive(Clone, Debug, Default)]
pub struct DerivationTrace {
    steps: Vec<TraceStep>,
}

impl DerivationTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        DerivationTrace::default()
    }

    /// Records a rule application.
    pub fn push(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// The recorded steps, in application order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of rule applications.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no rule was applied.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// How many times a particular rule was applied.
    pub fn count_rule(&self, rule: RuleId) -> usize {
        self.steps.iter().filter(|s| s.rule == rule).count()
    }

    /// The rules applied, in order, with multiplicity.
    pub fn rule_sequence(&self) -> Vec<RuleId> {
        self.steps.iter().map(|s| s.rule).collect()
    }

    /// Renders the whole derivation, one rule application per line
    /// (Figure 11 style).
    pub fn render(&self, voc: &Vocabulary, arena: &TermArena) -> String {
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            out.push_str(&format!("{:>3}. {}\n", i + 1, step.render(voc, arena)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accumulates_and_counts() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let mut arena = TermArena::new();
        let p = arena.prim(patient);

        let mut trace = DerivationTrace::new();
        assert!(trace.is_empty());
        trace.push(TraceStep {
            rule: RuleId::D1,
            added_facts: vec![Constraint::Member(Ind::ROOT, p)],
            added_goals: vec![],
            substitution: None,
        });
        trace.push(TraceStep {
            rule: RuleId::G1,
            added_facts: vec![],
            added_goals: vec![Constraint::Member(Ind::ROOT, p)],
            substitution: None,
        });
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.count_rule(RuleId::D1), 1);
        assert_eq!(trace.count_rule(RuleId::C1), 0);
        assert_eq!(trace.rule_sequence(), vec![RuleId::D1, RuleId::G1]);

        let rendered = trace.render(&voc, &arena);
        assert!(rendered.contains("[D1]"));
        assert!(rendered.contains("x: Patient"));
        assert!(rendered.contains("G ∪= {x: Patient}"));
    }

    #[test]
    fn substitution_steps_render_the_mapping() {
        let mut voc = Vocabulary::new();
        let aspirin = voc.constant("Aspirin");
        let arena = TermArena::new();
        let step = TraceStep {
            rule: RuleId::D3,
            added_facts: vec![],
            added_goals: vec![],
            substitution: Some((Ind::Var(2), Ind::Const(aspirin))),
        };
        let rendered = step.render(&voc, &arena);
        assert!(rendered.contains("y2 ↦ Aspirin"));
        assert!(rendered.contains("[D3]"));
    }
}
