//! The canonical interpretation of a completed fact set (Section 4.2).
//!
//! For a clash-free complete pair `F : G`, the canonical interpretation
//! `I_F` is a Σ-model of `F` (Proposition 4.5). Its domain consists of the
//! individuals occurring in `F` plus one extra element `u` that serves as a
//! universal filler for necessary attributes whose witnesses were never
//! materialized (the schema rules only create fillers that a goal asks
//! for). The construction is:
//!
//! * `A^I  = { s | s : A ∈ F } ∪ { u }`
//! * `P^I  = { (s, t) | s P t ∈ F } ∪ { (u, u) }
//!          ∪ { (s, u) | s has no P-filler in F, but s : A ∈ F and A ⊑ ∃P ∈ Σ }`
//! * every constant denotes itself.
//!
//! The module materializes `I_F` as a [`subq_concepts::Interpretation`] so
//! the soundness statements of the paper can be executed as tests: the
//! canonical interpretation of a clash-free completion satisfies the schema
//! and makes the root an instance of the query concept.

use crate::constraint::{Constraint, ConstraintSet};
use crate::ind::Ind;
use std::collections::{HashMap, HashSet};
use subq_concepts::interpretation::{Element, Interpretation};
use subq_concepts::schema::{Schema, SchemaAxiom};
use subq_concepts::term::{Concept, TermArena};

/// The canonical interpretation together with the mapping from individuals
/// to domain elements.
#[derive(Clone, Debug)]
pub struct CanonicalModel {
    /// The interpretation `I_F`.
    pub interpretation: Interpretation,
    /// The element representing each individual of the fact set.
    pub element_of: HashMap<Ind, Element>,
    /// The universal filler element `u`.
    pub universal: Element,
}

impl CanonicalModel {
    /// Builds the canonical interpretation of a (complete) fact set.
    pub fn build(facts: &ConstraintSet, schema: &Schema, arena: &TermArena) -> CanonicalModel {
        let mut interpretation = Interpretation::new(0);
        let mut element_of: HashMap<Ind, Element> = HashMap::new();

        // Assign elements to individuals in a deterministic order.
        let mut individuals: Vec<Ind> = facts.individuals().iter().copied().collect();
        individuals.sort();
        for ind in &individuals {
            let element = interpretation.add_element();
            element_of.insert(*ind, element);
            if let Ind::Const(c) = ind {
                interpretation.set_constant(*c, element);
            }
        }
        let universal = interpretation.add_element();

        // Primitive memberships and attribute fillers.
        let mut class_ids: HashSet<subq_concepts::symbol::ClassId> = HashSet::new();
        let mut attr_ids: HashSet<subq_concepts::symbol::AttrId> = HashSet::new();
        for constraint in facts.iter() {
            match *constraint {
                Constraint::Member(s, concept) => {
                    if let Concept::Prim(class) = arena.concept(concept) {
                        class_ids.insert(class);
                        interpretation.add_class_member(class, element_of[&s]);
                    }
                }
                Constraint::Filler(s, attr, t) => {
                    if attr.is_primitive() {
                        let p = attr.base();
                        attr_ids.insert(p);
                        interpretation.add_attr_pair(p, element_of[&s], element_of[&t]);
                    }
                }
                Constraint::PathRel(..) => {}
            }
        }

        // Attributes mentioned only in the schema still need their (u, u)
        // loop so that necessary-attribute axioms hold at u.
        for axiom in schema.axioms() {
            match *axiom {
                SchemaAxiom::Inclusion(_, subq_concepts::schema::SlConcept::All(p, _))
                | SchemaAxiom::Inclusion(_, subq_concepts::schema::SlConcept::Exists(p))
                | SchemaAxiom::Inclusion(_, subq_concepts::schema::SlConcept::AtMostOne(p))
                | SchemaAxiom::AttrTyping(p, _, _) => {
                    attr_ids.insert(p);
                }
                SchemaAxiom::Inclusion(_, subq_concepts::schema::SlConcept::Prim(_)) => {}
            }
        }
        for class in schema.axioms().iter().flat_map(|axiom| match *axiom {
            SchemaAxiom::Inclusion(a, rhs) => {
                let mut v = vec![a];
                if let subq_concepts::schema::SlConcept::Prim(b)
                | subq_concepts::schema::SlConcept::All(_, b) = rhs
                {
                    v.push(b);
                }
                v
            }
            SchemaAxiom::AttrTyping(_, dom, rng) => vec![dom, rng],
        }) {
            class_ids.insert(class);
        }

        // u belongs to every primitive concept and every attribute loops on
        // it.
        for class in &class_ids {
            interpretation.add_class_member(*class, universal);
        }
        for attr in &attr_ids {
            interpretation.add_attr_pair(*attr, universal, universal);
        }

        // Missing necessary fillers point to u.
        for ind in &individuals {
            let classes: Vec<_> = facts
                .concepts_of(*ind)
                .filter_map(|c| match arena.concept(c) {
                    Concept::Prim(class) => Some(class),
                    _ => None,
                })
                .collect();
            for class in classes {
                for attr in schema.necessary_attrs_of(class) {
                    let has_filler = facts
                        .has_any_filler_via(*ind, subq_concepts::attribute::Attr::primitive(attr));
                    if !has_filler {
                        interpretation.add_attr_pair(attr, element_of[ind], universal);
                    }
                }
            }
        }

        CanonicalModel {
            interpretation,
            element_of,
            universal,
        }
    }

    /// The element of an individual, if it occurs in the fact set.
    pub fn element(&self, ind: Ind) -> Option<Element> {
        self.element_of.get(&ind).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Completion;
    use subq_concepts::attribute::Attr;
    use subq_concepts::symbol::Vocabulary;

    /// The canonical interpretation of a clash-free completion is a model
    /// of the schema and makes the root an instance of the query
    /// (Proposition 4.5 plus Corollary 4.3, executed).
    #[test]
    fn canonical_model_satisfies_schema_and_query() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let person = voc.class("Person");
        let disease = voc.class("Disease");
        let string = voc.class("String");
        let suffers = voc.attribute("suffers");
        let name = voc.attribute("name");
        let mut schema = Schema::new();
        schema.add_isa(patient, person);
        schema.add_necessary(patient, suffers);
        schema.add_value_restriction(patient, suffers, disease);
        schema.add_necessary(person, name);
        schema.add_value_restriction(person, name, string);
        schema.add_functional(person, name);

        let mut arena = TermArena::new();
        let patient_c = arena.prim(patient);
        let string_c = arena.prim(string);
        let view_path = arena.path1(Attr::primitive(name), string_c);
        let view = arena.exists(view_path);

        let mut completion = Completion::new(&mut arena, &schema, patient_c, view, false);
        completion.run();
        assert!(completion.find_clash().is_none());

        let model = CanonicalModel::build(completion.facts(), &schema, completion.arena());
        assert!(model.interpretation.satisfies_schema(&schema));
        let root = model.element(Ind::ROOT).expect("root individual exists");
        assert!(model
            .interpretation
            .satisfies_concept(completion.arena(), patient_c, root));
        // Since the subsumption holds, the root is also in the view's
        // extension.
        assert!(model
            .interpretation
            .satisfies_concept(completion.arena(), view, root));
    }

    /// When the subsumption fails, the canonical interpretation is the
    /// counter-model: the root satisfies the query but not the view.
    #[test]
    fn canonical_model_is_a_counterexample_when_not_subsumed() {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let doctor = voc.class("Doctor");
        let consults = voc.attribute("consults");
        let schema = Schema::new();

        let mut arena = TermArena::new();
        let patient_c = arena.prim(patient);
        let doctor_c = arena.prim(doctor);
        let path = arena.path1(Attr::primitive(consults), doctor_c);
        let view = arena.exists(path);

        let mut completion = Completion::new(&mut arena, &schema, patient_c, view, false);
        completion.run();
        assert!(!completion.view_fact_derived());
        assert!(completion.find_clash().is_none());

        let model = CanonicalModel::build(completion.facts(), &schema, completion.arena());
        let root = model.element(Ind::ROOT).expect("root exists");
        assert!(model
            .interpretation
            .satisfies_concept(completion.arena(), patient_c, root));
        assert!(!model
            .interpretation
            .satisfies_concept(completion.arena(), view, root));
    }

    /// Constants denote themselves in the canonical interpretation.
    #[test]
    fn constants_denote_themselves() {
        let mut voc = Vocabulary::new();
        let drug = voc.class("Drug");
        let takes = voc.attribute("takes");
        let aspirin = voc.constant("Aspirin");
        let schema = Schema::new();

        let mut arena = TermArena::new();
        let aspirin_c = arena.singleton(aspirin);
        let drug_c = arena.prim(drug);
        let restricted = arena.and(drug_c, aspirin_c);
        let path = arena.path1(Attr::primitive(takes), restricted);
        let query = arena.exists(path);
        let top = arena.top();

        let mut completion = Completion::new(&mut arena, &schema, query, top, false);
        completion.run();
        let model = CanonicalModel::build(completion.facts(), &schema, completion.arena());
        let elem = model
            .element(Ind::Const(aspirin))
            .expect("constant occurs in the facts after D3");
        assert_eq!(model.interpretation.constant(aspirin), Some(elem));
        assert!(model.interpretation.respects_unique_names());
    }
}
