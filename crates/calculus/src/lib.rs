//! The polynomial subsumption calculus of Buchheit, Jeusfeld, Nutt and
//! Staudt (EDBT'94), Section 4.
//!
//! Given an SL schema Σ and two QL concepts `C` (the query) and `D` (the
//! view), the calculus decides whether `C ⊑_Σ D`, i.e. whether in every
//! Σ-interpretation the extension of `C` is contained in the extension of
//! `D`. It works on a pair `F : G` of constraint systems — the *facts*
//! describing a prototypical instance of `C` and the *goals* guiding the
//! evaluation of `D` over those facts — and saturates them with four groups
//! of deterministic rules:
//!
//! * decomposition rules **D1–D7** break the query concept into primitive
//!   constraints (Figure 7),
//! * schema rules **S1–S5** add consequences of Σ (Figure 8),
//! * goal rules **G1–G3** derive subgoals of the view concept (Figure 9),
//! * composition rules **C1–C6** rebuild complex facts bottom-up as
//!   directed by the goals (Figure 10).
//!
//! Decomposition rules have priority over schema rules; rule S5 creates new
//! individuals only when a goal asks for them. The completion is unique up
//! to renaming of variables, has at most `M · N` individuals
//! (Proposition 4.8), and `C ⊑_Σ D` holds iff the completed facts contain
//! the constraint `o : D` or a clash (Theorem 4.7).
//!
//! ```
//! use subq_concepts::prelude::*;
//! use subq_calculus::SubsumptionChecker;
//!
//! let mut voc = Vocabulary::new();
//! let mut arena = TermArena::new();
//! let patient = voc.class("Patient");
//! let person = voc.class("Person");
//! let mut schema = Schema::new();
//! schema.add_isa(patient, person);
//!
//! let c = arena.prim(patient);
//! let d = arena.prim(person);
//! let checker = SubsumptionChecker::new(&schema);
//! assert!(checker.subsumes(&mut arena, c, d));
//! assert!(!checker.subsumes(&mut arena, d, c));
//! ```

pub mod canonical;
pub mod checker;
pub mod constraint;
pub mod engine;
pub mod ind;
pub mod metrics;
pub mod reference;
pub mod rules;
pub mod trace;

pub use checker::{
    SaturatedQuery, SharedSubsumptionMemo, SubsumptionCache, SubsumptionChecker,
    SubsumptionOutcome, SubsumptionVerdict,
};
pub use constraint::{Constraint, ConstraintSet};
pub use engine::{Completion, CompletionStats, SaturatedFacts};
pub use ind::Ind;
pub use rules::RuleId;
pub use trace::{DerivationTrace, TraceStep};
