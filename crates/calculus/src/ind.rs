//! Individuals: constants and variables.
//!
//! The calculus "augments the syntax by variables" and refers to constants
//! and variables alike as *individuals* (Section 4.1). Variables are
//! created fresh by the decomposition rules D4/D6 and by the schema rule
//! S5, and may later be identified with other individuals by the
//! substitution rules D3 and S4.

use std::fmt;
use subq_concepts::symbol::{ConstId, Vocabulary};

/// An individual occurring in a constraint: a constant `a` or a variable
/// `x`, `y₁`, `y₂`, ….
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ind {
    /// A constant of the vocabulary (interpreted as itself under the
    /// Unique Name Assumption).
    Const(ConstId),
    /// A variable, identified by its creation index; index 0 is the
    /// distinguished variable `x` the completion starts from.
    Var(u32),
}

impl Ind {
    /// The distinguished start variable `x` of a subsumption check.
    pub const ROOT: Ind = Ind::Var(0);

    /// Whether this individual is a variable.
    #[inline]
    pub fn is_var(self) -> bool {
        matches!(self, Ind::Var(_))
    }

    /// Whether this individual is a constant.
    #[inline]
    pub fn is_const(self) -> bool {
        matches!(self, Ind::Const(_))
    }

    /// The constant, if this individual is one.
    #[inline]
    pub fn as_const(self) -> Option<ConstId> {
        match self {
            Ind::Const(c) => Some(c),
            Ind::Var(_) => None,
        }
    }

    /// Renders the individual with vocabulary names (`x`, `y3`, or the
    /// constant's name).
    pub fn render(self, voc: &Vocabulary) -> String {
        match self {
            Ind::Const(c) => voc.const_name(c).to_owned(),
            Ind::Var(0) => "x".to_owned(),
            Ind::Var(i) => format!("y{i}"),
        }
    }
}

impl fmt::Debug for Ind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ind::Const(c) => write!(f, "{c:?}"),
            Ind::Var(0) => write!(f, "x"),
            Ind::Var(i) => write!(f, "y{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_variable_zero() {
        assert_eq!(Ind::ROOT, Ind::Var(0));
        assert!(Ind::ROOT.is_var());
        assert!(!Ind::ROOT.is_const());
    }

    #[test]
    fn const_accessors() {
        let c = ConstId::from_index(2);
        let ind = Ind::Const(c);
        assert!(ind.is_const());
        assert_eq!(ind.as_const(), Some(c));
        assert_eq!(Ind::Var(1).as_const(), None);
    }

    #[test]
    fn rendering_uses_names() {
        let mut voc = Vocabulary::new();
        let aspirin = voc.constant("Aspirin");
        assert_eq!(Ind::Const(aspirin).render(&voc), "Aspirin");
        assert_eq!(Ind::ROOT.render(&voc), "x");
        assert_eq!(Ind::Var(4).render(&voc), "y4");
    }
}
