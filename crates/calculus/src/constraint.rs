//! Constraints and indexed constraint systems.
//!
//! The calculus works on *constraints* of three forms (Section 4.1):
//!
//! * `s : C` — the individual `s` is an instance of the QL concept `C`,
//! * `s R t` — `t` is an `R`-filler of `s` for a (possibly inverted)
//!   attribute `R`,
//! * `s p t` — `s` and `t` are related through the path `p`.
//!
//! A [`ConstraintSet`] stores one of the two components of a pair `F : G`
//! and maintains the indexes the rules query: concepts per individual,
//! attribute successors per individual, and path facts per individual.

use crate::ind::Ind;
use std::collections::{HashMap, HashSet};
use subq_concepts::attribute::Attr;
use subq_concepts::display::DisplayCtx;
use subq_concepts::symbol::Vocabulary;
use subq_concepts::term::{ConceptId, PathId, TermArena};

/// A single constraint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Constraint {
    /// `s : C`.
    Member(Ind, ConceptId),
    /// `s R t`.
    Filler(Ind, Attr, Ind),
    /// `s p t`.
    PathRel(Ind, PathId, Ind),
}

impl Constraint {
    /// Renders the constraint in the paper's notation.
    pub fn render(&self, voc: &Vocabulary, arena: &TermArena) -> String {
        let ctx = DisplayCtx::new(voc, arena);
        match *self {
            Constraint::Member(s, c) => format!("{}: {}", s.render(voc), ctx.concept(c)),
            Constraint::Filler(s, r, t) => {
                format!("{} {} {}", s.render(voc), ctx.attr(r), t.render(voc))
            }
            Constraint::PathRel(s, p, t) => {
                format!("{} {} {}", s.render(voc), ctx.path(p), t.render(voc))
            }
        }
    }

    /// The individuals mentioned by the constraint.
    pub fn individuals(&self) -> Vec<Ind> {
        match *self {
            Constraint::Member(s, _) => vec![s],
            Constraint::Filler(s, _, t) | Constraint::PathRel(s, _, t) => vec![s, t],
        }
    }

    /// Applies the substitution `[from ↦ to]` to the constraint.
    pub fn substitute(&self, from: Ind, to: Ind) -> Constraint {
        let map = |i: Ind| if i == from { to } else { i };
        match *self {
            Constraint::Member(s, c) => Constraint::Member(map(s), c),
            Constraint::Filler(s, r, t) => Constraint::Filler(map(s), r, map(t)),
            Constraint::PathRel(s, p, t) => Constraint::PathRel(map(s), p, map(t)),
        }
    }
}

/// An indexed set of constraints (the facts `F` or the goals `G`).
#[derive(Clone, Debug, Default)]
pub struct ConstraintSet {
    all: HashSet<Constraint>,
    insertion_order: Vec<Constraint>,
    members_by_ind: HashMap<Ind, HashSet<ConceptId>>,
    fillers_by_src: HashMap<Ind, Vec<(Attr, Ind)>>,
    paths_by_src: HashMap<Ind, Vec<(PathId, Ind)>>,
}

impl ConstraintSet {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Adds a constraint; returns `true` if it was not already present.
    pub fn insert(&mut self, constraint: Constraint) -> bool {
        if !self.all.insert(constraint) {
            return false;
        }
        self.insertion_order.push(constraint);
        match constraint {
            Constraint::Member(s, c) => {
                self.members_by_ind.entry(s).or_default().insert(c);
            }
            Constraint::Filler(s, r, t) => {
                self.fillers_by_src.entry(s).or_default().push((r, t));
            }
            Constraint::PathRel(s, p, t) => {
                self.paths_by_src.entry(s).or_default().push((p, t));
            }
        }
        true
    }

    /// Whether a constraint is present.
    pub fn contains(&self, constraint: &Constraint) -> bool {
        self.all.contains(constraint)
    }

    /// Whether `s : C` is present.
    pub fn has_member(&self, s: Ind, concept: ConceptId) -> bool {
        self.members_by_ind
            .get(&s)
            .is_some_and(|cs| cs.contains(&concept))
    }

    /// Whether `s R t` is present.
    pub fn has_filler(&self, s: Ind, attr: Attr, t: Ind) -> bool {
        self.all.contains(&Constraint::Filler(s, attr, t))
    }

    /// Whether `s p t` is present.
    pub fn has_path(&self, s: Ind, path: PathId, t: Ind) -> bool {
        self.all.contains(&Constraint::PathRel(s, path, t))
    }

    /// The concepts `C` with `s : C` present.
    pub fn concepts_of(&self, s: Ind) -> impl Iterator<Item = ConceptId> + '_ {
        self.members_by_ind
            .get(&s)
            .into_iter()
            .flat_map(|cs| cs.iter().copied())
    }

    /// The `(R, t)` pairs with `s R t` present.
    pub fn fillers_of(&self, s: Ind) -> impl Iterator<Item = (Attr, Ind)> + '_ {
        self.fillers_by_src
            .get(&s)
            .into_iter()
            .flat_map(|v| v.iter().copied())
    }

    /// The fillers of `s` through a specific attribute.
    pub fn fillers_via(&self, s: Ind, attr: Attr) -> impl Iterator<Item = Ind> + '_ {
        self.fillers_of(s)
            .filter_map(move |(r, t)| if r == attr { Some(t) } else { None })
    }

    /// Whether `s` has any filler through `attr`.
    pub fn has_any_filler_via(&self, s: Ind, attr: Attr) -> bool {
        self.fillers_via(s, attr).next().is_some()
    }

    /// The `(p, t)` pairs with `s p t` present.
    pub fn paths_of(&self, s: Ind) -> impl Iterator<Item = (PathId, Ind)> + '_ {
        self.paths_by_src
            .get(&s)
            .into_iter()
            .flat_map(|v| v.iter().copied())
    }

    /// The targets `t` with `s p t` present for a specific path.
    pub fn path_targets(&self, s: Ind, path: PathId) -> impl Iterator<Item = Ind> + '_ {
        self.paths_of(s)
            .filter_map(move |(p, t)| if p == path { Some(t) } else { None })
    }

    /// Whether `s` has any target through path `p`.
    pub fn has_any_path_target(&self, s: Ind, path: PathId) -> bool {
        self.path_targets(s, path).next().is_some()
    }

    /// All constraints in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> + '_ {
        self.insertion_order.iter()
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// All individuals mentioned by some constraint.
    pub fn individuals(&self) -> HashSet<Ind> {
        let mut out = HashSet::new();
        for constraint in &self.insertion_order {
            out.extend(constraint.individuals());
        }
        out
    }

    /// Applies the substitution `[from ↦ to]` to every constraint,
    /// rebuilding the indexes.
    pub fn substitute(&mut self, from: Ind, to: Ind) {
        let constraints: Vec<Constraint> = self
            .insertion_order
            .iter()
            .map(|c| c.substitute(from, to))
            .collect();
        *self = ConstraintSet::new();
        for constraint in constraints {
            self.insert(constraint);
        }
    }

    /// Renders all constraints, one per line, in insertion order.
    pub fn render(&self, voc: &Vocabulary, arena: &TermArena) -> String {
        let mut out = String::new();
        for constraint in &self.insertion_order {
            out.push_str(&constraint.render(voc, arena));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_concepts::symbol::Vocabulary;

    fn fixture() -> (Vocabulary, TermArena, ConceptId, Attr) {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let consults = voc.attribute("consults");
        let mut arena = TermArena::new();
        let p = arena.prim(patient);
        (voc, arena, p, Attr::primitive(consults))
    }

    #[test]
    fn insert_is_idempotent_and_indexed() {
        let (_voc, _arena, patient, consults) = fixture();
        let mut set = ConstraintSet::new();
        let x = Ind::ROOT;
        let y = Ind::Var(1);
        assert!(set.insert(Constraint::Member(x, patient)));
        assert!(!set.insert(Constraint::Member(x, patient)));
        assert!(set.insert(Constraint::Filler(x, consults, y)));
        assert!(set.has_member(x, patient));
        assert!(set.has_filler(x, consults, y));
        assert!(!set.has_filler(y, consults, x));
        assert_eq!(set.len(), 2);
        assert_eq!(set.fillers_via(x, consults).collect::<Vec<_>>(), vec![y]);
        assert!(set.has_any_filler_via(x, consults));
        assert!(!set.has_any_filler_via(x, consults.inverse()));
    }

    #[test]
    fn path_index_and_targets() {
        let (_voc, mut arena, patient, consults) = fixture();
        let mut set = ConstraintSet::new();
        let path = arena.path1(consults, patient);
        let x = Ind::ROOT;
        let y = Ind::Var(1);
        assert!(set.insert(Constraint::PathRel(x, path, y)));
        assert!(set.has_path(x, path, y));
        assert!(set.has_any_path_target(x, path));
        assert_eq!(set.path_targets(x, path).collect::<Vec<_>>(), vec![y]);
        assert!(!set.has_any_path_target(y, path));
    }

    #[test]
    fn substitution_rewrites_and_reindexes() {
        let (mut voc, _arena, patient, consults) = fixture();
        let aspirin = voc.constant("Aspirin");
        let mut set = ConstraintSet::new();
        let y = Ind::Var(3);
        let a = Ind::Const(aspirin);
        set.insert(Constraint::Member(y, patient));
        set.insert(Constraint::Filler(Ind::ROOT, consults, y));
        set.substitute(y, a);
        assert!(set.has_member(a, patient));
        assert!(!set.has_member(y, patient));
        assert!(set.has_filler(Ind::ROOT, consults, a));
        assert_eq!(set.len(), 2);
        let inds = set.individuals();
        assert!(inds.contains(&a));
        assert!(!inds.contains(&y));
    }

    #[test]
    fn substitution_can_merge_constraints() {
        let (_voc, _arena, patient, _consults) = fixture();
        let mut set = ConstraintSet::new();
        set.insert(Constraint::Member(Ind::Var(1), patient));
        set.insert(Constraint::Member(Ind::Var(2), patient));
        assert_eq!(set.len(), 2);
        set.substitute(Ind::Var(2), Ind::Var(1));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn rendering_is_paper_style() {
        let (voc, arena, patient, consults) = fixture();
        let mut set = ConstraintSet::new();
        set.insert(Constraint::Member(Ind::ROOT, patient));
        set.insert(Constraint::Filler(Ind::ROOT, consults, Ind::Var(1)));
        let rendered = set.render(&voc, &arena);
        assert!(rendered.contains("x: Patient"));
        assert!(rendered.contains("x consults y1"));
    }
}
