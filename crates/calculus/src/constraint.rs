//! Constraints and indexed constraint systems.
//!
//! The calculus works on *constraints* of three forms (Section 4.1):
//!
//! * `s : C` — the individual `s` is an instance of the QL concept `C`,
//! * `s R t` — `t` is an `R`-filler of `s` for a (possibly inverted)
//!   attribute `R`,
//! * `s p t` — `s` and `t` are related through the path `p`.
//!
//! A [`ConstraintSet`] stores one of the two components of a pair `F : G`
//! and maintains every index the delta-driven rules query in O(1):
//!
//! * concepts per individual and **individuals per concept** (rules C1/C4,
//!   `view_individual`),
//! * attribute successors per individual, **keyed by `(individual,
//!   attribute)`** so `fillers_via` is a map lookup instead of a linear
//!   scan (rules S2, S4, S5, G2/G3, C5/C6, D6),
//! * a **reverse filler index** `t ↦ (R, s)` for the composition triggers
//!   that must react to a new membership or path fact at the *target* of
//!   an edge (rules C5/C6 and the inverse-attribute reasoning),
//! * path facts keyed by `(individual, path)` (rules D4, C3, C4, C5).
//!
//! All per-key vectors are in insertion order, so iterating an index yields
//! the same sequence a linear scan of the whole set would — the delta
//! engine relies on this to fire rules in exactly the order the paper's
//! (and the reference engine's) full scans would.

use crate::ind::Ind;
use fxhash::{FxHashMap, FxHashSet};
use subq_concepts::attribute::Attr;
use subq_concepts::display::DisplayCtx;
use subq_concepts::symbol::Vocabulary;
use subq_concepts::term::{ConceptId, PathId, TermArena};

/// A single constraint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Constraint {
    /// `s : C`.
    Member(Ind, ConceptId),
    /// `s R t`.
    Filler(Ind, Attr, Ind),
    /// `s p t`.
    PathRel(Ind, PathId, Ind),
}

impl Constraint {
    /// Renders the constraint in the paper's notation.
    pub fn render(&self, voc: &Vocabulary, arena: &TermArena) -> String {
        let ctx = DisplayCtx::new(voc, arena);
        match *self {
            Constraint::Member(s, c) => format!("{}: {}", s.render(voc), ctx.concept(c)),
            Constraint::Filler(s, r, t) => {
                format!("{} {} {}", s.render(voc), ctx.attr(r), t.render(voc))
            }
            Constraint::PathRel(s, p, t) => {
                format!("{} {} {}", s.render(voc), ctx.path(p), t.render(voc))
            }
        }
    }

    /// The individuals mentioned by the constraint (one or two), without
    /// allocating.
    pub fn individuals(&self) -> impl Iterator<Item = Ind> {
        let (pair, len) = match *self {
            Constraint::Member(s, _) => ([s, s], 1),
            Constraint::Filler(s, _, t) | Constraint::PathRel(s, _, t) => ([s, t], 2),
        };
        pair.into_iter().take(len)
    }

    /// Applies the substitution `[from ↦ to]` to the constraint.
    pub fn substitute(&self, from: Ind, to: Ind) -> Constraint {
        let map = |i: Ind| if i == from { to } else { i };
        match *self {
            Constraint::Member(s, c) => Constraint::Member(map(s), c),
            Constraint::Filler(s, r, t) => Constraint::Filler(map(s), r, map(t)),
            Constraint::PathRel(s, p, t) => Constraint::PathRel(map(s), p, map(t)),
        }
    }
}

/// An indexed set of constraints (the facts `F` or the goals `G`).
#[derive(Clone, Debug, Default)]
pub struct ConstraintSet {
    all: FxHashSet<Constraint>,
    insertion_order: Vec<Constraint>,
    individuals: FxHashSet<Ind>,
    members_by_ind: FxHashMap<Ind, FxHashSet<ConceptId>>,
    members_by_concept: FxHashMap<ConceptId, Vec<Ind>>,
    fillers_by_src: FxHashMap<Ind, Vec<(Attr, Ind)>>,
    fillers_by_src_attr: FxHashMap<(Ind, Attr), Vec<Ind>>,
    filler_pos: FxHashMap<(Ind, Attr, Ind), u32>,
    fillers_by_target: FxHashMap<Ind, Vec<(Attr, Ind)>>,
    paths_by_src: FxHashMap<Ind, Vec<(PathId, Ind)>>,
    paths_by_src_path: FxHashMap<(Ind, PathId), Vec<Ind>>,
}

impl ConstraintSet {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Adds a constraint; returns `true` if it was not already present.
    pub fn insert(&mut self, constraint: Constraint) -> bool {
        if !self.all.insert(constraint) {
            return false;
        }
        self.insertion_order.push(constraint);
        self.individuals.extend(constraint.individuals());
        match constraint {
            Constraint::Member(s, c) => {
                self.members_by_ind.entry(s).or_default().insert(c);
                self.members_by_concept.entry(c).or_default().push(s);
            }
            Constraint::Filler(s, r, t) => {
                self.fillers_by_src.entry(s).or_default().push((r, t));
                let via = self.fillers_by_src_attr.entry((s, r)).or_default();
                self.filler_pos.insert((s, r, t), via.len() as u32);
                via.push(t);
                self.fillers_by_target.entry(t).or_default().push((r, s));
            }
            Constraint::PathRel(s, p, t) => {
                self.paths_by_src.entry(s).or_default().push((p, t));
                self.paths_by_src_path.entry((s, p)).or_default().push(t);
            }
        }
        true
    }

    /// Whether a constraint is present.
    pub fn contains(&self, constraint: &Constraint) -> bool {
        self.all.contains(constraint)
    }

    /// Whether `s : C` is present.
    pub fn has_member(&self, s: Ind, concept: ConceptId) -> bool {
        self.members_by_ind
            .get(&s)
            .is_some_and(|cs| cs.contains(&concept))
    }

    /// Whether `s R t` is present.
    pub fn has_filler(&self, s: Ind, attr: Attr, t: Ind) -> bool {
        self.filler_pos.contains_key(&(s, attr, t))
    }

    /// Whether `s p t` is present.
    pub fn has_path(&self, s: Ind, path: PathId, t: Ind) -> bool {
        self.all.contains(&Constraint::PathRel(s, path, t))
    }

    /// The concepts `C` with `s : C` present (unordered).
    pub fn concepts_of(&self, s: Ind) -> impl Iterator<Item = ConceptId> + '_ {
        self.members_by_ind
            .get(&s)
            .into_iter()
            .flat_map(|cs| cs.iter().copied())
    }

    /// The individuals `s` with `s : C` present, in insertion order.
    pub fn members_of(&self, concept: ConceptId) -> &[Ind] {
        self.members_by_concept
            .get(&concept)
            .map_or(&[], Vec::as_slice)
    }

    /// The `(R, t)` pairs with `s R t` present, in insertion order.
    pub fn fillers_of(&self, s: Ind) -> impl Iterator<Item = (Attr, Ind)> + '_ {
        self.fillers_by_src
            .get(&s)
            .into_iter()
            .flat_map(|v| v.iter().copied())
    }

    /// The fillers of `s` through a specific attribute, in insertion order
    /// (an O(1) index lookup, not a scan).
    pub fn fillers_via(&self, s: Ind, attr: Attr) -> impl Iterator<Item = Ind> + '_ {
        self.fillers_via_slice(s, attr).iter().copied()
    }

    /// Slice access to the fillers of `s` through `attr`, in insertion
    /// order (rule pendings index into this).
    pub fn fillers_via_slice(&self, s: Ind, attr: Attr) -> &[Ind] {
        self.fillers_by_src_attr
            .get(&(s, attr))
            .map_or(&[], Vec::as_slice)
    }

    /// Position of `t` within [`ConstraintSet::fillers_via_slice`] of
    /// `(s, attr)`, if `s attr t` is present.
    pub fn filler_position(&self, s: Ind, attr: Attr, t: Ind) -> Option<u32> {
        self.filler_pos.get(&(s, attr, t)).copied()
    }

    /// The `(R, s)` pairs with `s R t` present — the reverse filler index,
    /// in insertion order.
    pub fn fillers_to(&self, t: Ind) -> &[(Attr, Ind)] {
        self.fillers_by_target.get(&t).map_or(&[], Vec::as_slice)
    }

    /// Whether `s` has any filler through `attr`.
    pub fn has_any_filler_via(&self, s: Ind, attr: Attr) -> bool {
        !self.fillers_via_slice(s, attr).is_empty()
    }

    /// The `(p, t)` pairs with `s p t` present, in insertion order.
    pub fn paths_of(&self, s: Ind) -> impl Iterator<Item = (PathId, Ind)> + '_ {
        self.paths_by_src
            .get(&s)
            .into_iter()
            .flat_map(|v| v.iter().copied())
    }

    /// The targets `t` with `s p t` present for a specific path, in
    /// insertion order (an O(1) index lookup, not a scan).
    pub fn path_targets(&self, s: Ind, path: PathId) -> impl Iterator<Item = Ind> + '_ {
        self.path_targets_slice(s, path).iter().copied()
    }

    /// Slice access to the targets of `s` through `path`.
    pub fn path_targets_slice(&self, s: Ind, path: PathId) -> &[Ind] {
        self.paths_by_src_path
            .get(&(s, path))
            .map_or(&[], Vec::as_slice)
    }

    /// Whether `s` has any target through path `p`.
    pub fn has_any_path_target(&self, s: Ind, path: PathId) -> bool {
        !self.path_targets_slice(s, path).is_empty()
    }

    /// All constraints in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> + '_ {
        self.insertion_order.iter()
    }

    /// The constraint at a given insertion position.
    pub fn nth(&self, index: usize) -> Constraint {
        self.insertion_order[index]
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// All individuals mentioned by some constraint (maintained
    /// incrementally; no scan).
    pub fn individuals(&self) -> &FxHashSet<Ind> {
        &self.individuals
    }

    /// Applies the substitution `[from ↦ to]` to every constraint,
    /// rebuilding the indexes. Constraints that become equal are merged,
    /// keeping the first occurrence's position.
    pub fn substitute(&mut self, from: Ind, to: Ind) {
        let order = std::mem::take(&mut self.insertion_order);
        *self = ConstraintSet::new();
        for constraint in order {
            self.insert(constraint.substitute(from, to));
        }
    }

    /// Renders all constraints, one per line, in insertion order.
    pub fn render(&self, voc: &Vocabulary, arena: &TermArena) -> String {
        let mut out = String::new();
        for constraint in &self.insertion_order {
            out.push_str(&constraint.render(voc, arena));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_concepts::symbol::Vocabulary;

    fn fixture() -> (Vocabulary, TermArena, ConceptId, Attr) {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let consults = voc.attribute("consults");
        let mut arena = TermArena::new();
        let p = arena.prim(patient);
        (voc, arena, p, Attr::primitive(consults))
    }

    #[test]
    fn insert_is_idempotent_and_indexed() {
        let (_voc, _arena, patient, consults) = fixture();
        let mut set = ConstraintSet::new();
        let x = Ind::ROOT;
        let y = Ind::Var(1);
        assert!(set.insert(Constraint::Member(x, patient)));
        assert!(!set.insert(Constraint::Member(x, patient)));
        assert!(set.insert(Constraint::Filler(x, consults, y)));
        assert!(set.has_member(x, patient));
        assert!(set.has_filler(x, consults, y));
        assert!(!set.has_filler(y, consults, x));
        assert_eq!(set.len(), 2);
        assert_eq!(set.fillers_via(x, consults).collect::<Vec<_>>(), vec![y]);
        assert!(set.has_any_filler_via(x, consults));
        assert!(!set.has_any_filler_via(x, consults.inverse()));
    }

    #[test]
    fn reverse_and_positional_filler_indexes() {
        let (_voc, _arena, patient, consults) = fixture();
        let mut set = ConstraintSet::new();
        let x = Ind::ROOT;
        let y = Ind::Var(1);
        let z = Ind::Var(2);
        set.insert(Constraint::Member(x, patient));
        set.insert(Constraint::Filler(x, consults, y));
        set.insert(Constraint::Filler(x, consults, z));
        set.insert(Constraint::Filler(z, consults, y));
        assert_eq!(set.fillers_via_slice(x, consults), &[y, z]);
        assert_eq!(set.filler_position(x, consults, y), Some(0));
        assert_eq!(set.filler_position(x, consults, z), Some(1));
        assert_eq!(set.filler_position(y, consults, x), None);
        assert_eq!(set.fillers_to(y), &[(consults, x), (consults, z)]);
        assert_eq!(set.members_of(patient), &[x]);
    }

    #[test]
    fn path_index_and_targets() {
        let (_voc, mut arena, patient, consults) = fixture();
        let mut set = ConstraintSet::new();
        let path = arena.path1(consults, patient);
        let x = Ind::ROOT;
        let y = Ind::Var(1);
        assert!(set.insert(Constraint::PathRel(x, path, y)));
        assert!(set.has_path(x, path, y));
        assert!(set.has_any_path_target(x, path));
        assert_eq!(set.path_targets(x, path).collect::<Vec<_>>(), vec![y]);
        assert!(!set.has_any_path_target(y, path));
    }

    #[test]
    fn substitution_rewrites_and_reindexes() {
        let (mut voc, _arena, patient, consults) = fixture();
        let aspirin = voc.constant("Aspirin");
        let mut set = ConstraintSet::new();
        let y = Ind::Var(3);
        let a = Ind::Const(aspirin);
        set.insert(Constraint::Member(y, patient));
        set.insert(Constraint::Filler(Ind::ROOT, consults, y));
        set.substitute(y, a);
        assert!(set.has_member(a, patient));
        assert!(!set.has_member(y, patient));
        assert!(set.has_filler(Ind::ROOT, consults, a));
        assert_eq!(set.len(), 2);
        let inds = set.individuals();
        assert!(inds.contains(&a));
        assert!(!inds.contains(&y));
        assert_eq!(set.fillers_to(a), &[(consults, Ind::ROOT)]);
    }

    #[test]
    fn substitution_can_merge_constraints() {
        let (_voc, _arena, patient, _consults) = fixture();
        let mut set = ConstraintSet::new();
        set.insert(Constraint::Member(Ind::Var(1), patient));
        set.insert(Constraint::Member(Ind::Var(2), patient));
        assert_eq!(set.len(), 2);
        set.substitute(Ind::Var(2), Ind::Var(1));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn individuals_iterator_is_exact() {
        let (_voc, _arena, patient, consults) = fixture();
        let member = Constraint::Member(Ind::ROOT, patient);
        assert_eq!(member.individuals().collect::<Vec<_>>(), vec![Ind::ROOT]);
        let filler = Constraint::Filler(Ind::ROOT, consults, Ind::Var(1));
        assert_eq!(
            filler.individuals().collect::<Vec<_>>(),
            vec![Ind::ROOT, Ind::Var(1)]
        );
    }

    #[test]
    fn rendering_is_paper_style() {
        let (voc, arena, patient, consults) = fixture();
        let mut set = ConstraintSet::new();
        set.insert(Constraint::Member(Ind::ROOT, patient));
        set.insert(Constraint::Filler(Ind::ROOT, consults, Ind::Var(1)));
        let rendered = set.render(&voc, &arena);
        assert!(rendered.contains("x: Patient"));
        assert!(rendered.contains("x consults y1"));
    }
}
