//! The transformational (first-order) semantics of SL and QL
//! (Table 1, column 2).
//!
//! Every QL concept `C` is mapped to a first-order formula `F_C(α)` with
//! one free variable, every attribute and path to a formula with two free
//! variables, and every schema axiom to a closed formula, exactly as in
//! Table 1 and Figure 2 of the paper. The formulas can be evaluated over a
//! finite [`Interpretation`], which lets property tests verify that the two
//! columns of Table 1 agree (experiment E4).

use crate::attribute::Attr;
use crate::interpretation::{Element, Interpretation};
use crate::schema::{SchemaAxiom, SlConcept};
use crate::symbol::{AttrId, ClassId, ConstId, Vocabulary};
use crate::term::{Concept, ConceptId, Path, PathId, TermArena};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A first-order variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

/// A first-order term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant of the vocabulary.
    Const(ConstId),
}

/// A first-order formula over unary (class) and binary (attribute) atoms.
#[derive(Clone, Debug, PartialEq)]
pub enum Formula {
    /// The true formula.
    True,
    /// `A(t)` — membership of `t` in the primitive class `A`.
    ClassAtom(ClassId, Term),
    /// `P(s, t)` — the attribute atom.
    AttrAtom(AttrId, Term, Term),
    /// `s ≐ t` — equality.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Finite conjunction.
    And(Vec<Formula>),
    /// Finite disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification.
    Exists(Var, Box<Formula>),
    /// Universal quantification.
    Forall(Var, Box<Formula>),
}

impl Formula {
    /// Conjunction that flattens trivial cases.
    pub fn and(conjuncts: Vec<Formula>) -> Formula {
        let filtered: Vec<Formula> = conjuncts
            .into_iter()
            .filter(|f| !matches!(f, Formula::True))
            .collect();
        match filtered.len() {
            0 => Formula::True,
            1 => filtered.into_iter().next().expect("len checked"),
            _ => Formula::And(filtered),
        }
    }

    /// Number of connectives and atoms in the formula.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::ClassAtom(..) | Formula::AttrAtom(..) | Formula::Eq(..) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Implies(a, b) => 1 + a.size() + b.size(),
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.size(),
        }
    }

    /// Renders the formula with vocabulary names, in a notation close to
    /// the paper's Figures 2 and 4.
    pub fn render(&self, voc: &Vocabulary) -> String {
        let mut out = String::new();
        self.render_into(voc, &mut out);
        out
    }

    fn render_term(term: Term, out: &mut String, voc: &Vocabulary) {
        match term {
            Term::Var(Var(i)) => {
                let _ = write!(out, "x{i}");
            }
            Term::Const(c) => out.push_str(voc.const_name(c)),
        }
    }

    fn render_into(&self, voc: &Vocabulary, out: &mut String) {
        match self {
            Formula::True => out.push_str("true"),
            Formula::ClassAtom(class, t) => {
                out.push_str(voc.class_name(*class));
                out.push('(');
                Self::render_term(*t, out, voc);
                out.push(')');
            }
            Formula::AttrAtom(attr, s, t) => {
                out.push_str(voc.attr_name(*attr));
                out.push('(');
                Self::render_term(*s, out, voc);
                out.push_str(", ");
                Self::render_term(*t, out, voc);
                out.push(')');
            }
            Formula::Eq(s, t) => {
                Self::render_term(*s, out, voc);
                out.push_str(" ≐ ");
                Self::render_term(*t, out, voc);
            }
            Formula::Not(f) => {
                out.push('¬');
                out.push('(');
                f.render_into(voc, out);
                out.push(')');
            }
            Formula::And(fs) => {
                out.push('(');
                for (i, f) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" ∧ ");
                    }
                    f.render_into(voc, out);
                }
                out.push(')');
            }
            Formula::Or(fs) => {
                out.push('(');
                for (i, f) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" ∨ ");
                    }
                    f.render_into(voc, out);
                }
                out.push(')');
            }
            Formula::Implies(a, b) => {
                out.push('(');
                a.render_into(voc, out);
                out.push_str(" ⇒ ");
                b.render_into(voc, out);
                out.push(')');
            }
            Formula::Exists(Var(i), f) => {
                let _ = write!(out, "∃x{i}. ");
                f.render_into(voc, out);
            }
            Formula::Forall(Var(i), f) => {
                let _ = write!(out, "∀x{i}. ");
                f.render_into(voc, out);
            }
        }
    }
}

/// Generator of fresh first-order variables.
#[derive(Debug, Default)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    /// Creates a generator whose first variable is `x0`.
    pub fn new() -> Self {
        VarGen::default()
    }

    /// Returns a fresh variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var(self.next);
        self.next += 1;
        v
    }
}

/// Translates a QL concept into a formula with free variable `free`
/// (Table 1, column 2).
pub fn concept_to_formula(
    arena: &TermArena,
    concept: ConceptId,
    free: Var,
    gen: &mut VarGen,
) -> Formula {
    match arena.concept(concept) {
        Concept::Prim(class) => Formula::ClassAtom(class, Term::Var(free)),
        Concept::Top => Formula::True,
        Concept::Singleton(constant) => Formula::Eq(Term::Var(free), Term::Const(constant)),
        Concept::And(l, r) => Formula::and(vec![
            concept_to_formula(arena, l, free, gen),
            concept_to_formula(arena, r, free, gen),
        ]),
        Concept::Exists(path) => {
            let end = gen.fresh();
            let body = path_to_formula(arena, path, Term::Var(free), Term::Var(end), gen);
            Formula::Exists(end, Box::new(body))
        }
        Concept::Agree(p, q) => {
            let end = gen.fresh();
            let left = path_to_formula(arena, p, Term::Var(free), Term::Var(end), gen);
            let right = path_to_formula(arena, q, Term::Var(free), Term::Var(end), gen);
            Formula::Exists(end, Box::new(Formula::and(vec![left, right])))
        }
    }
}

/// Translates a possibly inverted attribute into the formula `R(s, t)`.
pub fn attr_to_formula(attr: Attr, s: Term, t: Term) -> Formula {
    if attr.is_inverted() {
        Formula::AttrAtom(attr.base(), t, s)
    } else {
        Formula::AttrAtom(attr.base(), s, t)
    }
}

/// Translates a path into a formula relating `from` and `to`
/// (`F_p(α, β)` of Table 1).
pub fn path_to_formula(
    arena: &TermArena,
    path: PathId,
    from: Term,
    to: Term,
    gen: &mut VarGen,
) -> Formula {
    match arena.path(path) {
        Path::Empty => Formula::Eq(from, to),
        Path::Step(restriction, rest) => {
            if arena.is_empty_path(rest) {
                // Last step: relate `from` directly to `to`.
                let attr_f = attr_to_formula(restriction.attr, from, to);
                let to_var = match to {
                    Term::Var(v) => v,
                    Term::Const(_) => {
                        // Constants as endpoints only arise in hand-written
                        // formulas; introduce an intermediate variable.
                        let v = gen.fresh();
                        let c_f = concept_to_formula(arena, restriction.concept, v, gen);
                        let eq = Formula::Eq(Term::Var(v), to);
                        return Formula::and(vec![
                            attr_to_formula(restriction.attr, from, Term::Var(v)),
                            c_f,
                            eq,
                        ]);
                    }
                };
                let c_f = concept_to_formula(arena, restriction.concept, to_var, gen);
                Formula::and(vec![attr_f, c_f])
            } else {
                let mid = gen.fresh();
                let attr_f = attr_to_formula(restriction.attr, from, Term::Var(mid));
                let c_f = concept_to_formula(arena, restriction.concept, mid, gen);
                let rest_f = path_to_formula(arena, rest, Term::Var(mid), to, gen);
                Formula::Exists(mid, Box::new(Formula::and(vec![attr_f, c_f, rest_f])))
            }
        }
    }
}

/// Translates an SL concept into a formula with free variable `free`.
pub fn sl_concept_to_formula(concept: SlConcept, free: Var, gen: &mut VarGen) -> Formula {
    match concept {
        SlConcept::Prim(class) => Formula::ClassAtom(class, Term::Var(free)),
        SlConcept::All(attr, class) => {
            let y = gen.fresh();
            Formula::Forall(
                y,
                Box::new(Formula::Implies(
                    Box::new(Formula::AttrAtom(attr, Term::Var(free), Term::Var(y))),
                    Box::new(Formula::ClassAtom(class, Term::Var(y))),
                )),
            )
        }
        SlConcept::Exists(attr) => {
            let y = gen.fresh();
            Formula::Exists(
                y,
                Box::new(Formula::AttrAtom(attr, Term::Var(free), Term::Var(y))),
            )
        }
        SlConcept::AtMostOne(attr) => {
            let y = gen.fresh();
            let z = gen.fresh();
            Formula::Forall(
                y,
                Box::new(Formula::Forall(
                    z,
                    Box::new(Formula::Implies(
                        Box::new(Formula::And(vec![
                            Formula::AttrAtom(attr, Term::Var(free), Term::Var(y)),
                            Formula::AttrAtom(attr, Term::Var(free), Term::Var(z)),
                        ])),
                        Box::new(Formula::Eq(Term::Var(y), Term::Var(z))),
                    )),
                )),
            )
        }
    }
}

/// Translates a schema axiom into a closed formula (Figure 2 style).
pub fn axiom_to_formula(axiom: &SchemaAxiom, gen: &mut VarGen) -> Formula {
    match *axiom {
        SchemaAxiom::Inclusion(class, rhs) => {
            let x = gen.fresh();
            let body = Formula::Implies(
                Box::new(Formula::ClassAtom(class, Term::Var(x))),
                Box::new(sl_concept_to_formula(rhs, x, gen)),
            );
            Formula::Forall(x, Box::new(body))
        }
        SchemaAxiom::AttrTyping(attr, dom, rng) => {
            let x = gen.fresh();
            let y = gen.fresh();
            let body = Formula::Implies(
                Box::new(Formula::AttrAtom(attr, Term::Var(x), Term::Var(y))),
                Box::new(Formula::And(vec![
                    Formula::ClassAtom(dom, Term::Var(x)),
                    Formula::ClassAtom(rng, Term::Var(y)),
                ])),
            );
            Formula::Forall(x, Box::new(Formula::Forall(y, Box::new(body))))
        }
    }
}

/// A variable assignment used during formula evaluation.
pub type Assignment = HashMap<Var, Element>;

/// Evaluates a formula over a finite interpretation under an assignment of
/// its free variables. Quantifiers range over the whole domain.
///
/// Equalities and atoms mentioning a constant that the interpretation does
/// not map evaluate to `false`, matching the set semantics where an
/// unmapped singleton denotes the empty set.
pub fn eval_formula(
    interp: &Interpretation,
    formula: &Formula,
    assignment: &mut Assignment,
) -> bool {
    fn term_value(interp: &Interpretation, term: Term, assignment: &Assignment) -> Option<Element> {
        match term {
            Term::Var(v) => assignment.get(&v).copied(),
            Term::Const(c) => interp.constant(c),
        }
    }

    match formula {
        Formula::True => true,
        Formula::ClassAtom(class, t) => {
            term_value(interp, *t, assignment).is_some_and(|e| interp.is_in_class(*class, e))
        }
        Formula::AttrAtom(attr, s, t) => {
            match (
                term_value(interp, *s, assignment),
                term_value(interp, *t, assignment),
            ) {
                (Some(a), Some(b)) => interp.has_attr_pair(*attr, a, b),
                _ => false,
            }
        }
        Formula::Eq(s, t) => {
            match (
                term_value(interp, *s, assignment),
                term_value(interp, *t, assignment),
            ) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            }
        }
        Formula::Not(f) => !eval_formula(interp, f, assignment),
        Formula::And(fs) => fs.iter().all(|f| eval_formula(interp, f, assignment)),
        Formula::Or(fs) => fs.iter().any(|f| eval_formula(interp, f, assignment)),
        Formula::Implies(a, b) => {
            !eval_formula(interp, a, assignment) || eval_formula(interp, b, assignment)
        }
        Formula::Exists(v, f) => {
            let saved = assignment.get(v).copied();
            let mut holds = false;
            for e in interp.domain() {
                assignment.insert(*v, e);
                if eval_formula(interp, f, assignment) {
                    holds = true;
                    break;
                }
            }
            restore(assignment, *v, saved);
            holds
        }
        Formula::Forall(v, f) => {
            let saved = assignment.get(v).copied();
            let mut holds = true;
            for e in interp.domain() {
                assignment.insert(*v, e);
                if !eval_formula(interp, f, assignment) {
                    holds = false;
                    break;
                }
            }
            restore(assignment, *v, saved);
            holds
        }
    }
}

fn restore(assignment: &mut Assignment, var: Var, saved: Option<Element>) {
    match saved {
        Some(e) => {
            assignment.insert(var, e);
        }
        None => {
            assignment.remove(&var);
        }
    }
}

/// Evaluates `F_C(x)` at a specific domain element: the transformational
/// counterpart of [`Interpretation::satisfies_concept`].
pub fn concept_holds_at(
    arena: &TermArena,
    interp: &Interpretation,
    concept: ConceptId,
    element: Element,
) -> bool {
    let mut gen = VarGen::new();
    let free = gen.fresh();
    let formula = concept_to_formula(arena, concept, free, &mut gen);
    let mut assignment = Assignment::new();
    assignment.insert(free, element);
    eval_formula(interp, &formula, &mut assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Vocabulary;

    fn medical() -> (Vocabulary, TermArena, Interpretation) {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let doctor = voc.class("Doctor");
        let consults = voc.attribute("consults");
        let arena = TermArena::new();
        let mut interp = Interpretation::new(2);
        interp.add_class_member(patient, Element(0));
        interp.add_class_member(doctor, Element(1));
        interp.add_attr_pair(consults, Element(0), Element(1));
        (voc, arena, interp)
    }

    #[test]
    fn class_atom_evaluation() {
        let (mut voc, mut arena, interp) = medical();
        let patient = voc.class("Patient");
        let c = arena.prim(patient);
        assert!(concept_holds_at(&arena, &interp, c, Element(0)));
        assert!(!concept_holds_at(&arena, &interp, c, Element(1)));
    }

    #[test]
    fn exists_path_formula_matches_set_semantics() {
        let (mut voc, mut arena, interp) = medical();
        let doctor = voc.class("Doctor");
        let consults = voc.attribute("consults");
        let d = arena.prim(doctor);
        let path = arena.path1(Attr::primitive(consults), d);
        let c = arena.exists(path);
        for e in interp.domain() {
            assert_eq!(
                concept_holds_at(&arena, &interp, c, e),
                interp.satisfies_concept(&arena, c, e),
                "transformational and set semantics must agree at {e:?}"
            );
        }
    }

    #[test]
    fn agreement_formula_requires_common_filler() {
        let (mut voc, mut arena, mut interp) = medical();
        let consults = voc.attribute("consults");
        let treats = voc.attribute("treats");
        let top = arena.top();
        let p = arena.path1(Attr::primitive(consults), top);
        let q = arena.path1(Attr::primitive(treats), top);
        let agree = arena.agree(p, q);
        assert!(!concept_holds_at(&arena, &interp, agree, Element(0)));
        interp.add_attr_pair(treats, Element(0), Element(1));
        assert!(concept_holds_at(&arena, &interp, agree, Element(0)));
    }

    #[test]
    fn sl_formulas_match_sl_set_semantics() {
        let (mut voc, _arena, interp) = medical();
        let doctor = voc.class("Doctor");
        let consults = voc.attribute("consults");
        for sl in [
            SlConcept::Prim(doctor),
            SlConcept::All(consults, doctor),
            SlConcept::Exists(consults),
            SlConcept::AtMostOne(consults),
        ] {
            let mut gen = VarGen::new();
            let x = gen.fresh();
            let formula = sl_concept_to_formula(sl, x, &mut gen);
            for e in interp.domain() {
                let mut assignment = Assignment::new();
                assignment.insert(x, e);
                assert_eq!(
                    eval_formula(&interp, &formula, &mut assignment),
                    interp.eval_sl_concept(sl).contains(&e),
                    "SL semantics disagree on {sl:?} at {e:?}"
                );
            }
        }
    }

    #[test]
    fn axiom_formulas_match_axiom_satisfaction() {
        let (mut voc, _arena, interp) = medical();
        let patient = voc.class("Patient");
        let doctor = voc.class("Doctor");
        let consults = voc.attribute("consults");
        let axioms = [
            SchemaAxiom::Inclusion(patient, SlConcept::All(consults, doctor)),
            SchemaAxiom::Inclusion(doctor, SlConcept::Exists(consults)),
            SchemaAxiom::AttrTyping(consults, patient, doctor),
            SchemaAxiom::AttrTyping(consults, doctor, doctor),
        ];
        for axiom in &axioms {
            let mut gen = VarGen::new();
            let formula = axiom_to_formula(axiom, &mut gen);
            let mut assignment = Assignment::new();
            assert_eq!(
                eval_formula(&interp, &formula, &mut assignment),
                interp.satisfies_axiom(axiom),
                "axiom semantics disagree on {axiom:?}"
            );
        }
    }

    #[test]
    fn rendering_uses_vocabulary_names() {
        let (voc, mut arena, _interp) = medical();
        let patient = voc.find_class("Patient").expect("interned");
        let consults = voc.find_attribute("consults").expect("interned");
        let doctor = voc.find_class("Doctor").expect("interned");
        let d = arena.prim(doctor);
        let path = arena.path1(Attr::primitive(consults), d);
        let p = arena.prim(patient);
        let ex = arena.exists(path);
        let c = arena.and(p, ex);
        let mut gen = VarGen::new();
        let x = gen.fresh();
        let f = concept_to_formula(&arena, c, x, &mut gen);
        let rendered = f.render(&voc);
        assert!(rendered.contains("Patient(x0)"));
        assert!(rendered.contains("consults(x0, x1)"));
        assert!(rendered.contains("Doctor(x1)"));
        assert!(rendered.contains('∧'));
        assert!(rendered.contains("∃x1"));
    }

    #[test]
    fn formula_size_counts_connectives() {
        let f = Formula::And(vec![Formula::True, Formula::Not(Box::new(Formula::True))]);
        assert_eq!(f.size(), 4);
        assert_eq!(Formula::and(vec![]).size(), 1);
    }

    #[test]
    fn unmapped_constant_atoms_are_false() {
        let (mut voc, mut arena, interp) = medical();
        let aspirin = voc.constant("Aspirin");
        let sing = arena.singleton(aspirin);
        assert!(!concept_holds_at(&arena, &interp, sing, Element(0)));
    }
}
