//! Abstract schema and query concept languages for object-oriented databases.
//!
//! This crate implements the two abstract languages of Buchheit, Jeusfeld,
//! Nutt and Staudt, *Subsumption between Queries to Object-Oriented
//! Databases* (EDBT'94):
//!
//! * **SL**, the schema language, whose axioms capture the structural part
//!   of an OODB schema: subclass inclusions `A ⊑ D` with
//!   `D ::= A | ∀P.A | ∃P | (≤1 P)` and attribute typings `P ⊑ A₁ × A₂`
//!   (see [`schema`]).
//! * **QL**, the query language, whose concepts capture the structural part
//!   of query classes: `C ::= A | ⊤ | {a} | C ⊓ D | ∃p | ∃p ≐ q` over paths
//!   of restricted, possibly inverted attributes (see [`term`]).
//!
//! Both languages are given their two semantics from Table 1 of the paper:
//! the *set semantics* over finite interpretations ([`interpretation`]) and
//! the *transformational semantics* into first-order formulas ([`fol`]).
//!
//! Concepts and paths are hash-consed into a [`term::TermArena`], so that
//! structural equality is identifier equality and the downstream calculus
//! can treat constraints as small `Copy` values.
//!
//! # Quick example
//!
//! ```
//! use subq_concepts::prelude::*;
//!
//! let mut voc = Vocabulary::new();
//! let doctor = voc.class("Doctor");
//! let consults = voc.attribute("consults");
//!
//! let mut arena = TermArena::new();
//! let d = arena.prim(doctor);
//! // ∃(consults: Doctor)
//! let path = arena.path1(Attr::primitive(consults), d);
//! let c = arena.exists(path);
//! assert_eq!(arena.concept_size(c), 3);
//! ```

pub mod attribute;
pub mod builder;
pub mod display;
pub mod error;
pub mod fol;
pub mod interpretation;
pub mod normalize;
pub mod schema;
pub mod symbol;
pub mod term;

pub use attribute::Attr;
pub use builder::ConceptBuilder;
pub use error::ConceptError;
pub use interpretation::{Element, Interpretation};
pub use schema::{Schema, SchemaAxiom, SlConcept};
pub use symbol::{AttrId, ClassId, ConstId, Vocabulary};
pub use term::{Concept, ConceptId, Path, PathId, Restriction, TermArena};

/// Convenient glob-import of the most frequently used types.
pub mod prelude {
    pub use crate::attribute::Attr;
    pub use crate::builder::ConceptBuilder;
    pub use crate::display::DisplayCtx;
    pub use crate::fol::{Formula, Term, Var};
    pub use crate::interpretation::{Element, Interpretation};
    pub use crate::normalize::normalize_concept;
    pub use crate::schema::{Schema, SchemaAxiom, SlConcept};
    pub use crate::symbol::{AttrId, ClassId, ConstId, Vocabulary};
    pub use crate::term::{Concept, ConceptId, Path, PathId, Restriction, TermArena};
}
