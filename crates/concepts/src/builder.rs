//! A name-based convenience builder for QL concepts.
//!
//! The arena API works on interned identifiers; tests, examples, and the
//! workload generators often want to write concepts down by name. The
//! [`ConceptBuilder`] borrows a [`Vocabulary`] and a [`TermArena`] and
//! interns names on the fly.

use crate::attribute::Attr;
use crate::symbol::Vocabulary;
use crate::term::{ConceptId, PathId, TermArena};

/// Builder interning names and constructing concepts in one go.
pub struct ConceptBuilder<'a> {
    voc: &'a mut Vocabulary,
    arena: &'a mut TermArena,
}

impl<'a> ConceptBuilder<'a> {
    /// Creates a builder over the given vocabulary and arena.
    pub fn new(voc: &'a mut Vocabulary, arena: &'a mut TermArena) -> Self {
        ConceptBuilder { voc, arena }
    }

    /// The primitive attribute with the given name.
    pub fn attr(&mut self, name: &str) -> Attr {
        Attr::primitive(self.voc.attribute(name))
    }

    /// The inverse of the primitive attribute with the given name.
    pub fn inv(&mut self, name: &str) -> Attr {
        Attr::inverse_of(self.voc.attribute(name))
    }

    /// The primitive concept with the given class name.
    pub fn prim(&mut self, name: &str) -> ConceptId {
        let class = self.voc.class(name);
        self.arena.prim(class)
    }

    /// The universal concept `⊤`.
    pub fn top(&mut self) -> ConceptId {
        self.arena.top()
    }

    /// The singleton `{name}`.
    pub fn singleton(&mut self, name: &str) -> ConceptId {
        let constant = self.voc.constant(name);
        self.arena.singleton(constant)
    }

    /// Intersection of the given concepts (`⊤` if empty).
    pub fn and(&mut self, concepts: &[ConceptId]) -> ConceptId {
        self.arena.and_all(concepts.iter().copied())
    }

    /// A path from `(attribute, restriction)` steps.
    pub fn path(&mut self, steps: &[(Attr, ConceptId)]) -> PathId {
        self.arena.path_of(steps)
    }

    /// `∃p` for the path made of the given steps.
    pub fn exists(&mut self, steps: &[(Attr, ConceptId)]) -> ConceptId {
        let path = self.arena.path_of(steps);
        self.arena.exists(path)
    }

    /// `∃p ≐ q`.
    pub fn agree(&mut self, p: PathId, q: PathId) -> ConceptId {
        self.arena.agree(p, q)
    }

    /// `∃p ≐ ε`.
    pub fn agree_eps(&mut self, p: PathId) -> ConceptId {
        self.arena.agree_epsilon(p)
    }

    /// Access to the underlying arena for operations not covered here.
    pub fn arena(&mut self) -> &mut TermArena {
        self.arena
    }

    /// Access to the underlying vocabulary.
    pub fn vocabulary(&mut self) -> &mut Vocabulary {
        self.voc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::DisplayCtx;

    #[test]
    fn builds_the_paper_view_concept() {
        let mut voc = Vocabulary::new();
        let mut arena = TermArena::new();
        let mut b = ConceptBuilder::new(&mut voc, &mut arena);

        // D_V = Patient ⊓ ∃(name: String) ⊓
        //       ∃(consults: Doctor)(skilled_in: Disease) ≐ (suffers: Disease)
        let patient = b.prim("Patient");
        let string = b.prim("String");
        let doctor = b.prim("Doctor");
        let disease = b.prim("Disease");
        let name = b.attr("name");
        let consults = b.attr("consults");
        let skilled_in = b.attr("skilled_in");
        let suffers = b.attr("suffers");

        let has_name = b.exists(&[(name, string)]);
        let p = b.path(&[(consults, doctor), (skilled_in, disease)]);
        let q = b.path(&[(suffers, disease)]);
        let agree = b.agree(p, q);
        let view = b.and(&[patient, has_name, agree]);

        let ctx = DisplayCtx::new(&voc, &arena);
        assert_eq!(
            ctx.concept(view),
            "Patient ⊓ ∃(name: String) ⊓ ∃(consults: Doctor)(skilled_in: Disease) ≐ (suffers: Disease)"
        );
    }

    #[test]
    fn inverse_attributes_and_singletons() {
        let mut voc = Vocabulary::new();
        let mut arena = TermArena::new();
        let mut b = ConceptBuilder::new(&mut voc, &mut arena);
        let skilled = b.inv("skilled_in");
        assert!(skilled.is_inverted());
        let aspirin = b.singleton("Aspirin");
        let ex = b.exists(&[(skilled, aspirin)]);
        let ctx = DisplayCtx::new(&voc, &arena);
        assert_eq!(ctx.concept(ex), "∃(skilled_in⁻¹: {Aspirin})");
    }

    #[test]
    fn empty_and_is_top() {
        let mut voc = Vocabulary::new();
        let mut arena = TermArena::new();
        let mut b = ConceptBuilder::new(&mut voc, &mut arena);
        let top = b.and(&[]);
        assert_eq!(top, b.top());
    }
}
