//! Error types shared by the concept-language layer.

use std::fmt;

/// Errors raised while building or evaluating concepts and schemas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConceptError {
    /// A constant occurring in a concept has no denotation in the
    /// interpretation it is evaluated against.
    UnmappedConstant(String),
    /// Two distinct constants were mapped to the same domain element,
    /// violating the Unique Name Assumption.
    UniqueNameViolation(String, String),
    /// An operation expected the normalized agreement form `∃p ≐ ε` but was
    /// given a general agreement `∃p ≐ q`.
    NotNormalized,
    /// An SL axiom refers to a symbol kind it cannot contain (e.g. an
    /// inverse attribute).
    IllFormedAxiom(String),
}

impl fmt::Display for ConceptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConceptError::UnmappedConstant(name) => {
                write!(f, "constant `{name}` has no denotation in the interpretation")
            }
            ConceptError::UniqueNameViolation(a, b) => write!(
                f,
                "constants `{a}` and `{b}` denote the same element, violating the unique name assumption"
            ),
            ConceptError::NotNormalized => {
                write!(f, "concept is not in the normalized `∃p ≐ ε` agreement form")
            }
            ConceptError::IllFormedAxiom(msg) => write!(f, "ill-formed schema axiom: {msg}"),
        }
    }
}

impl std::error::Error for ConceptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_payload() {
        let e = ConceptError::UnmappedConstant("Aspirin".into());
        assert!(e.to_string().contains("Aspirin"));
        let e = ConceptError::UniqueNameViolation("a".into(), "b".into());
        assert!(e.to_string().contains('a') && e.to_string().contains('b'));
        assert!(ConceptError::NotNormalized
            .to_string()
            .contains("normalized"));
        let e = ConceptError::IllFormedAxiom("inverse attribute".into());
        assert!(e.to_string().contains("inverse attribute"));
    }
}
