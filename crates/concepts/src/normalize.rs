//! Normalization of path agreements.
//!
//! Section 4 of the paper assumes that every agreement concept has the form
//! `∃p ≐ ε`: "Any concept of the form `∃p ≐ q` is equivalent to a concept
//! of the form `∃p' ≐ ε`, since paths can be inverted using inverses of
//! attributes." This module performs that rewriting.
//!
//! For `p = (S₁:B₁)⋯(Sₘ:Bₘ)` and `q = (R₁:C₁)⋯(Rₙ:Cₙ)` (`n ≥ 1`), the
//! normalized path is
//!
//! ```text
//! p' = (S₁:B₁)⋯(Sₘ:Bₘ ⊓ Cₙ) · (Rₙ⁻¹:Cₙ₋₁)(Rₙ₋₁⁻¹:Cₙ₋₂)⋯(R₁⁻¹:⊤)
//! ```
//!
//! i.e. `p` with `q`'s final value restriction merged into its last step,
//! followed by `q` walked backwards (each attribute inverted, value
//! restrictions shifted by one position, the landing on the start object
//! restricted only by `⊤`). When `p = ε` the two paths simply swap roles.
//! This reproduces the rewriting used for the example in Section 4.1 of the
//! paper (`C_Q`, `D_V` before Figure 11).

use crate::term::{Concept, ConceptId, Path, PathId, Restriction, TermArena};

/// Rewrites a concept so that every agreement sub-concept has the form
/// `∃p ≐ ε`. Returns the (possibly identical) normalized concept.
pub fn normalize_concept(arena: &mut TermArena, concept: ConceptId) -> ConceptId {
    match arena.concept(concept) {
        Concept::Prim(_) | Concept::Top | Concept::Singleton(_) => concept,
        Concept::And(l, r) => {
            let nl = normalize_concept(arena, l);
            let nr = normalize_concept(arena, r);
            if nl == l && nr == r {
                concept
            } else {
                arena.and(nl, nr)
            }
        }
        Concept::Exists(p) => {
            let np = normalize_path(arena, p);
            if np == p {
                concept
            } else {
                arena.exists(np)
            }
        }
        Concept::Agree(p, q) => {
            let np = normalize_path(arena, p);
            let nq = normalize_path(arena, q);
            let merged = merge_agreement(arena, np, nq);
            arena.agree_epsilon(merged)
        }
    }
}

/// Whether every agreement sub-concept already has the form `∃p ≐ ε`.
pub fn is_normalized(arena: &TermArena, concept: ConceptId) -> bool {
    match arena.concept(concept) {
        Concept::Prim(_) | Concept::Top | Concept::Singleton(_) => true,
        Concept::And(l, r) => is_normalized(arena, l) && is_normalized(arena, r),
        Concept::Exists(p) => is_normalized_path(arena, p),
        Concept::Agree(p, q) => arena.is_empty_path(q) && is_normalized_path(arena, p),
    }
}

fn is_normalized_path(arena: &TermArena, path: PathId) -> bool {
    match arena.path(path) {
        Path::Empty => true,
        Path::Step(restriction, rest) => {
            is_normalized(arena, restriction.concept) && is_normalized_path(arena, rest)
        }
    }
}

/// Normalizes the value restrictions inside a path.
fn normalize_path(arena: &mut TermArena, path: PathId) -> PathId {
    let steps = arena.path_steps(path);
    let mut changed = false;
    let mut normalized: Vec<Restriction> = Vec::with_capacity(steps.len());
    for step in steps {
        let concept = normalize_concept(arena, step.concept);
        if concept != step.concept {
            changed = true;
        }
        normalized.push(Restriction {
            attr: step.attr,
            concept,
        });
    }
    if !changed {
        return path;
    }
    rebuild_path(arena, &normalized)
}

fn rebuild_path(arena: &mut TermArena, steps: &[Restriction]) -> PathId {
    let mut path = arena.empty_path();
    for step in steps.iter().rev() {
        path = arena.step(step.attr, step.concept, path);
    }
    path
}

/// Combines the two paths of an agreement `∃p ≐ q` into the single path
/// `p'` of the equivalent `∃p' ≐ ε`.
fn merge_agreement(arena: &mut TermArena, p: PathId, q: PathId) -> PathId {
    if arena.is_empty_path(q) {
        return p;
    }
    if arena.is_empty_path(p) {
        // ∃ε ≐ q is equivalent to ∃q ≐ ε: both state that q loops back to
        // the start object.
        return q;
    }

    let p_steps = arena.path_steps(p);
    let q_steps = arena.path_steps(q);
    let q_last = q_steps.last().expect("q is non-empty");

    // p with q's final value restriction merged into its last step.
    let mut merged: Vec<Restriction> = p_steps.clone();
    let last = merged.last_mut().expect("p is non-empty");
    last.concept = arena.and(last.concept, q_last.concept);

    // q walked backwards: attribute of step i inverted, restricted by the
    // value restriction of step i-1 (⊤ when landing back on the start).
    let top = arena.top();
    for i in (0..q_steps.len()).rev() {
        let landing = if i == 0 { top } else { q_steps[i - 1].concept };
        merged.push(Restriction {
            attr: q_steps[i].attr.inverse(),
            concept: landing,
        });
    }

    rebuild_path(arena, &merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attr;
    use crate::interpretation::{Element, Interpretation};
    use crate::symbol::Vocabulary;

    /// Rebuilds the paper's query concept C_Q and checks that its
    /// normalization is exactly the rewritten form shown in Section 4.1.
    #[test]
    fn paper_example_normalizes_as_printed() {
        let mut voc = Vocabulary::new();
        let male = voc.class("Male");
        let patient = voc.class("Patient");
        let female = voc.class("Female");
        let doctor = voc.class("Doctor");
        let consults = voc.attribute("consults");
        let suffers = voc.attribute("suffers");
        let skilled_in = voc.attribute("skilled_in");

        let mut arena = TermArena::new();
        let male_c = arena.prim(male);
        let patient_c = arena.prim(patient);
        let female_c = arena.prim(female);
        let doctor_c = arena.prim(doctor);
        let top = arena.top();

        // p = (consults: Female), q = (suffers: ⊤)(skilled_in⁻¹: Doctor)
        let p = arena.path1(Attr::primitive(consults), female_c);
        let q = arena.path_of(&[
            (Attr::primitive(suffers), top),
            (Attr::inverse_of(skilled_in), doctor_c),
        ]);
        let agree = arena.agree(p, q);
        let c_q = arena.and_all([male_c, patient_c, agree]);

        let normalized = normalize_concept(&mut arena, c_q);
        assert!(is_normalized(&arena, normalized));

        // Expected: Male ⊓ Patient ⊓
        //   ∃(consults: Female ⊓ Doctor)(skilled_in: ⊤)(suffers⁻¹: ⊤) ≐ ε
        let conjuncts = arena.conjuncts(normalized);
        assert_eq!(conjuncts.len(), 3);
        let Concept::Agree(path, eps) = arena.concept(conjuncts[2]) else {
            panic!("third conjunct must be an agreement");
        };
        assert!(arena.is_empty_path(eps));
        let steps = arena.path_steps(path);
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].attr, Attr::primitive(consults));
        assert_eq!(
            arena.concept(steps[0].concept),
            Concept::And(female_c, doctor_c)
        );
        assert_eq!(steps[1].attr, Attr::primitive(skilled_in));
        assert_eq!(steps[1].concept, top);
        assert_eq!(steps[2].attr, Attr::inverse_of(suffers));
        assert_eq!(steps[2].concept, top);
    }

    #[test]
    fn already_normalized_concepts_are_unchanged() {
        let mut voc = Vocabulary::new();
        let a = voc.class("A");
        let r = voc.attribute("r");
        let mut arena = TermArena::new();
        let a_c = arena.prim(a);
        let p = arena.path1(Attr::primitive(r), a_c);
        let ex = arena.exists(p);
        let agree = arena.agree_epsilon(p);
        let c = arena.and(ex, agree);
        assert!(is_normalized(&arena, c));
        assert_eq!(normalize_concept(&mut arena, c), c);
    }

    #[test]
    fn epsilon_left_path_swaps_roles() {
        let mut voc = Vocabulary::new();
        let a = voc.class("A");
        let r = voc.attribute("r");
        let mut arena = TermArena::new();
        let a_c = arena.prim(a);
        let q = arena.path1(Attr::primitive(r), a_c);
        let eps = arena.empty_path();
        let agree = arena.agree(eps, q);
        let normalized = normalize_concept(&mut arena, agree);
        assert_eq!(normalized, arena.agree_epsilon(q));
    }

    #[test]
    fn nested_agreements_inside_paths_are_normalized() {
        let mut voc = Vocabulary::new();
        let r = voc.attribute("r");
        let s = voc.attribute("s");
        let mut arena = TermArena::new();
        let top = arena.top();
        // Inner agreement with two non-empty paths, used as a value
        // restriction of an outer exists.
        let p_inner = arena.path1(Attr::primitive(r), top);
        let q_inner = arena.path1(Attr::primitive(s), top);
        let inner = arena.agree(p_inner, q_inner);
        let outer_path = arena.path1(Attr::primitive(r), inner);
        let outer = arena.exists(outer_path);
        assert!(!is_normalized(&arena, outer));
        let normalized = normalize_concept(&mut arena, outer);
        assert!(is_normalized(&arena, normalized));
    }

    /// Normalization preserves the set semantics on a concrete
    /// interpretation (a targeted check; the exhaustive property test lives
    /// in `tests/semantics_props.rs`).
    #[test]
    fn normalization_preserves_extensions() {
        let mut voc = Vocabulary::new();
        let female = voc.class("Female");
        let doctor = voc.class("Doctor");
        let consults = voc.attribute("consults");
        let suffers = voc.attribute("suffers");
        let skilled_in = voc.attribute("skilled_in");

        let mut arena = TermArena::new();
        let female_c = arena.prim(female);
        let doctor_c = arena.prim(doctor);
        let top = arena.top();
        let p = arena.path1(Attr::primitive(consults), female_c);
        let q = arena.path_of(&[
            (Attr::primitive(suffers), top),
            (Attr::inverse_of(skilled_in), doctor_c),
        ]);
        let agree = arena.agree(p, q);

        // Interpretation: patient 0 consults doctor 1 (female, doctor),
        // suffers disease 2, and 1 is skilled in 2.
        let mut interp = Interpretation::new(3);
        interp.add_class_member(female, Element(1));
        interp.add_class_member(doctor, Element(1));
        interp.add_attr_pair(consults, Element(0), Element(1));
        interp.add_attr_pair(suffers, Element(0), Element(2));
        interp.add_attr_pair(skilled_in, Element(1), Element(2));

        let before = interp.eval_concept(&arena, agree);
        let normalized = normalize_concept(&mut arena, agree);
        let after = interp.eval_concept(&arena, normalized);
        assert_eq!(before, after);
        assert_eq!(before, std::collections::BTreeSet::from([Element(0)]));

        // Removing the skilled_in edge must empty both extensions.
        let mut interp2 = Interpretation::new(3);
        interp2.add_class_member(female, Element(1));
        interp2.add_class_member(doctor, Element(1));
        interp2.add_attr_pair(consults, Element(0), Element(1));
        interp2.add_attr_pair(suffers, Element(0), Element(2));
        assert!(interp2.eval_concept(&arena, agree).is_empty());
        assert!(interp2.eval_concept(&arena, normalized).is_empty());
    }
}
