//! Rendering of concepts, paths, and attributes in the paper's notation.

use crate::attribute::Attr;
use crate::symbol::Vocabulary;
use crate::term::{Concept, ConceptId, Path, PathId, TermArena};

/// A display context pairing a vocabulary (for names) with a term arena
/// (for structure).
#[derive(Clone, Copy)]
pub struct DisplayCtx<'a> {
    voc: &'a Vocabulary,
    arena: &'a TermArena,
}

impl<'a> DisplayCtx<'a> {
    /// Creates a display context.
    pub fn new(voc: &'a Vocabulary, arena: &'a TermArena) -> Self {
        DisplayCtx { voc, arena }
    }

    /// Renders an attribute: `consults` or `skilled_in⁻¹`.
    pub fn attr(&self, attr: Attr) -> String {
        let name = self.voc.attr_name(attr.base());
        if attr.is_inverted() {
            format!("{name}⁻¹")
        } else {
            name.to_owned()
        }
    }

    /// Renders a path: `(consults: Doctor)(skilled_in: Disease)` or `ε`.
    pub fn path(&self, path: PathId) -> String {
        if self.arena.is_empty_path(path) {
            return "ε".to_owned();
        }
        let mut out = String::new();
        let mut current = path;
        loop {
            match self.arena.path(current) {
                Path::Empty => break,
                Path::Step(restriction, rest) => {
                    out.push('(');
                    out.push_str(&self.attr(restriction.attr));
                    out.push_str(": ");
                    out.push_str(&self.concept(restriction.concept));
                    out.push(')');
                    current = rest;
                }
            }
        }
        out
    }

    /// Renders a concept in the paper's notation, e.g.
    /// `Male ⊓ Patient ⊓ ∃(consults: Female) ≐ (suffers: ⊤)(…)`.
    pub fn concept(&self, concept: ConceptId) -> String {
        match self.arena.concept(concept) {
            Concept::Prim(class) => self.voc.class_name(class).to_owned(),
            Concept::Top => "⊤".to_owned(),
            Concept::Singleton(constant) => format!("{{{}}}", self.voc.const_name(constant)),
            Concept::And(..) => {
                let parts: Vec<String> = self
                    .arena
                    .conjuncts(concept)
                    .into_iter()
                    .map(|c| self.conjunct(c))
                    .collect();
                parts.join(" ⊓ ")
            }
            Concept::Exists(path) => format!("∃{}", self.path(path)),
            Concept::Agree(p, q) => format!("∃{} ≐ {}", self.path(p), self.path(q)),
        }
    }

    /// Renders a conjunct, parenthesizing nested agreements for
    /// readability.
    fn conjunct(&self, concept: ConceptId) -> String {
        match self.arena.concept(concept) {
            Concept::Agree(..) => self.concept(concept),
            _ => self.concept(concept),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_style_concepts() {
        let mut voc = Vocabulary::new();
        let male = voc.class("Male");
        let patient = voc.class("Patient");
        let female = voc.class("Female");
        let consults = voc.attribute("consults");
        let suffers = voc.attribute("suffers");

        let mut arena = TermArena::new();
        let male_c = arena.prim(male);
        let patient_c = arena.prim(patient);
        let female_c = arena.prim(female);
        let top = arena.top();
        let p = arena.path1(Attr::primitive(consults), female_c);
        let q = arena.path1(Attr::primitive(suffers), top);
        let agree = arena.agree(p, q);
        let c = arena.and_all([male_c, patient_c, agree]);

        let ctx = DisplayCtx::new(&voc, &arena);
        let rendered = ctx.concept(c);
        assert_eq!(
            rendered,
            "Male ⊓ Patient ⊓ ∃(consults: Female) ≐ (suffers: ⊤)"
        );
    }

    #[test]
    fn renders_inverse_attributes_and_singletons() {
        let mut voc = Vocabulary::new();
        let skilled_in = voc.attribute("skilled_in");
        let aspirin = voc.constant("Aspirin");
        let mut arena = TermArena::new();
        let sing = arena.singleton(aspirin);
        let path = arena.path1(Attr::inverse_of(skilled_in), sing);
        let ex = arena.exists(path);
        let ctx = DisplayCtx::new(&voc, &arena);
        assert_eq!(ctx.concept(ex), "∃(skilled_in⁻¹: {Aspirin})");
    }

    #[test]
    fn renders_empty_path_as_epsilon() {
        let mut voc = Vocabulary::new();
        let r = voc.attribute("r");
        let mut arena = TermArena::new();
        let top = arena.top();
        let p = arena.path1(Attr::primitive(r), top);
        let agree = arena.agree_epsilon(p);
        let ctx = DisplayCtx::new(&voc, &arena);
        assert_eq!(ctx.concept(agree), "∃(r: ⊤) ≐ ε");
        assert_eq!(ctx.path(arena.epsilon()), "ε");
    }
}
