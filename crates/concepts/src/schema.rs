//! The abstract schema language SL and indexed schemas.
//!
//! An SL schema Σ is a set of axioms of two forms (Section 3.1):
//!
//! * `A ⊑ D` where `A` is a primitive concept and `D` an SL concept
//!   `D ::= A' | ∀P.A' | ∃P | (≤1 P)`, and
//! * `P ⊑ A₁ × A₂`, stating that the primitive attribute `P` has domain
//!   `A₁` and range `A₂`.
//!
//! [`Schema`] stores the axioms and maintains the lookup indexes the
//! subsumption calculus needs: the schema rules S1–S5 repeatedly ask
//! questions such as "which `A₂` have `A₁ ⊑ ∀P.A₂ ∈ Σ`?" or
//! "is `A ⊑ (≤1 P) ∈ Σ`?", and those must be answerable without scanning
//! the whole axiom set for the procedure to stay polynomial in practice.

use crate::symbol::{AttrId, ClassId, Vocabulary};
use std::collections::{HashMap, HashSet};

/// An SL concept: the right-hand side of an inclusion axiom.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SlConcept {
    /// A primitive concept `A`.
    Prim(ClassId),
    /// Typing of an attribute: `∀P.A` — every `P`-filler is an `A`.
    All(AttrId, ClassId),
    /// Necessary attribute: `∃P` — there is at least one `P`-filler.
    Exists(AttrId),
    /// Single-valued attribute: `(≤1 P)` — there is at most one `P`-filler.
    AtMostOne(AttrId),
}

/// A schema axiom.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchemaAxiom {
    /// `A ⊑ D`: all instances of `A` satisfy `D`.
    Inclusion(ClassId, SlConcept),
    /// `P ⊑ A₁ × A₂`: the attribute `P` has domain `A₁` and range `A₂`.
    AttrTyping(AttrId, ClassId, ClassId),
}

/// An indexed SL schema.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schema {
    axioms: Vec<SchemaAxiom>,
    /// `A ↦ { A' | A ⊑ A' ∈ Σ }` (rule S1).
    supers: HashMap<ClassId, Vec<ClassId>>,
    /// `A ↦ [(P, A') | A ⊑ ∀P.A' ∈ Σ]` (rule S2).
    value_restrictions: HashMap<ClassId, Vec<(AttrId, ClassId)>>,
    /// `A ↦ { P | A ⊑ ∃P ∈ Σ }` (rule S5).
    necessary: HashMap<ClassId, HashSet<AttrId>>,
    /// `A ↦ { P | A ⊑ (≤1 P) ∈ Σ }` (rule S4, clash detection).
    functional: HashMap<ClassId, HashSet<AttrId>>,
    /// `P ↦ (A₁, A₂)` (rule S3). A later typing for the same attribute
    /// overrides an earlier one; well-formed schemas declare each attribute
    /// once.
    typings: HashMap<AttrId, (ClassId, ClassId)>,
    axiom_set: HashSet<SchemaAxiom>,
}

impl Schema {
    /// Creates an empty schema (the empty Σ; subsumption then coincides
    /// with containment of the underlying conjunctive queries).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a schema from an iterator of axioms.
    pub fn from_axioms<I: IntoIterator<Item = SchemaAxiom>>(axioms: I) -> Self {
        let mut schema = Schema::new();
        for axiom in axioms {
            schema.add_axiom(axiom);
        }
        schema
    }

    /// Adds one axiom, updating all indexes. Duplicate axioms are ignored.
    pub fn add_axiom(&mut self, axiom: SchemaAxiom) {
        if !self.axiom_set.insert(axiom) {
            return;
        }
        self.axioms.push(axiom);
        match axiom {
            SchemaAxiom::Inclusion(a, SlConcept::Prim(b)) => {
                self.supers.entry(a).or_default().push(b);
            }
            SchemaAxiom::Inclusion(a, SlConcept::All(p, b)) => {
                self.value_restrictions.entry(a).or_default().push((p, b));
            }
            SchemaAxiom::Inclusion(a, SlConcept::Exists(p)) => {
                self.necessary.entry(a).or_default().insert(p);
            }
            SchemaAxiom::Inclusion(a, SlConcept::AtMostOne(p)) => {
                self.functional.entry(a).or_default().insert(p);
            }
            SchemaAxiom::AttrTyping(p, dom, rng) => {
                self.typings.insert(p, (dom, rng));
            }
        }
    }

    /// Convenience: adds `A ⊑ B` for primitive `B` (an isA link).
    pub fn add_isa(&mut self, sub: ClassId, sup: ClassId) {
        self.add_axiom(SchemaAxiom::Inclusion(sub, SlConcept::Prim(sup)));
    }

    /// Convenience: adds `A ⊑ ∀P.B` (attribute typing within a class).
    pub fn add_value_restriction(&mut self, class: ClassId, attr: AttrId, range: ClassId) {
        self.add_axiom(SchemaAxiom::Inclusion(class, SlConcept::All(attr, range)));
    }

    /// Convenience: adds `A ⊑ ∃P` (the attribute is necessary for `A`).
    pub fn add_necessary(&mut self, class: ClassId, attr: AttrId) {
        self.add_axiom(SchemaAxiom::Inclusion(class, SlConcept::Exists(attr)));
    }

    /// Convenience: adds `A ⊑ (≤1 P)` (the attribute is single-valued on
    /// `A`).
    pub fn add_functional(&mut self, class: ClassId, attr: AttrId) {
        self.add_axiom(SchemaAxiom::Inclusion(class, SlConcept::AtMostOne(attr)));
    }

    /// Convenience: adds `P ⊑ A₁ × A₂`.
    pub fn add_attr_typing(&mut self, attr: AttrId, domain: ClassId, range: ClassId) {
        self.add_axiom(SchemaAxiom::AttrTyping(attr, domain, range));
    }

    /// All axioms in insertion order.
    pub fn axioms(&self) -> &[SchemaAxiom] {
        &self.axioms
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// Whether the schema has no axioms.
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }

    /// Direct primitive superclasses of `class` (`class ⊑ A'` axioms).
    pub fn supers_of(&self, class: ClassId) -> &[ClassId] {
        self.supers.get(&class).map_or(&[], Vec::as_slice)
    }

    /// Value restrictions `(P, A')` with `class ⊑ ∀P.A'` in Σ.
    pub fn value_restrictions_of(&self, class: ClassId) -> &[(AttrId, ClassId)] {
        self.value_restrictions
            .get(&class)
            .map_or(&[], Vec::as_slice)
    }

    /// Whether `class ⊑ ∃attr` is in Σ.
    pub fn is_necessary(&self, class: ClassId, attr: AttrId) -> bool {
        self.necessary
            .get(&class)
            .is_some_and(|set| set.contains(&attr))
    }

    /// The attributes declared necessary for `class`.
    pub fn necessary_attrs_of(&self, class: ClassId) -> impl Iterator<Item = AttrId> + '_ {
        self.necessary
            .get(&class)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Whether `class ⊑ (≤1 attr)` is in Σ.
    pub fn is_functional(&self, class: ClassId, attr: AttrId) -> bool {
        self.functional
            .get(&class)
            .is_some_and(|set| set.contains(&attr))
    }

    /// The attributes declared single-valued for `class`.
    pub fn functional_attrs_of(&self, class: ClassId) -> impl Iterator<Item = AttrId> + '_ {
        self.functional
            .get(&class)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// The `(domain, range)` typing of an attribute, if declared.
    pub fn attr_typing(&self, attr: AttrId) -> Option<(ClassId, ClassId)> {
        self.typings.get(&attr).copied()
    }

    /// The transitive closure of the declared isA hierarchy starting from
    /// `class`, excluding `class` itself unless it is part of a cycle.
    ///
    /// The calculus does not need this (rule S1 saturates step by step), but
    /// the OODB engine and the workload generators do.
    pub fn ancestors_of(&self, class: ClassId) -> Vec<ClassId> {
        let mut seen = HashSet::new();
        let mut stack: Vec<ClassId> = self.supers_of(class).to_vec();
        let mut out = Vec::new();
        while let Some(next) = stack.pop() {
            if seen.insert(next) {
                out.push(next);
                stack.extend_from_slice(self.supers_of(next));
            }
        }
        out
    }

    /// Whether `sub` is a (possibly indirect) declared subclass of `sup`.
    pub fn is_subclass_of(&self, sub: ClassId, sup: ClassId) -> bool {
        sub == sup || self.ancestors_of(sub).contains(&sup)
    }

    /// Total syntactic size of the schema: one node per axiom plus one per
    /// symbol occurrence. Used as the `|Σ|` measure in scaling experiments.
    pub fn size(&self) -> usize {
        self.axioms
            .iter()
            .map(|axiom| match axiom {
                SchemaAxiom::Inclusion(_, SlConcept::Prim(_)) => 3,
                SchemaAxiom::Inclusion(_, SlConcept::All(_, _)) => 4,
                SchemaAxiom::Inclusion(_, SlConcept::Exists(_)) => 3,
                SchemaAxiom::Inclusion(_, SlConcept::AtMostOne(_)) => 3,
                SchemaAxiom::AttrTyping(_, _, _) => 4,
            })
            .sum()
    }

    /// Renders the schema in the paper's notation (Figure 6 style), one
    /// axiom per line.
    pub fn render(&self, voc: &Vocabulary) -> String {
        let mut out = String::new();
        for axiom in &self.axioms {
            match *axiom {
                SchemaAxiom::Inclusion(a, rhs) => {
                    out.push_str(voc.class_name(a));
                    out.push_str(" ⊑ ");
                    match rhs {
                        SlConcept::Prim(b) => out.push_str(voc.class_name(b)),
                        SlConcept::All(p, b) => {
                            out.push_str(&format!("∀{}.{}", voc.attr_name(p), voc.class_name(b)));
                        }
                        SlConcept::Exists(p) => out.push_str(&format!("∃{}", voc.attr_name(p))),
                        SlConcept::AtMostOne(p) => {
                            out.push_str(&format!("(≤1 {})", voc.attr_name(p)));
                        }
                    }
                }
                SchemaAxiom::AttrTyping(p, dom, rng) => {
                    out.push_str(&format!(
                        "{} ⊑ {} × {}",
                        voc.attr_name(p),
                        voc.class_name(dom),
                        voc.class_name(rng)
                    ));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(voc: &mut Vocabulary) -> (ClassId, ClassId, ClassId, AttrId, AttrId) {
        (
            voc.class("Patient"),
            voc.class("Person"),
            voc.class("Disease"),
            voc.attribute("suffers"),
            voc.attribute("name"),
        )
    }

    #[test]
    fn indexes_answer_schema_rule_queries() {
        let mut voc = Vocabulary::new();
        let (patient, person, disease, suffers, name) = ids(&mut voc);
        let string = voc.class("String");
        let topic = voc.class("Topic");
        let skilled = voc.attribute("skilled_in");

        let mut schema = Schema::new();
        schema.add_isa(patient, person);
        schema.add_value_restriction(patient, suffers, disease);
        schema.add_necessary(patient, suffers);
        schema.add_value_restriction(person, name, string);
        schema.add_necessary(person, name);
        schema.add_functional(person, name);
        schema.add_attr_typing(skilled, person, topic);

        assert_eq!(schema.supers_of(patient), &[person]);
        assert_eq!(schema.value_restrictions_of(patient), &[(suffers, disease)]);
        assert!(schema.is_necessary(patient, suffers));
        assert!(!schema.is_necessary(patient, name));
        assert!(schema.is_functional(person, name));
        assert!(!schema.is_functional(patient, name));
        assert_eq!(schema.attr_typing(skilled), Some((person, topic)));
        assert_eq!(schema.attr_typing(name), None);
        assert_eq!(schema.len(), 7);
    }

    #[test]
    fn duplicate_axioms_are_ignored() {
        let mut voc = Vocabulary::new();
        let (patient, person, ..) = ids(&mut voc);
        let mut schema = Schema::new();
        schema.add_isa(patient, person);
        schema.add_isa(patient, person);
        assert_eq!(schema.len(), 1);
        assert_eq!(schema.supers_of(patient), &[person]);
    }

    #[test]
    fn ancestors_are_transitive() {
        let mut voc = Vocabulary::new();
        let a = voc.class("A");
        let b = voc.class("B");
        let c = voc.class("C");
        let mut schema = Schema::new();
        schema.add_isa(a, b);
        schema.add_isa(b, c);
        let ancestors = schema.ancestors_of(a);
        assert!(ancestors.contains(&b));
        assert!(ancestors.contains(&c));
        assert!(!ancestors.contains(&a));
        assert!(schema.is_subclass_of(a, c));
        assert!(schema.is_subclass_of(a, a));
        assert!(!schema.is_subclass_of(c, a));
    }

    #[test]
    fn ancestors_terminate_on_cycles() {
        let mut voc = Vocabulary::new();
        let a = voc.class("A");
        let b = voc.class("B");
        let mut schema = Schema::new();
        schema.add_isa(a, b);
        schema.add_isa(b, a);
        let ancestors = schema.ancestors_of(a);
        assert!(ancestors.contains(&a));
        assert!(ancestors.contains(&b));
        assert_eq!(ancestors.len(), 2);
    }

    #[test]
    fn size_counts_symbols() {
        let mut voc = Vocabulary::new();
        let (patient, person, disease, suffers, _) = ids(&mut voc);
        let mut schema = Schema::new();
        schema.add_isa(patient, person); // 3
        schema.add_value_restriction(patient, suffers, disease); // 4
        schema.add_attr_typing(suffers, patient, disease); // 4
        assert_eq!(schema.size(), 11);
    }

    #[test]
    fn render_matches_paper_notation() {
        let mut voc = Vocabulary::new();
        let (patient, person, disease, suffers, name) = ids(&mut voc);
        let mut schema = Schema::new();
        schema.add_isa(patient, person);
        schema.add_value_restriction(patient, suffers, disease);
        schema.add_necessary(patient, suffers);
        schema.add_functional(person, name);
        let rendered = schema.render(&voc);
        assert!(rendered.contains("Patient ⊑ Person"));
        assert!(rendered.contains("Patient ⊑ ∀suffers.Disease"));
        assert!(rendered.contains("Patient ⊑ ∃suffers"));
        assert!(rendered.contains("Person ⊑ (≤1 name)"));
    }

    #[test]
    fn empty_schema_reports_empty() {
        let schema = Schema::new();
        assert!(schema.is_empty());
        assert_eq!(schema.size(), 0);
        assert_eq!(schema.axioms().len(), 0);
    }
}
