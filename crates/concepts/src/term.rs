//! Hash-consed representation of QL concepts and paths.
//!
//! QL concepts and the paths occurring inside them form recursive term
//! graphs. Instead of boxing every node we intern them into a
//! [`TermArena`]: each distinct concept receives a [`ConceptId`] and each
//! distinct path a [`PathId`]. Two terms are structurally equal exactly when
//! their identifiers are equal, which makes the constraints manipulated by
//! the subsumption calculus small `Copy` values that hash in O(1).
//!
//! Paths are stored as cons-lists of [`Restriction`]s so that peeling the
//! first restricted attribute off a path — the operation the calculus rules
//! D6/D7, S5, G2/G3 and C5/C6 perform constantly — is a single arena lookup
//! and suffixes are shared between paths.

use crate::attribute::Attr;
use crate::symbol::{ClassId, ConstId};
use std::collections::HashMap;

/// Identifier of an interned QL concept inside a [`TermArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConceptId(u32);

impl ConceptId {
    /// Raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an interned path inside a [`TermArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PathId(u32);

impl PathId {
    /// Raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A restricted attribute `(R : C)`: the pairs related by `R` whose second
/// component is an instance of `C`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Restriction {
    /// The (possibly inverted) attribute `R`.
    pub attr: Attr,
    /// The value restriction `C` on the attribute fillers.
    pub concept: ConceptId,
}

/// A path node: either the empty path `ε` or a restriction followed by a
/// (shared) suffix path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Path {
    /// The empty path `ε`, denoting the identity relation.
    Empty,
    /// `(R : C) · p` — a restricted attribute followed by the rest of the
    /// chain.
    Step(Restriction, PathId),
}

/// A QL concept node.
///
/// The variants follow the grammar of Section 3.1:
/// `C ::= A | ⊤ | {a} | C ⊓ D | ∃p | ∃p ≐ q`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Concept {
    /// A primitive concept `A`.
    Prim(ClassId),
    /// The universal concept `⊤` (the paper's class `Object`).
    Top,
    /// A singleton set `{a}` for a constant `a`.
    Singleton(ConstId),
    /// Intersection `C ⊓ D`.
    And(ConceptId, ConceptId),
    /// Existential quantification over a path, `∃p`.
    Exists(PathId),
    /// Existential agreement of two paths, `∃p ≐ q`.
    ///
    /// The calculus only handles the normalized form where the second path
    /// is `ε`; [`crate::normalize::normalize_concept`] rewrites the general
    /// form into it.
    Agree(PathId, PathId),
}

/// Arena interning QL concepts and paths.
///
/// The arena is append-only. Interning is hash-consed: requesting the same
/// node twice returns the same identifier, so identifier equality coincides
/// with structural equality of terms.
#[derive(Clone, Debug, Default)]
pub struct TermArena {
    concepts: Vec<Concept>,
    concept_ids: HashMap<Concept, ConceptId>,
    paths: Vec<Path>,
    path_ids: HashMap<Path, PathId>,
}

impl TermArena {
    /// Creates an empty arena containing only the empty path.
    pub fn new() -> Self {
        let mut arena = TermArena::default();
        // Pre-intern ε so that `empty_path` never allocates.
        arena.intern_path(Path::Empty);
        arena
    }

    fn intern_concept(&mut self, node: Concept) -> ConceptId {
        if let Some(&id) = self.concept_ids.get(&node) {
            return id;
        }
        let id = ConceptId(self.concepts.len() as u32);
        self.concepts.push(node);
        self.concept_ids.insert(node, id);
        id
    }

    fn intern_path(&mut self, node: Path) -> PathId {
        if let Some(&id) = self.path_ids.get(&node) {
            return id;
        }
        let id = PathId(self.paths.len() as u32);
        self.paths.push(node);
        self.path_ids.insert(node, id);
        id
    }

    /// Looks up a concept node.
    #[inline]
    pub fn concept(&self, id: ConceptId) -> Concept {
        self.concepts[id.index()]
    }

    /// Looks up a path node.
    #[inline]
    pub fn path(&self, id: PathId) -> Path {
        self.paths[id.index()]
    }

    /// Number of distinct interned concepts.
    pub fn concept_count(&self) -> usize {
        self.concepts.len()
    }

    /// Number of distinct interned paths (including `ε`).
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    // ----- constructors -------------------------------------------------

    /// The primitive concept `A`.
    pub fn prim(&mut self, class: ClassId) -> ConceptId {
        self.intern_concept(Concept::Prim(class))
    }

    /// The universal concept `⊤`.
    pub fn top(&mut self) -> ConceptId {
        self.intern_concept(Concept::Top)
    }

    /// The singleton concept `{a}`.
    pub fn singleton(&mut self, constant: ConstId) -> ConceptId {
        self.intern_concept(Concept::Singleton(constant))
    }

    /// The intersection `C ⊓ D`.
    pub fn and(&mut self, left: ConceptId, right: ConceptId) -> ConceptId {
        self.intern_concept(Concept::And(left, right))
    }

    /// Right-folds a non-empty sequence of concepts into nested binary
    /// intersections; returns `⊤` for an empty sequence.
    pub fn and_all<I>(&mut self, concepts: I) -> ConceptId
    where
        I: IntoIterator<Item = ConceptId>,
        I::IntoIter: DoubleEndedIterator,
    {
        let mut iter = concepts.into_iter().rev();
        let Some(last) = iter.next() else {
            return self.top();
        };
        iter.fold(last, |acc, c| self.and(c, acc))
    }

    /// The existential path quantification `∃p`.
    pub fn exists(&mut self, path: PathId) -> ConceptId {
        self.intern_concept(Concept::Exists(path))
    }

    /// The existential path agreement `∃p ≐ q`.
    pub fn agree(&mut self, left: PathId, right: PathId) -> ConceptId {
        self.intern_concept(Concept::Agree(left, right))
    }

    /// The agreement with the empty path, `∃p ≐ ε` (the normalized form).
    pub fn agree_epsilon(&mut self, path: PathId) -> ConceptId {
        let eps = self.empty_path();
        self.intern_concept(Concept::Agree(path, eps))
    }

    /// The empty path `ε`.
    pub fn empty_path(&mut self) -> PathId {
        self.intern_path(Path::Empty)
    }

    /// The empty path `ε` without requiring mutable access.
    ///
    /// `ε` is pre-interned by [`TermArena::new`], so its identifier is
    /// stable across the lifetime of the arena.
    #[inline]
    pub fn epsilon(&self) -> PathId {
        PathId(0)
    }

    /// Prepends the restriction `(attr : concept)` to `rest`.
    pub fn step(&mut self, attr: Attr, concept: ConceptId, rest: PathId) -> PathId {
        self.intern_path(Path::Step(Restriction { attr, concept }, rest))
    }

    /// A path of a single restriction `(attr : concept)`.
    pub fn path1(&mut self, attr: Attr, concept: ConceptId) -> PathId {
        let eps = self.empty_path();
        self.step(attr, concept, eps)
    }

    /// Builds a path from restrictions given front-to-back.
    pub fn path_of(&mut self, steps: &[(Attr, ConceptId)]) -> PathId {
        let mut path = self.empty_path();
        for &(attr, concept) in steps.iter().rev() {
            path = self.step(attr, concept, path);
        }
        path
    }

    /// Concatenates two paths, `p · q`.
    pub fn concat(&mut self, front: PathId, back: PathId) -> PathId {
        match self.path(front) {
            Path::Empty => back,
            Path::Step(restriction, rest) => {
                let tail = self.concat(rest, back);
                self.intern_path(Path::Step(restriction, tail))
            }
        }
    }

    // ----- inspection ---------------------------------------------------

    /// The restrictions of a path, front-to-back.
    pub fn path_steps(&self, mut path: PathId) -> Vec<Restriction> {
        let mut steps = Vec::new();
        loop {
            match self.path(path) {
                Path::Empty => return steps,
                Path::Step(restriction, rest) => {
                    steps.push(restriction);
                    path = rest;
                }
            }
        }
    }

    /// Number of restrictions in a path.
    pub fn path_len(&self, mut path: PathId) -> usize {
        let mut len = 0;
        loop {
            match self.path(path) {
                Path::Empty => return len,
                Path::Step(_, rest) => {
                    len += 1;
                    path = rest;
                }
            }
        }
    }

    /// Whether a path is the empty path `ε`.
    #[inline]
    pub fn is_empty_path(&self, path: PathId) -> bool {
        matches!(self.path(path), Path::Empty)
    }

    /// Size of a concept, counted as the number of syntax-tree nodes
    /// (concept constructors plus one per path restriction).
    ///
    /// This is the measure `M`, `N` used in the complexity analysis of
    /// Section 4.3 (Proposition 4.8 and Theorem 4.9).
    pub fn concept_size(&self, concept: ConceptId) -> usize {
        match self.concept(concept) {
            Concept::Prim(_) | Concept::Top | Concept::Singleton(_) => 1,
            Concept::And(l, r) => 1 + self.concept_size(l) + self.concept_size(r),
            Concept::Exists(p) => 1 + self.path_size(p),
            Concept::Agree(p, q) => 1 + self.path_size(p) + self.path_size(q),
        }
    }

    /// Size of a path: one node per restriction plus the size of each value
    /// restriction concept.
    pub fn path_size(&self, path: PathId) -> usize {
        match self.path(path) {
            Path::Empty => 0,
            Path::Step(restriction, rest) => {
                1 + self.concept_size(restriction.concept) + self.path_size(rest)
            }
        }
    }

    /// The conjuncts of a concept with nested intersections flattened.
    pub fn conjuncts(&self, concept: ConceptId) -> Vec<ConceptId> {
        let mut out = Vec::new();
        self.collect_conjuncts(concept, &mut out);
        out
    }

    fn collect_conjuncts(&self, concept: ConceptId, out: &mut Vec<ConceptId>) {
        match self.concept(concept) {
            Concept::And(l, r) => {
                self.collect_conjuncts(l, out);
                self.collect_conjuncts(r, out);
            }
            _ => out.push(concept),
        }
    }

    /// All constants occurring in a concept (inside singletons), without
    /// duplicates, in first-occurrence order.
    pub fn constants_in(&self, concept: ConceptId) -> Vec<ConstId> {
        let mut out = Vec::new();
        self.collect_constants(concept, &mut out);
        out
    }

    fn collect_constants(&self, concept: ConceptId, out: &mut Vec<ConstId>) {
        match self.concept(concept) {
            Concept::Prim(_) | Concept::Top => {}
            Concept::Singleton(a) => {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
            Concept::And(l, r) => {
                self.collect_constants(l, out);
                self.collect_constants(r, out);
            }
            Concept::Exists(p) => self.collect_constants_path(p, out),
            Concept::Agree(p, q) => {
                self.collect_constants_path(p, out);
                self.collect_constants_path(q, out);
            }
        }
    }

    fn collect_constants_path(&self, path: PathId, out: &mut Vec<ConstId>) {
        if let Path::Step(restriction, rest) = self.path(path) {
            self.collect_constants(restriction.concept, out);
            self.collect_constants_path(rest, out);
        }
    }

    /// All primitive classes occurring in a concept, without duplicates.
    pub fn classes_in(&self, concept: ConceptId) -> Vec<ClassId> {
        let mut out = Vec::new();
        self.collect_classes(concept, &mut out);
        out
    }

    fn collect_classes(&self, concept: ConceptId, out: &mut Vec<ClassId>) {
        match self.concept(concept) {
            Concept::Prim(a) => {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
            Concept::Top | Concept::Singleton(_) => {}
            Concept::And(l, r) => {
                self.collect_classes(l, out);
                self.collect_classes(r, out);
            }
            Concept::Exists(p) => self.collect_classes_path(p, out),
            Concept::Agree(p, q) => {
                self.collect_classes_path(p, out);
                self.collect_classes_path(q, out);
            }
        }
    }

    fn collect_classes_path(&self, path: PathId, out: &mut Vec<ClassId>) {
        if let Path::Step(restriction, rest) = self.path(path) {
            self.collect_classes(restriction.concept, out);
            self.collect_classes_path(rest, out);
        }
    }

    /// Maximum nesting depth of existential/agreement constructs in a
    /// concept (a secondary size measure used by the workload generators).
    pub fn concept_depth(&self, concept: ConceptId) -> usize {
        match self.concept(concept) {
            Concept::Prim(_) | Concept::Top | Concept::Singleton(_) => 0,
            Concept::And(l, r) => self.concept_depth(l).max(self.concept_depth(r)),
            Concept::Exists(p) => 1 + self.path_depth(p),
            Concept::Agree(p, q) => 1 + self.path_depth(p).max(self.path_depth(q)),
        }
    }

    fn path_depth(&self, path: PathId) -> usize {
        match self.path(path) {
            Path::Empty => 0,
            Path::Step(restriction, rest) => self
                .concept_depth(restriction.concept)
                .max(self.path_depth(rest)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Vocabulary;

    fn setup() -> (Vocabulary, TermArena) {
        (Vocabulary::new(), TermArena::new())
    }

    #[test]
    fn hash_consing_gives_identifier_equality() {
        let (mut voc, mut arena) = setup();
        let patient = voc.class("Patient");
        let a = arena.prim(patient);
        let b = arena.prim(patient);
        assert_eq!(a, b);
        assert_eq!(arena.concept_count(), 1);
    }

    #[test]
    fn distinct_structures_get_distinct_ids() {
        let (mut voc, mut arena) = setup();
        let p = arena.prim(voc.class("Patient"));
        let d = arena.prim(voc.class("Doctor"));
        assert_ne!(p, d);
        let pd = arena.and(p, d);
        let dp = arena.and(d, p);
        assert_ne!(pd, dp, "⊓ is not canonicalized for commutativity");
    }

    #[test]
    fn epsilon_is_preinterned() {
        let arena = TermArena::new();
        assert!(arena.is_empty_path(arena.epsilon()));
        assert_eq!(arena.path_count(), 1);
    }

    #[test]
    fn path_construction_and_steps_round_trip() {
        let (mut voc, mut arena) = setup();
        let doctor = arena.prim(voc.class("Doctor"));
        let disease = arena.prim(voc.class("Disease"));
        let consults = Attr::primitive(voc.attribute("consults"));
        let skilled = Attr::primitive(voc.attribute("skilled_in"));

        let path = arena.path_of(&[(consults, doctor), (skilled, disease)]);
        let steps = arena.path_steps(path);
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].attr, consults);
        assert_eq!(steps[0].concept, doctor);
        assert_eq!(steps[1].attr, skilled);
        assert_eq!(steps[1].concept, disease);
        assert_eq!(arena.path_len(path), 2);
    }

    #[test]
    fn path_suffixes_are_shared() {
        let (mut voc, mut arena) = setup();
        let top = arena.top();
        let a = Attr::primitive(voc.attribute("a"));
        let b = Attr::primitive(voc.attribute("b"));
        let suffix = arena.path1(b, top);
        let before = arena.path_count();
        let p1 = arena.step(a, top, suffix);
        let p2 = arena.step(a, top, suffix);
        assert_eq!(p1, p2);
        assert_eq!(arena.path_count(), before + 1);
    }

    #[test]
    fn concat_appends_paths() {
        let (mut voc, mut arena) = setup();
        let top = arena.top();
        let a = Attr::primitive(voc.attribute("a"));
        let b = Attr::primitive(voc.attribute("b"));
        let front = arena.path1(a, top);
        let back = arena.path1(b, top);
        let joined = arena.concat(front, back);
        assert_eq!(arena.path_len(joined), 2);
        let steps = arena.path_steps(joined);
        assert_eq!(steps[0].attr, a);
        assert_eq!(steps[1].attr, b);

        let eps = arena.empty_path();
        assert_eq!(arena.concat(eps, back), back);
        assert_eq!(arena.concat(front, eps), front);
    }

    #[test]
    fn and_all_folds_right() {
        let (mut voc, mut arena) = setup();
        let a = arena.prim(voc.class("A"));
        let b = arena.prim(voc.class("B"));
        let c = arena.prim(voc.class("C"));
        let all = arena.and_all([a, b, c]);
        assert_eq!(arena.conjuncts(all), vec![a, b, c]);
        let empty = arena.and_all([]);
        assert_eq!(arena.concept(empty), Concept::Top);
        let single = arena.and_all([b]);
        assert_eq!(single, b);
    }

    #[test]
    fn concept_size_counts_nodes() {
        let (mut voc, mut arena) = setup();
        let male = arena.prim(voc.class("Male"));
        let patient = arena.prim(voc.class("Patient"));
        let both = arena.and(male, patient);
        assert_eq!(arena.concept_size(both), 3);

        let female = arena.prim(voc.class("Female"));
        let consults = Attr::primitive(voc.attribute("consults"));
        let p = arena.path1(consults, female);
        let exists = arena.exists(p);
        // ∃(consults: Female): exists node + restriction + Female
        assert_eq!(arena.concept_size(exists), 3);

        let eps = arena.empty_path();
        let agree = arena.agree(p, eps);
        assert_eq!(arena.concept_size(agree), 3);
    }

    #[test]
    fn constants_and_classes_are_collected() {
        let (mut voc, mut arena) = setup();
        let aspirin = voc.constant("Aspirin");
        let drug = voc.class("Drug");
        let takes = Attr::primitive(voc.attribute("takes"));
        let sing = arena.singleton(aspirin);
        let d = arena.prim(drug);
        let restricted = arena.and(d, sing);
        let p = arena.path1(takes, restricted);
        let c = arena.exists(p);
        assert_eq!(arena.constants_in(c), vec![aspirin]);
        assert_eq!(arena.classes_in(c), vec![drug]);
    }

    #[test]
    fn depth_reflects_nesting() {
        let (mut voc, mut arena) = setup();
        let top = arena.top();
        let a = Attr::primitive(voc.attribute("a"));
        let inner_path = arena.path1(a, top);
        let inner = arena.exists(inner_path);
        let outer_path = arena.path1(a, inner);
        let outer = arena.exists(outer_path);
        assert_eq!(arena.concept_depth(top), 0);
        assert_eq!(arena.concept_depth(inner), 1);
        assert_eq!(arena.concept_depth(outer), 2);
    }
}
