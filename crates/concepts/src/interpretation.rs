//! Finite interpretations and the set semantics of SL and QL (Table 1,
//! column 3).
//!
//! An interpretation `I = (Δ, ·^I)` consists of a finite domain and an
//! extension function mapping every primitive concept to a subset of the
//! domain, every primitive attribute to a binary relation over it, and
//! every constant to an element (distinct constants to distinct elements —
//! the Unique Name Assumption). Complex concepts and paths are interpreted
//! by the equations of Table 1.
//!
//! Finite interpretations serve three purposes in this reproduction:
//! they are the reference semantics for property tests (experiment E4),
//! they cross-check the calculus by model enumeration, and the canonical
//! interpretation constructed by the calculus (Section 4.2) is exported in
//! this representation so the soundness proofs can be exercised as code.

use crate::attribute::Attr;
use crate::schema::{Schema, SchemaAxiom, SlConcept};
use crate::symbol::{AttrId, ClassId, ConstId};
use crate::term::{Concept, ConceptId, Path, PathId, TermArena};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// An element of the domain of an interpretation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Element(pub u32);

impl Element {
    /// Raw index of the element.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A finite interpretation.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Interpretation {
    domain_size: u32,
    class_ext: BTreeMap<ClassId, BTreeSet<Element>>,
    attr_ext: BTreeMap<AttrId, BTreeSet<(Element, Element)>>,
    const_map: HashMap<ConstId, Element>,
}

impl Interpretation {
    /// Creates an interpretation with a domain of `domain_size` elements
    /// `Element(0) … Element(domain_size - 1)` and empty extensions.
    pub fn new(domain_size: u32) -> Self {
        Interpretation {
            domain_size,
            ..Default::default()
        }
    }

    /// The number of domain elements.
    pub fn domain_size(&self) -> usize {
        self.domain_size as usize
    }

    /// Iterates over the domain.
    pub fn domain(&self) -> impl Iterator<Item = Element> + '_ {
        (0..self.domain_size).map(Element)
    }

    /// Grows the domain to contain at least `size` elements.
    pub fn ensure_domain(&mut self, size: u32) {
        self.domain_size = self.domain_size.max(size);
    }

    /// Adds a fresh element to the domain and returns it.
    pub fn add_element(&mut self) -> Element {
        let e = Element(self.domain_size);
        self.domain_size += 1;
        e
    }

    /// Asserts that `element` is an instance of the primitive class.
    pub fn add_class_member(&mut self, class: ClassId, element: Element) {
        self.ensure_domain(element.0 + 1);
        self.class_ext.entry(class).or_default().insert(element);
    }

    /// Asserts the attribute pair `(from, to)`.
    pub fn add_attr_pair(&mut self, attr: AttrId, from: Element, to: Element) {
        self.ensure_domain(from.0.max(to.0) + 1);
        self.attr_ext.entry(attr).or_default().insert((from, to));
    }

    /// Maps a constant to a domain element.
    ///
    /// The Unique Name Assumption is *not* checked here (workload
    /// generators may build candidate mappings incrementally); call
    /// [`Interpretation::respects_unique_names`] to verify it.
    pub fn set_constant(&mut self, constant: ConstId, element: Element) {
        self.ensure_domain(element.0 + 1);
        self.const_map.insert(constant, element);
    }

    /// The element denoted by a constant, if mapped.
    pub fn constant(&self, constant: ConstId) -> Option<Element> {
        self.const_map.get(&constant).copied()
    }

    /// Whether distinct constants denote distinct elements.
    pub fn respects_unique_names(&self) -> bool {
        let mut seen: HashMap<Element, ConstId> = HashMap::new();
        for (&c, &e) in &self.const_map {
            if let Some(&other) = seen.get(&e) {
                if other != c {
                    return false;
                }
            }
            seen.insert(e, c);
        }
        true
    }

    /// The extension of a primitive class.
    pub fn class_extension(&self, class: ClassId) -> impl Iterator<Item = Element> + '_ {
        self.class_ext
            .get(&class)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Whether `element ∈ A^I` for a primitive class `A`.
    pub fn is_in_class(&self, class: ClassId, element: Element) -> bool {
        self.class_ext
            .get(&class)
            .is_some_and(|s| s.contains(&element))
    }

    /// The extension of a primitive attribute.
    pub fn attr_extension(&self, attr: AttrId) -> impl Iterator<Item = (Element, Element)> + '_ {
        self.attr_ext
            .get(&attr)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Whether `(from, to) ∈ P^I`.
    pub fn has_attr_pair(&self, attr: AttrId, from: Element, to: Element) -> bool {
        self.attr_ext
            .get(&attr)
            .is_some_and(|s| s.contains(&(from, to)))
    }

    /// The fillers `{ y | (x, y) ∈ R^I }` of a possibly inverted attribute.
    pub fn fillers(&self, attr: Attr, from: Element) -> BTreeSet<Element> {
        let mut out = BTreeSet::new();
        if let Some(pairs) = self.attr_ext.get(&attr.base()) {
            for &(a, b) in pairs {
                if attr.is_inverted() {
                    if b == from {
                        out.insert(a);
                    }
                } else if a == from {
                    out.insert(b);
                }
            }
        }
        out
    }

    // ----- set semantics of QL (Table 1, column 3) -----------------------

    /// `R^I` for a possibly inverted attribute.
    pub fn eval_attr(&self, attr: Attr) -> BTreeSet<(Element, Element)> {
        let mut out = BTreeSet::new();
        if let Some(pairs) = self.attr_ext.get(&attr.base()) {
            for &(a, b) in pairs {
                if attr.is_inverted() {
                    out.insert((b, a));
                } else {
                    out.insert((a, b));
                }
            }
        }
        out
    }

    /// `(R:C)^I = { (d₁, d₂) ∈ R^I | d₂ ∈ C^I }`.
    pub fn eval_restriction(
        &self,
        arena: &TermArena,
        attr: Attr,
        concept: ConceptId,
    ) -> BTreeSet<(Element, Element)> {
        let c_ext = self.eval_concept(arena, concept);
        self.eval_attr(attr)
            .into_iter()
            .filter(|&(_, d2)| c_ext.contains(&d2))
            .collect()
    }

    /// `p^I`: composition of the restricted attributes along the path; the
    /// empty path denotes the identity relation on the domain.
    pub fn eval_path(&self, arena: &TermArena, path: PathId) -> BTreeSet<(Element, Element)> {
        match arena.path(path) {
            Path::Empty => self.domain().map(|d| (d, d)).collect(),
            Path::Step(restriction, rest) => {
                let first = self.eval_restriction(arena, restriction.attr, restriction.concept);
                let rest_rel = self.eval_path(arena, rest);
                let mut out = BTreeSet::new();
                for &(d1, d2) in &first {
                    for &(e1, e2) in &rest_rel {
                        if d2 == e1 {
                            out.insert((d1, e2));
                        }
                    }
                }
                out
            }
        }
    }

    /// `C^I` for a QL concept.
    pub fn eval_concept(&self, arena: &TermArena, concept: ConceptId) -> BTreeSet<Element> {
        match arena.concept(concept) {
            Concept::Prim(class) => self.class_extension(class).collect(),
            Concept::Top => self.domain().collect(),
            Concept::Singleton(constant) => match self.constant(constant) {
                Some(e) => std::iter::once(e).collect(),
                None => BTreeSet::new(),
            },
            Concept::And(l, r) => {
                let left = self.eval_concept(arena, l);
                let right = self.eval_concept(arena, r);
                left.intersection(&right).copied().collect()
            }
            Concept::Exists(path) => self
                .eval_path(arena, path)
                .into_iter()
                .map(|(d1, _)| d1)
                .collect(),
            Concept::Agree(p, q) => {
                let p_rel = self.eval_path(arena, p);
                let q_rel = self.eval_path(arena, q);
                self.domain()
                    .filter(|&d1| {
                        p_rel
                            .iter()
                            .any(|&(a, b)| a == d1 && q_rel.contains(&(d1, b)))
                    })
                    .collect()
            }
        }
    }

    /// Whether `element ∈ C^I`.
    pub fn satisfies_concept(
        &self,
        arena: &TermArena,
        concept: ConceptId,
        element: Element,
    ) -> bool {
        self.eval_concept(arena, concept).contains(&element)
    }

    // ----- set semantics of SL -------------------------------------------

    /// `D^I` for an SL concept.
    pub fn eval_sl_concept(&self, concept: SlConcept) -> BTreeSet<Element> {
        match concept {
            SlConcept::Prim(class) => self.class_extension(class).collect(),
            SlConcept::All(attr, class) => self
                .domain()
                .filter(|&d1| {
                    self.fillers(Attr::primitive(attr), d1)
                        .iter()
                        .all(|&d2| self.is_in_class(class, d2))
                })
                .collect(),
            SlConcept::Exists(attr) => self
                .domain()
                .filter(|&d1| !self.fillers(Attr::primitive(attr), d1).is_empty())
                .collect(),
            SlConcept::AtMostOne(attr) => self
                .domain()
                .filter(|&d1| self.fillers(Attr::primitive(attr), d1).len() <= 1)
                .collect(),
        }
    }

    /// Whether the interpretation satisfies a single schema axiom.
    pub fn satisfies_axiom(&self, axiom: &SchemaAxiom) -> bool {
        match *axiom {
            SchemaAxiom::Inclusion(class, rhs) => {
                let lhs_ext: BTreeSet<Element> = self.class_extension(class).collect();
                let rhs_ext = self.eval_sl_concept(rhs);
                lhs_ext.is_subset(&rhs_ext)
            }
            SchemaAxiom::AttrTyping(attr, dom, rng) => self
                .attr_extension(attr)
                .all(|(d1, d2)| self.is_in_class(dom, d1) && self.is_in_class(rng, d2)),
        }
    }

    /// Whether the interpretation is a Σ-interpretation (satisfies every
    /// axiom of the schema) and respects the Unique Name Assumption.
    pub fn satisfies_schema(&self, schema: &Schema) -> bool {
        self.respects_unique_names() && schema.axioms().iter().all(|ax| self.satisfies_axiom(ax))
    }

    /// Checks Σ-subsumption on this single interpretation: whether
    /// `C^I ⊆ D^I`. Used by the model-enumeration oracle.
    pub fn subsumed_here(&self, arena: &TermArena, sub: ConceptId, sup: ConceptId) -> bool {
        let sub_ext = self.eval_concept(arena, sub);
        let sup_ext = self.eval_concept(arena, sup);
        sub_ext.is_subset(&sup_ext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Vocabulary;

    struct Fixture {
        voc: Vocabulary,
        arena: TermArena,
        interp: Interpretation,
        patient: ClassId,
        doctor: ClassId,
        disease: ClassId,
        consults: AttrId,
        suffers: AttrId,
    }

    /// Three-element interpretation: e0 a patient consulting doctor e1 and
    /// suffering from disease e2; the doctor is skilled in nothing.
    fn fixture() -> Fixture {
        let mut voc = Vocabulary::new();
        let patient = voc.class("Patient");
        let doctor = voc.class("Doctor");
        let disease = voc.class("Disease");
        let consults = voc.attribute("consults");
        let suffers = voc.attribute("suffers");
        let arena = TermArena::new();
        let mut interp = Interpretation::new(3);
        interp.add_class_member(patient, Element(0));
        interp.add_class_member(doctor, Element(1));
        interp.add_class_member(disease, Element(2));
        interp.add_attr_pair(consults, Element(0), Element(1));
        interp.add_attr_pair(suffers, Element(0), Element(2));
        Fixture {
            voc,
            arena,
            interp,
            patient,
            doctor,
            disease,
            consults,
            suffers,
        }
    }

    #[test]
    fn primitive_top_and_intersection() {
        let mut f = fixture();
        let p = f.arena.prim(f.patient);
        let d = f.arena.prim(f.doctor);
        let top = f.arena.top();
        let pd = f.arena.and(p, d);
        assert_eq!(
            f.interp.eval_concept(&f.arena, p),
            BTreeSet::from([Element(0)])
        );
        assert_eq!(f.interp.eval_concept(&f.arena, top).len(), 3);
        assert!(f.interp.eval_concept(&f.arena, pd).is_empty());
    }

    #[test]
    fn exists_path_follows_restrictions() {
        let mut f = fixture();
        let doctor = f.arena.prim(f.doctor);
        let path = f.arena.path1(Attr::primitive(f.consults), doctor);
        let c = f.arena.exists(path);
        assert_eq!(
            f.interp.eval_concept(&f.arena, c),
            BTreeSet::from([Element(0)])
        );

        // Restricting the filler to Disease kills the path.
        let disease = f.arena.prim(f.disease);
        let bad_path = f.arena.path1(Attr::primitive(f.consults), disease);
        let bad = f.arena.exists(bad_path);
        assert!(f.interp.eval_concept(&f.arena, bad).is_empty());
    }

    #[test]
    fn inverse_attribute_reverses_pairs() {
        let mut f = fixture();
        let patient = f.arena.prim(f.patient);
        let path = f.arena.path1(Attr::inverse_of(f.consults), patient);
        let c = f.arena.exists(path);
        // The doctor (e1) has a consults⁻¹ filler that is a patient.
        assert_eq!(
            f.interp.eval_concept(&f.arena, c),
            BTreeSet::from([Element(1)])
        );
    }

    #[test]
    fn empty_path_is_identity_and_agree_epsilon_is_cycle() {
        let mut f = fixture();
        let eps = f.arena.empty_path();
        let rel = f.interp.eval_path(&f.arena, eps);
        assert_eq!(rel.len(), 3);
        assert!(rel.contains(&(Element(1), Element(1))));

        // ∃(consults:⊤)(consults⁻¹:⊤) ≐ ε holds at e0 (go to the doctor and back).
        let top = f.arena.top();
        let fwd = Attr::primitive(f.consults);
        let path = f.arena.path_of(&[(fwd, top), (fwd.inverse(), top)]);
        let agree = f.arena.agree_epsilon(path);
        assert_eq!(
            f.interp.eval_concept(&f.arena, agree),
            BTreeSet::from([Element(0)])
        );
    }

    #[test]
    fn agreement_of_two_paths_requires_common_filler() {
        let mut f = fixture();
        let top = f.arena.top();
        let p = f.arena.path1(Attr::primitive(f.consults), top);
        let q = f.arena.path1(Attr::primitive(f.suffers), top);
        let agree = f.arena.agree(p, q);
        // e0 consults e1 but suffers e2, so no common filler.
        assert!(f.interp.eval_concept(&f.arena, agree).is_empty());

        // Add a suffers edge to e1: now the paths agree at e0.
        f.interp.add_attr_pair(f.suffers, Element(0), Element(1));
        assert_eq!(
            f.interp.eval_concept(&f.arena, agree),
            BTreeSet::from([Element(0)])
        );
    }

    #[test]
    fn singleton_uses_constant_mapping() {
        let mut f = fixture();
        let aspirin = f.voc.constant("Aspirin");
        let sing = f.arena.singleton(aspirin);
        assert!(f.interp.eval_concept(&f.arena, sing).is_empty());
        f.interp.set_constant(aspirin, Element(2));
        assert_eq!(
            f.interp.eval_concept(&f.arena, sing),
            BTreeSet::from([Element(2)])
        );
    }

    #[test]
    fn unique_name_assumption_detection() {
        let mut f = fixture();
        let a = f.voc.constant("a");
        let b = f.voc.constant("b");
        f.interp.set_constant(a, Element(0));
        f.interp.set_constant(b, Element(0));
        assert!(!f.interp.respects_unique_names());
        f.interp.set_constant(b, Element(1));
        assert!(f.interp.respects_unique_names());
    }

    #[test]
    fn sl_semantics_and_axiom_satisfaction() {
        let f = fixture();
        // ∀consults.Doctor holds everywhere (only e0 has a filler, a doctor).
        let all = SlConcept::All(f.consults, f.doctor);
        assert_eq!(f.interp.eval_sl_concept(all).len(), 3);
        // ∃consults holds only at e0.
        let ex = SlConcept::Exists(f.consults);
        assert_eq!(f.interp.eval_sl_concept(ex), BTreeSet::from([Element(0)]));
        // (≤1 consults) holds everywhere.
        let f1 = SlConcept::AtMostOne(f.consults);
        assert_eq!(f.interp.eval_sl_concept(f1).len(), 3);

        let mut schema = Schema::new();
        schema.add_value_restriction(f.patient, f.consults, f.doctor);
        schema.add_necessary(f.patient, f.suffers);
        schema.add_attr_typing(f.suffers, f.patient, f.disease);
        assert!(f.interp.satisfies_schema(&schema));

        // Declaring consults as necessary for Doctor breaks the state.
        schema.add_necessary(f.doctor, f.consults);
        assert!(!f.interp.satisfies_schema(&schema));
    }

    #[test]
    fn attr_typing_axiom_checks_both_ends() {
        let f = fixture();
        let ok = SchemaAxiom::AttrTyping(f.consults, f.patient, f.doctor);
        assert!(f.interp.satisfies_axiom(&ok));
        let bad = SchemaAxiom::AttrTyping(f.consults, f.doctor, f.doctor);
        assert!(!f.interp.satisfies_axiom(&bad));
    }

    #[test]
    fn subsumed_here_compares_extensions() {
        let mut f = fixture();
        let p = f.arena.prim(f.patient);
        let top = f.arena.top();
        assert!(f.interp.subsumed_here(&f.arena, p, top));
        assert!(!f.interp.subsumed_here(&f.arena, top, p));
    }
}
