//! Interned vocabulary symbols: primitive concepts (classes), primitive
//! attributes, and constants.
//!
//! The paper's alphabets `A` (primitive concepts), `P` (primitive
//! attributes) and `a, b, c` (constants, interpreted under the Unique Name
//! Assumption) are represented by small copyable identifiers handed out by a
//! [`Vocabulary`]. All name-to-id resolution is exact string matching; names
//! are case-sensitive, as in the paper's examples (`Patient`, `skilled_in`).

use std::collections::HashMap;
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Raw index of this symbol inside its vocabulary table.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Reconstructs an identifier from a raw index.
            ///
            /// Intended for serialization and workload generators that
            /// enumerate symbols densely; using an index that was never
            /// handed out by the owning [`Vocabulary`] yields lookups that
            /// panic or return placeholder names.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a primitive concept (a schema or query class name).
    ClassId,
    "C"
);
define_id!(
    /// Identifier of a primitive attribute (a binary relation name).
    AttrId,
    "P"
);
define_id!(
    /// Identifier of a constant (an object name, under the Unique Name
    /// Assumption distinct constants denote distinct objects).
    ConstId,
    "a"
);

/// A symbol table interning class, attribute, and constant names.
///
/// The vocabulary is append-only: symbols are never removed, and interning
/// the same name twice returns the same identifier. The well-known universal
/// class `Object` of the paper is *not* special-cased here; the translation
/// layer maps it to the QL concept `⊤` instead.
#[derive(Debug, Default, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vocabulary {
    class_names: Vec<String>,
    attr_names: Vec<String>,
    const_names: Vec<String>,
    class_by_name: HashMap<String, ClassId>,
    attr_by_name: HashMap<String, AttrId>,
    const_by_name: HashMap<String, ConstId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a class name, returning its identifier.
    pub fn class(&mut self, name: &str) -> ClassId {
        if let Some(&id) = self.class_by_name.get(name) {
            return id;
        }
        let id = ClassId(self.class_names.len() as u32);
        self.class_names.push(name.to_owned());
        self.class_by_name.insert(name.to_owned(), id);
        id
    }

    /// Interns an attribute name, returning its identifier.
    pub fn attribute(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.attr_by_name.get(name) {
            return id;
        }
        let id = AttrId(self.attr_names.len() as u32);
        self.attr_names.push(name.to_owned());
        self.attr_by_name.insert(name.to_owned(), id);
        id
    }

    /// Interns a constant name, returning its identifier.
    pub fn constant(&mut self, name: &str) -> ConstId {
        if let Some(&id) = self.const_by_name.get(name) {
            return id;
        }
        let id = ConstId(self.const_names.len() as u32);
        self.const_names.push(name.to_owned());
        self.const_by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already interned class by name.
    pub fn find_class(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Looks up an already interned attribute by name.
    pub fn find_attribute(&self, name: &str) -> Option<AttrId> {
        self.attr_by_name.get(name).copied()
    }

    /// Looks up an already interned constant by name.
    pub fn find_constant(&self, name: &str) -> Option<ConstId> {
        self.const_by_name.get(name).copied()
    }

    /// Name of a class.
    pub fn class_name(&self, id: ClassId) -> &str {
        &self.class_names[id.index()]
    }

    /// Name of an attribute.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attr_names[id.index()]
    }

    /// Name of a constant.
    pub fn const_name(&self, id: ConstId) -> &str {
        &self.const_names[id.index()]
    }

    /// Number of interned classes.
    pub fn class_count(&self) -> usize {
        self.class_names.len()
    }

    /// Number of interned attributes.
    pub fn attr_count(&self) -> usize {
        self.attr_names.len()
    }

    /// Number of interned constants.
    pub fn const_count(&self) -> usize {
        self.const_names.len()
    }

    /// Iterates over all class identifiers in interning order.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.class_names.len() as u32).map(ClassId)
    }

    /// Iterates over all attribute identifiers in interning order.
    pub fn attributes(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attr_names.len() as u32).map(AttrId)
    }

    /// Iterates over all constant identifiers in interning order.
    pub fn constants(&self) -> impl Iterator<Item = ConstId> + '_ {
        (0..self.const_names.len() as u32).map(ConstId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut voc = Vocabulary::new();
        let a = voc.class("Patient");
        let b = voc.class("Patient");
        assert_eq!(a, b);
        assert_eq!(voc.class_count(), 1);
        assert_eq!(voc.class_name(a), "Patient");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut voc = Vocabulary::new();
        let a = voc.class("Patient");
        let b = voc.class("Doctor");
        assert_ne!(a, b);
        assert_eq!(voc.class_count(), 2);
    }

    #[test]
    fn namespaces_are_independent() {
        let mut voc = Vocabulary::new();
        let c = voc.class("name");
        let p = voc.attribute("name");
        let k = voc.constant("name");
        assert_eq!(c.index(), 0);
        assert_eq!(p.index(), 0);
        assert_eq!(k.index(), 0);
        assert_eq!(voc.class_name(c), "name");
        assert_eq!(voc.attr_name(p), "name");
        assert_eq!(voc.const_name(k), "name");
    }

    #[test]
    fn find_returns_none_for_unknown() {
        let voc = Vocabulary::new();
        assert!(voc.find_class("Nope").is_none());
        assert!(voc.find_attribute("nope").is_none());
        assert!(voc.find_constant("nope").is_none());
    }

    #[test]
    fn iteration_matches_interning_order() {
        let mut voc = Vocabulary::new();
        let names = ["A", "B", "C"];
        let ids: Vec<ClassId> = names.iter().map(|n| voc.class(n)).collect();
        let collected: Vec<ClassId> = voc.classes().collect();
        assert_eq!(ids, collected);
        for (id, name) in ids.iter().zip(names.iter()) {
            assert_eq!(voc.class_name(*id), *name);
        }
    }

    #[test]
    fn from_index_round_trips() {
        let mut voc = Vocabulary::new();
        let a = voc.attribute("consults");
        assert_eq!(AttrId::from_index(a.index()), a);
    }
}
