//! Attributes of the query language QL: primitive attributes and their
//! inverses.
//!
//! In the schema language SL attributes must be primitive; in QL an
//! attribute `R` can be a primitive attribute `P` or an inverse `P⁻¹`
//! (Section 3.1 of the paper). The paper writes `R⁻¹` for the operation
//! that maps `P` to `P⁻¹` and `P⁻¹` back to `P`; this is [`Attr::inverse`].

use crate::symbol::AttrId;

/// A QL attribute: a primitive attribute or the inverse of one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Attr {
    prim: AttrId,
    inverted: bool,
}

impl Attr {
    /// The primitive attribute `P`.
    #[inline]
    pub fn primitive(prim: AttrId) -> Self {
        Attr {
            prim,
            inverted: false,
        }
    }

    /// The inverse attribute `P⁻¹`.
    #[inline]
    pub fn inverse_of(prim: AttrId) -> Self {
        Attr {
            prim,
            inverted: true,
        }
    }

    /// The underlying primitive attribute symbol.
    #[inline]
    pub fn base(self) -> AttrId {
        self.prim
    }

    /// Whether this attribute is an inverse `P⁻¹`.
    #[inline]
    pub fn is_inverted(self) -> bool {
        self.inverted
    }

    /// Whether this attribute is a plain primitive attribute `P`.
    #[inline]
    pub fn is_primitive(self) -> bool {
        !self.inverted
    }

    /// The paper's `R⁻¹`: `P ↦ P⁻¹` and `P⁻¹ ↦ P`.
    #[inline]
    pub fn inverse(self) -> Self {
        Attr {
            prim: self.prim,
            inverted: !self.inverted,
        }
    }

    /// If this attribute is primitive, returns its symbol.
    #[inline]
    pub fn as_primitive(self) -> Option<AttrId> {
        if self.inverted {
            None
        } else {
            Some(self.prim)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> AttrId {
        AttrId::from_index(n as usize)
    }

    #[test]
    fn inverse_is_an_involution() {
        let a = Attr::primitive(p(3));
        assert_eq!(a.inverse().inverse(), a);
        let b = Attr::inverse_of(p(3));
        assert_eq!(b.inverse().inverse(), b);
        assert_eq!(a.inverse(), b);
    }

    #[test]
    fn primitive_and_inverse_are_distinct() {
        let a = Attr::primitive(p(1));
        let b = Attr::inverse_of(p(1));
        assert_ne!(a, b);
        assert_eq!(a.base(), b.base());
        assert!(a.is_primitive());
        assert!(!b.is_primitive());
        assert!(b.is_inverted());
    }

    #[test]
    fn as_primitive_only_for_non_inverted() {
        assert_eq!(Attr::primitive(p(2)).as_primitive(), Some(p(2)));
        assert_eq!(Attr::inverse_of(p(2)).as_primitive(), None);
    }
}
