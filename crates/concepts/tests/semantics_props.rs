//! Property tests for Table 1: the set semantics and the transformational
//! (first-order) semantics of QL must agree on every concept and every
//! finite interpretation, and normalization must preserve extensions.

use proptest::prelude::*;
use subq_concepts::prelude::*;

/// A self-contained description of a concept that can be interned into an
/// arena once the vocabulary is fixed. Proptest strategies cannot thread a
/// `&mut TermArena` through generation, so we generate this intermediate
/// tree first.
#[derive(Clone, Debug)]
enum ConceptDesc {
    Prim(usize),
    Top,
    Singleton(usize),
    And(Box<ConceptDesc>, Box<ConceptDesc>),
    Exists(Vec<(usize, bool, ConceptDesc)>),
    Agree(
        Vec<(usize, bool, ConceptDesc)>,
        Vec<(usize, bool, ConceptDesc)>,
    ),
}

const N_CLASSES: usize = 4;
const N_ATTRS: usize = 3;
const N_CONSTS: usize = 2;

fn concept_desc() -> impl Strategy<Value = ConceptDesc> {
    let leaf = prop_oneof![
        (0..N_CLASSES).prop_map(ConceptDesc::Prim),
        Just(ConceptDesc::Top),
        (0..N_CONSTS).prop_map(ConceptDesc::Singleton),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        let step = (0..N_ATTRS, any::<bool>(), inner.clone());
        let path = prop::collection::vec(step, 1..3);
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ConceptDesc::And(Box::new(a), Box::new(b))),
            path.clone().prop_map(ConceptDesc::Exists),
            (path.clone(), path).prop_map(|(p, q)| ConceptDesc::Agree(p, q)),
        ]
    })
}

struct World {
    #[allow(dead_code)] // kept so failure messages can be rendered with names if needed
    voc: Vocabulary,
    arena: TermArena,
    classes: Vec<ClassId>,
    attrs: Vec<AttrId>,
    consts: Vec<ConstId>,
}

fn world() -> World {
    let mut voc = Vocabulary::new();
    let classes = (0..N_CLASSES)
        .map(|i| voc.class(&format!("K{i}")))
        .collect();
    let attrs = (0..N_ATTRS)
        .map(|i| voc.attribute(&format!("r{i}")))
        .collect();
    let consts = (0..N_CONSTS)
        .map(|i| voc.constant(&format!("c{i}")))
        .collect();
    World {
        voc,
        arena: TermArena::new(),
        classes,
        attrs,
        consts,
    }
}

fn intern(world: &mut World, desc: &ConceptDesc) -> ConceptId {
    match desc {
        ConceptDesc::Prim(i) => world.arena.prim(world.classes[*i]),
        ConceptDesc::Top => world.arena.top(),
        ConceptDesc::Singleton(i) => world.arena.singleton(world.consts[*i]),
        ConceptDesc::And(a, b) => {
            let left = intern(world, a);
            let right = intern(world, b);
            world.arena.and(left, right)
        }
        ConceptDesc::Exists(steps) => {
            let path = intern_path(world, steps);
            world.arena.exists(path)
        }
        ConceptDesc::Agree(p, q) => {
            let left = intern_path(world, p);
            let right = intern_path(world, q);
            world.arena.agree(left, right)
        }
    }
}

fn intern_path(world: &mut World, steps: &[(usize, bool, ConceptDesc)]) -> PathId {
    let interned: Vec<(Attr, ConceptId)> = steps
        .iter()
        .map(|(attr, inverted, desc)| {
            let concept = intern(world, desc);
            let attr = if *inverted {
                Attr::inverse_of(world.attrs[*attr])
            } else {
                Attr::primitive(world.attrs[*attr])
            };
            (attr, concept)
        })
        .collect();
    world.arena.path_of(&interned)
}

/// A description of a small interpretation: domain size, class members,
/// attribute edges, and constant denotations.
#[derive(Clone, Debug)]
struct InterpDesc {
    domain: u32,
    members: Vec<(usize, u32)>,
    edges: Vec<(usize, u32, u32)>,
    const_elems: Vec<u32>,
}

fn interp_desc() -> impl Strategy<Value = InterpDesc> {
    (2u32..5).prop_flat_map(|domain| {
        let members = prop::collection::vec((0..N_CLASSES, 0..domain), 0..10);
        let edges = prop::collection::vec((0..N_ATTRS, 0..domain, 0..domain), 0..12);
        let consts = prop::collection::vec(0..domain, N_CONSTS);
        (Just(domain), members, edges, consts).prop_map(|(domain, members, edges, const_elems)| {
            InterpDesc {
                domain,
                members,
                edges,
                const_elems,
            }
        })
    })
}

fn build_interp(world: &World, desc: &InterpDesc) -> Interpretation {
    let mut interp = Interpretation::new(desc.domain);
    for (class, elem) in &desc.members {
        interp.add_class_member(world.classes[*class], Element(*elem));
    }
    for (attr, from, to) in &desc.edges {
        interp.add_attr_pair(world.attrs[*attr], Element(*from), Element(*to));
    }
    // Map constants injectively by skewing collisions to distinct elements
    // modulo the domain; the UNA is only needed for the FOL comparison when
    // it actually holds, so we force it.
    let mut used = std::collections::HashSet::new();
    for (i, base) in desc.const_elems.iter().enumerate() {
        let mut elem = *base % desc.domain;
        let mut tries = 0;
        while used.contains(&elem) && tries < desc.domain {
            elem = (elem + 1) % desc.domain;
            tries += 1;
        }
        if !used.contains(&elem) {
            used.insert(elem);
            interp.set_constant(world.consts[i], Element(elem));
        }
    }
    interp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Table 1 (experiment E4): for every element of every interpretation,
    /// membership under the set semantics coincides with satisfaction of
    /// the translated first-order formula.
    #[test]
    fn set_and_fol_semantics_agree(desc in concept_desc(), idesc in interp_desc()) {
        let mut w = world();
        let concept = intern(&mut w, &desc);
        let interp = build_interp(&w, &idesc);
        for e in interp.domain() {
            let set_says = interp.satisfies_concept(&w.arena, concept, e);
            let fol_says = subq_concepts::fol::concept_holds_at(&w.arena, &interp, concept, e);
            prop_assert_eq!(set_says, fol_says, "disagreement at {:?} on {:?}", e, desc);
        }
    }

    /// Normalizing `∃p ≐ q` into `∃p' ≐ ε` preserves the extension on every
    /// interpretation (the equivalence claimed at the start of Section 4).
    #[test]
    fn normalization_preserves_extension(desc in concept_desc(), idesc in interp_desc()) {
        let mut w = world();
        let concept = intern(&mut w, &desc);
        let interp = build_interp(&w, &idesc);
        let before = interp.eval_concept(&w.arena, concept);
        let normalized = normalize_concept(&mut w.arena, concept);
        prop_assert!(subq_concepts::normalize::is_normalized(&w.arena, normalized));
        let after = interp.eval_concept(&w.arena, normalized);
        prop_assert_eq!(before, after);
    }

    /// Intersection is interpreted as set intersection (a direct reading of
    /// Table 1) and is therefore monotone: `(C ⊓ D)^I ⊆ C^I`.
    #[test]
    fn intersection_is_set_intersection(
        a in concept_desc(),
        b in concept_desc(),
        idesc in interp_desc(),
    ) {
        let mut w = world();
        let ca = intern(&mut w, &a);
        let cb = intern(&mut w, &b);
        let cab = w.arena.and(ca, cb);
        let interp = build_interp(&w, &idesc);
        let ext_a = interp.eval_concept(&w.arena, ca);
        let ext_b = interp.eval_concept(&w.arena, cb);
        let ext_ab = interp.eval_concept(&w.arena, cab);
        let expected: std::collections::BTreeSet<_> =
            ext_a.intersection(&ext_b).copied().collect();
        prop_assert_eq!(&ext_ab, &expected);
        prop_assert!(ext_ab.is_subset(&ext_a));
    }

    /// `∃p ≐ ε` implies `∃p`: an object with a cyclic path filler certainly
    /// has a path filler.
    #[test]
    fn agreement_with_epsilon_implies_exists(desc in concept_desc(), idesc in interp_desc()) {
        let mut w = world();
        // Build a single-step path whose restriction is the generated concept.
        let c = intern(&mut w, &desc);
        let attr = Attr::primitive(w.attrs[0]);
        let path = w.arena.path1(attr, c);
        let agree = w.arena.agree_epsilon(path);
        let exists = w.arena.exists(path);
        let interp = build_interp(&w, &idesc);
        let agree_ext = interp.eval_concept(&w.arena, agree);
        let exists_ext = interp.eval_concept(&w.arena, exists);
        prop_assert!(agree_ext.is_subset(&exists_ext));
    }

    /// The size measure is strictly positive and additive over ⊓.
    #[test]
    fn size_is_positive_and_additive(a in concept_desc(), b in concept_desc()) {
        let mut w = world();
        let ca = intern(&mut w, &a);
        let cb = intern(&mut w, &b);
        let cab = w.arena.and(ca, cb);
        let sa = w.arena.concept_size(ca);
        let sb = w.arena.concept_size(cb);
        prop_assert!(sa >= 1);
        prop_assert_eq!(w.arena.concept_size(cab), sa + sb + 1);
    }
}
