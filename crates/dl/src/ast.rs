//! Abstract syntax of the DL schema and query language (Section 2).

/// An attribute specification inside a class declaration, e.g.
/// `suffers: Disease` under the heading `attribute, necessary`.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttrSpec {
    /// The attribute name.
    pub name: String,
    /// The class restricting the values of the attribute for members of
    /// the declaring class.
    pub range: String,
    /// Whether the attribute is mandatory (`necessary`): at least one
    /// value must exist.
    pub necessary: bool,
    /// Whether the attribute is functional (`single`): at most one value
    /// may exist.
    pub single: bool,
}

/// A class declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClassDecl {
    /// The class name.
    pub name: String,
    /// Direct superclasses (the `isA` clause).
    pub is_a: Vec<String>,
    /// Attribute restrictions stated for members of this class.
    pub attributes: Vec<AttrSpec>,
    /// The non-structural constraint clause, if any.
    pub constraint: Option<ConstraintExpr>,
}

/// A global attribute declaration with domain, range and optional inverse
/// synonym (e.g. `skilled_in` with inverse `specialist`).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttrDecl {
    /// The attribute name.
    pub name: String,
    /// The domain class.
    pub domain: String,
    /// The range class.
    pub range: String,
    /// An optional synonym naming the inverse of this attribute. Synonyms
    /// may only be used in queries, not in other schema declarations.
    pub inverse: Option<String>,
}

/// A value filter attached to one step of a labeled path.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PathFilter {
    /// `(a: C)` — the value must be an instance of the class `C`.
    Class(String),
    /// `(a: {i})` — the value must be the object named `i`.
    Singleton(String),
    /// `a` as a shorthand for `(a: Object)` — any value.
    Any,
}

/// One step of a labeled path: a (possibly synonym) attribute with a value
/// filter.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PathStep {
    /// The attribute (or inverse synonym) name.
    pub attr: String,
    /// The filter on the values reached by this step.
    pub filter: PathFilter,
}

/// A labeled path in the `derived` clause of a query class, e.g.
/// `l_2: suffers.(specialist: Doctor)`.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LabeledPath {
    /// The label naming the derived object at the end of the path; may be
    /// omitted when it is used neither in `where` nor in the constraint.
    pub label: Option<String>,
    /// The chain of restricted attributes.
    pub steps: Vec<PathStep>,
}

/// A term of the constraint language: the implicit `this`, a bound
/// variable, a label of the enclosing query class, or an object constant.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Term {
    /// The object whose membership is being constrained.
    This,
    /// A variable bound by `forall`/`exists`, or a label of the query
    /// class.
    Ident(String),
}

/// A constraint-clause formula (the non-structural part of declarations).
///
/// The language is the first-order many-sorted language of Section 2.1:
/// quantifiers range over classes, and the only atoms are class membership
/// `(x in C)`, attribute atoms `(x a y)` and equalities.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ConstraintExpr {
    /// `(t in C)`.
    In(Term, String),
    /// `(s a t)` — `t` is an `a`-value of `s`.
    HasAttr(Term, String, Term),
    /// `(s = t)`.
    Eq(Term, Term),
    /// Negation.
    Not(Box<ConstraintExpr>),
    /// Conjunction.
    And(Box<ConstraintExpr>, Box<ConstraintExpr>),
    /// Disjunction.
    Or(Box<ConstraintExpr>, Box<ConstraintExpr>),
    /// `forall x/C φ`.
    Forall(String, String, Box<ConstraintExpr>),
    /// `exists x/C φ`.
    Exists(String, String, Box<ConstraintExpr>),
}

impl ConstraintExpr {
    /// The labels and free identifiers mentioned by the constraint
    /// (excluding variables bound by its own quantifiers).
    pub fn free_idents(&self) -> Vec<String> {
        fn walk(expr: &ConstraintExpr, bound: &mut Vec<String>, out: &mut Vec<String>) {
            let add = |term: &Term, bound: &Vec<String>, out: &mut Vec<String>| {
                if let Term::Ident(name) = term {
                    if !bound.contains(name) && !out.contains(name) {
                        out.push(name.clone());
                    }
                }
            };
            match expr {
                ConstraintExpr::In(t, _) => add(t, bound, out),
                ConstraintExpr::HasAttr(s, _, t) => {
                    add(s, bound, out);
                    add(t, bound, out);
                }
                ConstraintExpr::Eq(s, t) => {
                    add(s, bound, out);
                    add(t, bound, out);
                }
                ConstraintExpr::Not(inner) => walk(inner, bound, out),
                ConstraintExpr::And(a, b) | ConstraintExpr::Or(a, b) => {
                    walk(a, bound, out);
                    walk(b, bound, out);
                }
                ConstraintExpr::Forall(var, _, body) | ConstraintExpr::Exists(var, _, body) => {
                    bound.push(var.clone());
                    walk(body, bound, out);
                    bound.pop();
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut Vec::new(), &mut out);
        out
    }
}

/// A query class declaration (Section 2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QueryClassDecl {
    /// The name of the query class.
    pub name: String,
    /// Superclasses the answer objects must belong to.
    pub is_a: Vec<String>,
    /// Labeled derived paths.
    pub derived: Vec<LabeledPath>,
    /// Equalities between labels (`where` clause).
    pub where_eqs: Vec<(String, String)>,
    /// The non-structural constraint clause, if any.
    pub constraint: Option<ConstraintExpr>,
}

impl QueryClassDecl {
    /// A query class is a *view* when it has no non-structural part, i.e.
    /// it is captured completely by its QL translation and its answers may
    /// safely be used to answer subsumed queries (Section 2.2 / 3.2).
    pub fn is_view(&self) -> bool {
        self.constraint.is_none()
    }

    /// The labels declared in the `derived` clause.
    pub fn labels(&self) -> Vec<&str> {
        self.derived
            .iter()
            .filter_map(|p| p.label.as_deref())
            .collect()
    }
}

/// A complete DL model: schema declarations plus query classes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DlModel {
    /// Class declarations, in source order.
    pub classes: Vec<ClassDecl>,
    /// Attribute declarations, in source order.
    pub attributes: Vec<AttrDecl>,
    /// Query class declarations, in source order.
    pub queries: Vec<QueryClassDecl>,
}

impl DlModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        DlModel::default()
    }

    /// Looks up a class declaration by name.
    pub fn class(&self, name: &str) -> Option<&ClassDecl> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Looks up an attribute declaration by name.
    pub fn attribute(&self, name: &str) -> Option<&AttrDecl> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Looks up a query class by name.
    pub fn query_class(&self, name: &str) -> Option<&QueryClassDecl> {
        self.queries.iter().find(|q| q.name == name)
    }

    /// Resolves an attribute name that may be an inverse synonym: returns
    /// the underlying attribute name and whether the synonym denotes the
    /// inverse direction.
    pub fn resolve_attribute(&self, name: &str) -> Option<(&AttrDecl, bool)> {
        if let Some(decl) = self.attribute(name) {
            return Some((decl, false));
        }
        self.attributes
            .iter()
            .find(|a| a.inverse.as_deref() == Some(name))
            .map(|a| (a, true))
    }

    /// All class names declared or referenced anywhere in the model.
    pub fn referenced_classes(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |name: &str| {
            if !out.iter().any(|n| n == name) {
                out.push(name.to_owned());
            }
        };
        for class in &self.classes {
            push(&class.name);
            for sup in &class.is_a {
                push(sup);
            }
            for attr in &class.attributes {
                push(&attr.range);
            }
        }
        for attr in &self.attributes {
            push(&attr.domain);
            push(&attr.range);
        }
        for query in &self.queries {
            for sup in &query.is_a {
                push(sup);
            }
            for path in &query.derived {
                for step in &path.steps {
                    if let PathFilter::Class(c) = &step.filter {
                        push(c);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> QueryClassDecl {
        QueryClassDecl {
            name: "QueryPatient".into(),
            is_a: vec!["Male".into(), "Patient".into()],
            derived: vec![
                LabeledPath {
                    label: Some("l_1".into()),
                    steps: vec![PathStep {
                        attr: "consults".into(),
                        filter: PathFilter::Class("Female".into()),
                    }],
                },
                LabeledPath {
                    label: Some("l_2".into()),
                    steps: vec![
                        PathStep {
                            attr: "suffers".into(),
                            filter: PathFilter::Any,
                        },
                        PathStep {
                            attr: "specialist".into(),
                            filter: PathFilter::Class("Doctor".into()),
                        },
                    ],
                },
            ],
            where_eqs: vec![("l_1".into(), "l_2".into())],
            constraint: None,
        }
    }

    #[test]
    fn views_are_queries_without_constraints() {
        let mut query = sample_query();
        assert!(query.is_view());
        query.constraint = Some(ConstraintExpr::In(Term::This, "Patient".into()));
        assert!(!query.is_view());
    }

    #[test]
    fn labels_are_collected() {
        let query = sample_query();
        assert_eq!(query.labels(), vec!["l_1", "l_2"]);
    }

    #[test]
    fn model_lookup_and_inverse_resolution() {
        let mut model = DlModel::new();
        model.classes.push(ClassDecl {
            name: "Doctor".into(),
            is_a: vec![],
            attributes: vec![],
            constraint: None,
        });
        model.attributes.push(AttrDecl {
            name: "skilled_in".into(),
            domain: "Person".into(),
            range: "Topic".into(),
            inverse: Some("specialist".into()),
        });
        assert!(model.class("Doctor").is_some());
        assert!(model.class("Nurse").is_none());
        let (decl, inverted) = model.resolve_attribute("skilled_in").expect("direct");
        assert_eq!(decl.name, "skilled_in");
        assert!(!inverted);
        let (decl, inverted) = model.resolve_attribute("specialist").expect("synonym");
        assert_eq!(decl.name, "skilled_in");
        assert!(inverted);
        assert!(model.resolve_attribute("unknown").is_none());
    }

    #[test]
    fn referenced_classes_cover_all_clauses() {
        let mut model = DlModel::new();
        model.classes.push(ClassDecl {
            name: "Patient".into(),
            is_a: vec!["Person".into()],
            attributes: vec![AttrSpec {
                name: "takes".into(),
                range: "Drug".into(),
                necessary: false,
                single: false,
            }],
            constraint: None,
        });
        model.queries.push(sample_query());
        let classes = model.referenced_classes();
        for expected in ["Patient", "Person", "Drug", "Male", "Female", "Doctor"] {
            assert!(classes.iter().any(|c| c == expected), "missing {expected}");
        }
    }

    #[test]
    fn free_idents_skip_bound_variables() {
        // forall d/Drug (not (this takes d) or (d = Aspirin))
        let expr = ConstraintExpr::Forall(
            "d".into(),
            "Drug".into(),
            Box::new(ConstraintExpr::Or(
                Box::new(ConstraintExpr::Not(Box::new(ConstraintExpr::HasAttr(
                    Term::This,
                    "takes".into(),
                    Term::Ident("d".into()),
                )))),
                Box::new(ConstraintExpr::Eq(
                    Term::Ident("d".into()),
                    Term::Ident("Aspirin".into()),
                )),
            )),
        );
        assert_eq!(expr.free_idents(), vec!["Aspirin".to_owned()]);
    }
}
