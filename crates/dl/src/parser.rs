//! Recursive-descent parser for the DL frame syntax.
//!
//! The grammar follows the declarations shown in Figures 1, 3 and 5:
//!
//! ```text
//! model       ::= { class | attribute | queryclass }
//! class       ::= "Class" NAME [ "isA" names ] "with" class_body "end" NAME
//! class_body  ::= { attr_section | constraint_section }
//! attr_section ::= "attribute" { "," ("necessary" | "single") } { NAME ":" NAME }
//! constraint_section ::= "constraint" ":" expr
//! attribute   ::= "Attribute" NAME "with" { ("domain"|"range"|"inverse") ":" NAME } "end" NAME
//! queryclass  ::= "QueryClass" NAME [ "isA" names ] "with"
//!                 [ "derived" { path } ] [ "where" { NAME "=" NAME } ]
//!                 [ constraint_section ] "end" NAME
//! path        ::= [ NAME ":" ] step { "." step }
//! step        ::= NAME | "(" NAME ":" filter ")"
//! filter      ::= NAME | "{" NAME "}"
//! expr        ::= ("forall"|"exists") NAME "/" NAME expr | or_expr
//! or_expr     ::= and_expr { "or" and_expr }
//! and_expr    ::= unary { "and" unary }
//! unary       ::= "not" unary | "(" (atom | expr) ")"
//! atom        ::= term "in" NAME | term "=" term | term NAME term
//! term        ::= "this" | NAME
//! ```

use crate::ast::{
    AttrDecl, AttrSpec, ClassDecl, ConstraintExpr, DlModel, LabeledPath, PathFilter, PathStep,
    QueryClassDecl, Term,
};
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use std::fmt;

/// A parse error with a human-readable message and source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line (0 when at end of input).
    pub line: u32,
    /// 1-based column (0 when at end of input).
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error at end of input: {}", self.message)
        } else {
            write!(
                f,
                "parse error at line {}, column {}: {}",
                self.line, self.col, self.message
            )
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(err: LexError) -> Self {
        ParseError {
            message: err.to_string(),
            line: err.line,
            col: err.col,
        }
    }
}

/// Words that head sections or declarations and therefore terminate
/// identifier lists.
const SECTION_WORDS: &[&str] = &[
    "attribute",
    "constraint",
    "derived",
    "where",
    "end",
    "domain",
    "range",
    "inverse",
];

/// Parses a complete DL model (schema and query classes) from source text.
pub fn parse_model(source: &str) -> Result<DlModel, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser::new(tokens);
    parser.model()
}

/// Parses source text that must contain exactly one query-class
/// declaration and nothing else — the shape a query or view definition
/// takes when it travels alone over a wire protocol.
pub fn parse_query(source: &str) -> Result<QueryClassDecl, ParseError> {
    let model = parse_model(source)?;
    if !model.classes.is_empty() || !model.attributes.is_empty() {
        return Err(ParseError {
            message: "expected a single query class, found schema declarations".to_owned(),
            line: 0,
            col: 0,
        });
    }
    let mut queries = model.queries;
    match (queries.pop(), queries.is_empty()) {
        (Some(query), true) => Ok(query),
        (Some(_), false) => Err(ParseError {
            message: "expected a single query class, found several".to_owned(),
            line: 0,
            col: 0,
        }),
        (None, _) => Err(ParseError {
            message: "expected a query class, found none".to_owned(),
            line: 0,
            col: 0,
        }),
    }
}

/// Parses a single constraint expression (used by tests and by tools that
/// store constraints separately).
pub fn parse_constraint(source: &str) -> Result<ConstraintExpr, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.expr()?;
    parser.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn peek_word(&self) -> Option<&str> {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Word(w)) => Some(w.as_str()),
            _ => None,
        }
    }

    fn advance(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        match self.peek() {
            Some(token) => ParseError {
                message: message.into(),
                line: token.line,
                col: token.col,
            },
            None => ParseError {
                message: message.into(),
                line: 0,
                col: 0,
            },
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        match self.peek() {
            Some(token) if &token.kind == kind => {
                self.pos += 1;
                Ok(())
            }
            Some(token) => Err(self.error_here(format!("expected {kind}, found {}", token.kind))),
            None => Err(self.error_here(format!("expected {kind}, found end of input"))),
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), ParseError> {
        match self.peek_word() {
            Some(w) if w == word => {
                self.pos += 1;
                Ok(())
            }
            Some(w) => Err(self.error_here(format!("expected `{word}`, found `{w}`"))),
            None => Err(self.error_here(format!("expected `{word}`"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) => {
                self.pos += 1;
                Ok(w)
            }
            Some(token) => Err(self.error_here(format!("expected {what}, found {}", token.kind))),
            None => Err(self.error_here(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error_here("expected end of input"))
        }
    }

    fn model(&mut self) -> Result<DlModel, ParseError> {
        let mut model = DlModel::new();
        while let Some(word) = self.peek_word() {
            match word {
                "Class" => model.classes.push(self.class_decl()?),
                "Attribute" => model.attributes.push(self.attr_decl()?),
                "QueryClass" => model.queries.push(self.query_decl()?),
                other => {
                    return Err(self.error_here(format!(
                        "expected `Class`, `Attribute`, or `QueryClass`, found `{other}`"
                    )))
                }
            }
        }
        self.expect_eof()?;
        Ok(model)
    }

    fn name_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut names = vec![self.ident("a class name")?];
        while self.peek().map(|t| &t.kind) == Some(&TokenKind::Comma) {
            self.advance();
            names.push(self.ident("a class name")?);
        }
        Ok(names)
    }

    fn class_decl(&mut self) -> Result<ClassDecl, ParseError> {
        self.expect_word("Class")?;
        let name = self.ident("a class name")?;
        let is_a = if self.peek_word() == Some("isA") {
            self.advance();
            self.name_list()?
        } else {
            Vec::new()
        };
        self.expect_word("with")?;

        let mut attributes = Vec::new();
        let mut constraint = None;
        loop {
            match self.peek_word() {
                Some("attribute") => {
                    self.advance();
                    let (necessary, single) = self.attribute_flags()?;
                    while self.at_attr_spec() {
                        let attr_name = self.ident("an attribute name")?;
                        self.expect_kind(&TokenKind::Colon)?;
                        let range = self.ident("a class name")?;
                        attributes.push(AttrSpec {
                            name: attr_name,
                            range,
                            necessary,
                            single,
                        });
                    }
                }
                Some("constraint") => {
                    self.advance();
                    self.expect_kind(&TokenKind::Colon)?;
                    constraint = Some(self.expr()?);
                }
                Some("end") => break,
                Some(other) => {
                    return Err(self.error_here(format!(
                        "expected `attribute`, `constraint`, or `end`, found `{other}`"
                    )))
                }
                None => return Err(self.error_here("unterminated class declaration")),
            }
        }
        self.expect_word("end")?;
        let end_name = self.ident("the class name after `end`")?;
        if end_name != name {
            return Err(self.error_here(format!(
                "declaration of `{name}` terminated by `end {end_name}`"
            )));
        }
        Ok(ClassDecl {
            name,
            is_a,
            attributes,
            constraint,
        })
    }

    fn attribute_flags(&mut self) -> Result<(bool, bool), ParseError> {
        let mut necessary = false;
        let mut single = false;
        while self.peek().map(|t| &t.kind) == Some(&TokenKind::Comma) {
            self.advance();
            match self.peek_word() {
                Some("necessary") => {
                    necessary = true;
                    self.advance();
                }
                Some("single") => {
                    single = true;
                    self.advance();
                }
                _ => return Err(self.error_here("expected `necessary` or `single`")),
            }
        }
        Ok((necessary, single))
    }

    /// Whether the next tokens look like an attribute specification line
    /// `name : Class` rather than a new section.
    fn at_attr_spec(&self) -> bool {
        match (self.peek_word(), self.peek_at(1).map(|t| &t.kind)) {
            (Some(word), Some(TokenKind::Colon)) => !SECTION_WORDS.contains(&word),
            _ => false,
        }
    }

    fn attr_decl(&mut self) -> Result<AttrDecl, ParseError> {
        self.expect_word("Attribute")?;
        let name = self.ident("an attribute name")?;
        self.expect_word("with")?;
        let mut domain = None;
        let mut range = None;
        let mut inverse = None;
        loop {
            match self.peek_word() {
                Some("domain") => {
                    self.advance();
                    self.expect_kind(&TokenKind::Colon)?;
                    domain = Some(self.ident("a class name")?);
                }
                Some("range") => {
                    self.advance();
                    self.expect_kind(&TokenKind::Colon)?;
                    range = Some(self.ident("a class name")?);
                }
                Some("inverse") => {
                    self.advance();
                    self.expect_kind(&TokenKind::Colon)?;
                    inverse = Some(self.ident("an attribute name")?);
                }
                Some("end") => break,
                _ => return Err(self.error_here("expected `domain`, `range`, `inverse`, or `end`")),
            }
        }
        self.expect_word("end")?;
        let end_name = self.ident("the attribute name after `end`")?;
        if end_name != name {
            return Err(self.error_here(format!(
                "declaration of `{name}` terminated by `end {end_name}`"
            )));
        }
        let domain =
            domain.ok_or_else(|| self.error_here(format!("attribute `{name}` lacks a domain")))?;
        let range =
            range.ok_or_else(|| self.error_here(format!("attribute `{name}` lacks a range")))?;
        Ok(AttrDecl {
            name,
            domain,
            range,
            inverse,
        })
    }

    fn query_decl(&mut self) -> Result<QueryClassDecl, ParseError> {
        self.expect_word("QueryClass")?;
        let name = self.ident("a query class name")?;
        let is_a = if self.peek_word() == Some("isA") {
            self.advance();
            self.name_list()?
        } else {
            Vec::new()
        };
        self.expect_word("with")?;

        let mut derived = Vec::new();
        let mut where_eqs = Vec::new();
        let mut constraint = None;
        loop {
            match self.peek_word() {
                Some("derived") => {
                    self.advance();
                    while self.at_path_start() {
                        derived.push(self.labeled_path()?);
                    }
                }
                Some("where") => {
                    self.advance();
                    while self.at_where_eq() {
                        let left = self.ident("a label")?;
                        self.expect_kind(&TokenKind::Equals)?;
                        let right = self.ident("a label")?;
                        where_eqs.push((left, right));
                    }
                }
                Some("constraint") => {
                    self.advance();
                    self.expect_kind(&TokenKind::Colon)?;
                    constraint = Some(self.expr()?);
                }
                Some("end") => break,
                Some(other) => {
                    return Err(self.error_here(format!(
                        "expected `derived`, `where`, `constraint`, or `end`, found `{other}`"
                    )))
                }
                None => return Err(self.error_here("unterminated query class declaration")),
            }
        }
        self.expect_word("end")?;
        let end_name = self.ident("the query class name after `end`")?;
        if end_name != name {
            return Err(self.error_here(format!(
                "declaration of `{name}` terminated by `end {end_name}`"
            )));
        }
        Ok(QueryClassDecl {
            name,
            is_a,
            derived,
            where_eqs,
            constraint,
        })
    }

    fn at_path_start(&self) -> bool {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::LParen) => true,
            Some(TokenKind::Word(w)) => !SECTION_WORDS.contains(&w.as_str()),
            _ => false,
        }
    }

    fn at_where_eq(&self) -> bool {
        matches!(
            (self.peek_word(), self.peek_at(1).map(|t| &t.kind)),
            (Some(w), Some(TokenKind::Equals)) if !SECTION_WORDS.contains(&w)
        )
    }

    fn labeled_path(&mut self) -> Result<LabeledPath, ParseError> {
        // A label is an identifier directly followed by `:` — path steps
        // with filters are always parenthesized, so this is unambiguous.
        let label = match (self.peek_word(), self.peek_at(1).map(|t| &t.kind)) {
            (Some(w), Some(TokenKind::Colon)) if !SECTION_WORDS.contains(&w) => {
                let label = w.to_owned();
                self.advance();
                self.advance();
                Some(label)
            }
            _ => None,
        };
        let mut steps = vec![self.path_step()?];
        while self.peek().map(|t| &t.kind) == Some(&TokenKind::Dot) {
            self.advance();
            steps.push(self.path_step()?);
        }
        Ok(LabeledPath { label, steps })
    }

    fn path_step(&mut self) -> Result<PathStep, ParseError> {
        if self.peek().map(|t| &t.kind) == Some(&TokenKind::LParen) {
            self.advance();
            let attr = self.ident("an attribute name")?;
            self.expect_kind(&TokenKind::Colon)?;
            let filter = if self.peek().map(|t| &t.kind) == Some(&TokenKind::LBrace) {
                self.advance();
                let object = self.ident("an object name")?;
                self.expect_kind(&TokenKind::RBrace)?;
                PathFilter::Singleton(object)
            } else {
                PathFilter::Class(self.ident("a class name")?)
            };
            self.expect_kind(&TokenKind::RParen)?;
            Ok(PathStep { attr, filter })
        } else {
            let attr = self.ident("an attribute name")?;
            Ok(PathStep {
                attr,
                filter: PathFilter::Any,
            })
        }
    }

    // ----- constraint expressions ------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<ConstraintExpr, ParseError> {
        match self.peek_word() {
            Some("forall") | Some("exists") => {
                let quantifier = self.ident("a quantifier")?;
                let var = self.ident("a variable")?;
                self.expect_kind(&TokenKind::Slash)?;
                let class = self.ident("a class name")?;
                let body = Box::new(self.expr()?);
                Ok(if quantifier == "forall" {
                    ConstraintExpr::Forall(var, class, body)
                } else {
                    ConstraintExpr::Exists(var, class, body)
                })
            }
            _ => self.or_expr(),
        }
    }

    fn or_expr(&mut self) -> Result<ConstraintExpr, ParseError> {
        let mut left = self.and_expr()?;
        while self.peek_word() == Some("or") {
            self.advance();
            let right = self.and_expr()?;
            left = ConstraintExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<ConstraintExpr, ParseError> {
        let mut left = self.unary_expr()?;
        while self.peek_word() == Some("and") {
            self.advance();
            let right = self.unary_expr()?;
            left = ConstraintExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<ConstraintExpr, ParseError> {
        if self.peek_word() == Some("not") {
            self.advance();
            return Ok(ConstraintExpr::Not(Box::new(self.unary_expr()?)));
        }
        if self.peek().map(|t| &t.kind) == Some(&TokenKind::LParen) {
            self.advance();
            let inner = if self.at_atom() {
                self.atom()?
            } else {
                self.expr()?
            };
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(inner);
        }
        Err(self.error_here("expected `not`, `(`, `forall`, or `exists` in constraint"))
    }

    /// Whether the tokens after an opening parenthesis form an atom
    /// (`term in C`, `term = term`, or `term attr term`) rather than a
    /// nested expression.
    fn at_atom(&self) -> bool {
        let first_is_term = matches!(
            self.peek_word(),
            Some(w) if !matches!(w, "not" | "forall" | "exists")
        );
        if !first_is_term {
            return false;
        }
        matches!(
            self.peek_at(1).map(|t| &t.kind),
            Some(TokenKind::Word(_)) | Some(TokenKind::Equals)
        )
    }

    fn atom(&mut self) -> Result<ConstraintExpr, ParseError> {
        let subject = self.term()?;
        match self.peek().cloned().map(|t| t.kind) {
            Some(TokenKind::Equals) => {
                self.advance();
                let object = self.term()?;
                Ok(ConstraintExpr::Eq(subject, object))
            }
            Some(TokenKind::Word(w)) if w == "in" => {
                self.advance();
                let class = self.ident("a class name")?;
                Ok(ConstraintExpr::In(subject, class))
            }
            Some(TokenKind::Word(attr)) => {
                self.advance();
                let object = self.term()?;
                Ok(ConstraintExpr::HasAttr(subject, attr, object))
            }
            _ => Err(self.error_here("expected `in`, `=`, or an attribute name in atom")),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let word = self.ident("a term")?;
        Ok(if word == "this" {
            Term::This
        } else {
            Term::Ident(word)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_patient_class() {
        let source = "
            Class Patient isA Person with
              attribute
                takes: Drug
                consults: Doctor
              attribute, necessary
                suffers: Disease
              constraint:
                not (this in Doctor)
            end Patient
        ";
        let model = parse_model(source).expect("parses");
        let patient = model.class("Patient").expect("declared");
        assert_eq!(patient.is_a, vec!["Person"]);
        assert_eq!(patient.attributes.len(), 3);
        assert!(!patient.attributes[0].necessary);
        assert!(patient.attributes[2].necessary);
        assert!(!patient.attributes[2].single);
        assert_eq!(patient.attributes[2].name, "suffers");
        let constraint = patient.constraint.as_ref().expect("constraint clause");
        assert_eq!(
            *constraint,
            ConstraintExpr::Not(Box::new(ConstraintExpr::In(Term::This, "Doctor".into())))
        );
    }

    #[test]
    fn parses_necessary_single_flags() {
        let source = "
            Class Person with
              attribute, necessary, single
                name: String
            end Person
        ";
        let model = parse_model(source).expect("parses");
        let person = model.class("Person").expect("declared");
        assert!(person.attributes[0].necessary);
        assert!(person.attributes[0].single);
    }

    #[test]
    fn parses_attribute_declarations() {
        let source = "
            Attribute skilled_in with
              domain: Person
              range: Topic
              inverse: specialist
            end skilled_in
        ";
        let model = parse_model(source).expect("parses");
        let attr = model.attribute("skilled_in").expect("declared");
        assert_eq!(attr.domain, "Person");
        assert_eq!(attr.range, "Topic");
        assert_eq!(attr.inverse.as_deref(), Some("specialist"));
    }

    #[test]
    fn parses_the_query_patient_example() {
        let source = "
            QueryClass QueryPatient isA Male, Patient with
              derived
                l_1: (consults: Female)
                l_2: suffers.(specialist: Doctor)
              where
                l_1 = l_2
              constraint:
                forall d/Drug not (this takes d) or (d = Aspirin)
            end QueryPatient
        ";
        let model = parse_model(source).expect("parses");
        let query = model.query_class("QueryPatient").expect("declared");
        assert_eq!(query.is_a, vec!["Male", "Patient"]);
        assert_eq!(query.derived.len(), 2);
        assert_eq!(query.derived[0].label.as_deref(), Some("l_1"));
        assert_eq!(query.derived[1].steps.len(), 2);
        assert_eq!(query.derived[1].steps[0].filter, PathFilter::Any);
        assert_eq!(
            query.derived[1].steps[1].filter,
            PathFilter::Class("Doctor".into())
        );
        assert_eq!(query.where_eqs, vec![("l_1".into(), "l_2".into())]);
        assert!(!query.is_view());
        // The quantifier scopes over the whole disjunction.
        match query.constraint.as_ref().expect("constraint") {
            ConstraintExpr::Forall(var, class, body) => {
                assert_eq!(var, "d");
                assert_eq!(class, "Drug");
                assert!(matches!(**body, ConstraintExpr::Or(..)));
            }
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn parses_unlabeled_paths_and_views() {
        let source = "
            QueryClass ViewPatient isA Patient with
              derived
                (name: String)
                l_1: (consults: Doctor).(skilled_in: Disease)
                l_2: (suffers: Disease)
              where
                l_1 = l_2
            end ViewPatient
        ";
        let model = parse_model(source).expect("parses");
        let view = model.query_class("ViewPatient").expect("declared");
        assert!(view.is_view());
        assert_eq!(view.derived.len(), 3);
        assert_eq!(view.derived[0].label, None);
        assert_eq!(view.labels(), vec!["l_1", "l_2"]);
    }

    #[test]
    fn parses_singleton_filters() {
        let source = "
            QueryClass AspirinTaker isA Patient with
              derived
                (takes: {Aspirin})
            end AspirinTaker
        ";
        let model = parse_model(source).expect("parses");
        let query = model.query_class("AspirinTaker").expect("declared");
        assert_eq!(
            query.derived[0].steps[0].filter,
            PathFilter::Singleton("Aspirin".into())
        );
    }

    #[test]
    fn mismatched_end_is_rejected() {
        let err = parse_model("Class A with end B").expect_err("must fail");
        assert!(err.to_string().contains("terminated by"));
    }

    #[test]
    fn missing_domain_is_rejected() {
        let err = parse_model("Attribute a with range: B end a").expect_err("must fail");
        assert!(err.to_string().contains("lacks a domain"));
    }

    #[test]
    fn unexpected_toplevel_word_is_rejected() {
        let err = parse_model("Klass A with end A").expect_err("must fail");
        assert!(err.to_string().contains("Klass"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn parse_constraint_round_trips_nested_expressions() {
        let expr =
            parse_constraint("(not ((this in Doctor) and (this in Patient)))").expect("parses");
        assert!(matches!(expr, ConstraintExpr::Not(_)));
        let expr = parse_constraint("exists d/Disease (this suffers d)").expect("parses");
        assert!(matches!(expr, ConstraintExpr::Exists(..)));
    }

    #[test]
    fn constraint_with_trailing_garbage_is_rejected() {
        assert!(parse_constraint("(this in Doctor) extra").is_err());
    }
}
