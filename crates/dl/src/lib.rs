//! The concrete frame-like database language **DL** of Section 2.
//!
//! DL is the user-facing language of the paper: a generic object-oriented
//! data model with class declarations (isA links, typed set-valued
//! attributes, `necessary`/`single` markers, first-order constraint
//! clauses), attribute declarations (domain, range, inverse synonyms), and
//! *query classes* whose membership conditions are necessary **and**
//! sufficient (isA superclasses, labeled derived paths, `where` equalities
//! between labels, and an optional constraint clause).
//!
//! This crate provides:
//!
//! * the abstract syntax ([`ast`]),
//! * a lexer and recursive-descent parser for the frame syntax used in
//!   Figures 1, 3 and 5 ([`lexer`], [`parser`]),
//! * well-formedness validation ([`validate`]),
//! * the translation of declarations and query classes into first-order
//!   formulas shown in Figures 2 and 4 ([`logic`], [`fol`]),
//! * a pretty-printer back to DL syntax ([`pretty`]), and
//! * the paper's running medical example as ready-made source text
//!   ([`samples`]).
//!
//! The *structural* abstraction of DL into the concept languages SL/QL is
//! performed by the `subq-translate` crate.
//!
//! ```
//! use subq_dl::parser::parse_model;
//! use subq_dl::samples;
//!
//! let model = parse_model(samples::MEDICAL_SOURCE).expect("the paper's schema parses");
//! assert!(model.class("Patient").is_some());
//! assert!(model.query_class("QueryPatient").is_some());
//! ```

pub mod ast;
pub mod fol;
pub mod lexer;
pub mod logic;
pub mod parser;
pub mod pretty;
pub mod samples;
pub mod validate;

pub use ast::{
    AttrDecl, AttrSpec, ClassDecl, ConstraintExpr, DlModel, LabeledPath, PathFilter, PathStep,
    QueryClassDecl, Term,
};
pub use parser::{parse_model, parse_query, ParseError};
pub use validate::{validate_model, ValidationError};
