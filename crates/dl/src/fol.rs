//! Translation of DL declarations and query classes into first-order
//! formulas (Figures 2 and 4 of the paper).

use crate::ast::{
    AttrDecl, ClassDecl, ConstraintExpr, DlModel, LabeledPath, PathFilter, QueryClassDecl, Term,
};
use crate::logic::{NamedFormula, NamedTerm};

/// Translates a class declaration into the schema formulas of Figure 2.
///
/// One formula is produced per isA link, per attribute typing, per
/// `necessary` and `single` marker, and one for the constraint clause (with
/// `this` replaced by the universally quantified membership variable).
pub fn class_axioms(class: &ClassDecl) -> Vec<NamedFormula> {
    let x = || NamedTerm::Var("x".into());
    let y = || NamedTerm::Var("y".into());
    let mut axioms = Vec::new();

    for sup in &class.is_a {
        axioms.push(NamedFormula::Forall(
            vec!["x".into()],
            Box::new(NamedFormula::Implies(
                Box::new(NamedFormula::Class(class.name.clone(), x())),
                Box::new(NamedFormula::Class(sup.clone(), x())),
            )),
        ));
    }
    for spec in &class.attributes {
        // Typing: ∀x,y. C(x) ∧ a(x,y) ⇒ Range(y)
        axioms.push(NamedFormula::Forall(
            vec!["x".into(), "y".into()],
            Box::new(NamedFormula::Implies(
                Box::new(NamedFormula::and(vec![
                    NamedFormula::Class(class.name.clone(), x()),
                    NamedFormula::Attr(spec.name.clone(), x(), y()),
                ])),
                Box::new(NamedFormula::Class(spec.range.clone(), y())),
            )),
        ));
        if spec.necessary {
            // ∀x. C(x) ⇒ ∃y. a(x,y)
            axioms.push(NamedFormula::Forall(
                vec!["x".into()],
                Box::new(NamedFormula::Implies(
                    Box::new(NamedFormula::Class(class.name.clone(), x())),
                    Box::new(NamedFormula::Exists(
                        vec!["y".into()],
                        Box::new(NamedFormula::Attr(spec.name.clone(), x(), y())),
                    )),
                )),
            ));
        }
        if spec.single {
            // ∀x,y,z. C(x) ∧ a(x,y) ∧ a(x,z) ⇒ y ≐ z
            axioms.push(NamedFormula::Forall(
                vec!["x".into(), "y".into(), "z".into()],
                Box::new(NamedFormula::Implies(
                    Box::new(NamedFormula::and(vec![
                        NamedFormula::Class(class.name.clone(), x()),
                        NamedFormula::Attr(spec.name.clone(), x(), y()),
                        NamedFormula::Attr(spec.name.clone(), x(), NamedTerm::Var("z".into())),
                    ])),
                    Box::new(NamedFormula::Eq(y(), NamedTerm::Var("z".into()))),
                )),
            ));
        }
    }
    if let Some(constraint) = &class.constraint {
        // ∀x. C(x) ⇒ φ[this := x]
        axioms.push(NamedFormula::Forall(
            vec!["x".into()],
            Box::new(NamedFormula::Implies(
                Box::new(NamedFormula::Class(class.name.clone(), x())),
                Box::new(constraint_to_formula(constraint, "x")),
            )),
        ));
    }
    axioms
}

/// Translates a global attribute declaration into the formulas of Figure 2:
/// the domain/range typing and, if present, the inverse-synonym
/// bi-implication.
pub fn attr_axioms(attr: &AttrDecl) -> Vec<NamedFormula> {
    let x = || NamedTerm::Var("x".into());
    let y = || NamedTerm::Var("y".into());
    let mut axioms = vec![NamedFormula::Forall(
        vec!["x".into(), "y".into()],
        Box::new(NamedFormula::Implies(
            Box::new(NamedFormula::Attr(attr.name.clone(), x(), y())),
            Box::new(NamedFormula::and(vec![
                NamedFormula::Class(attr.domain.clone(), x()),
                NamedFormula::Class(attr.range.clone(), y()),
            ])),
        )),
    )];
    if let Some(inverse) = &attr.inverse {
        axioms.push(NamedFormula::Forall(
            vec!["x".into(), "y".into()],
            Box::new(NamedFormula::Iff(
                Box::new(NamedFormula::Attr(attr.name.clone(), x(), y())),
                Box::new(NamedFormula::Attr(inverse.clone(), y(), x())),
            )),
        ));
    }
    axioms
}

/// Translates every declaration of a model into schema formulas
/// (Figure 2 for the whole schema).
pub fn model_axioms(model: &DlModel) -> Vec<NamedFormula> {
    let mut axioms = Vec::new();
    for class in &model.classes {
        axioms.extend(class_axioms(class));
    }
    for attr in &model.attributes {
        axioms.extend(attr_axioms(attr));
    }
    axioms
}

/// Translates a query class into its defining bi-implication (Figure 4):
/// `Q(t) ⇔ superclasses ∧ ∃ labels. paths ∧ equalities ∧ constraint`.
pub fn query_formula(query: &QueryClassDecl) -> NamedFormula {
    let t = || NamedTerm::Var("t".into());
    let mut fresh = 0u32;
    let mut fresh_var = || {
        fresh += 1;
        format!("z{fresh}")
    };

    let mut body = Vec::new();
    for sup in &query.is_a {
        body.push(NamedFormula::Class(sup.clone(), t()));
    }

    // Labels become existentially quantified variables; unlabeled paths get
    // fresh names so every path contributes its chain formula.
    let mut bound: Vec<String> = Vec::new();
    for path in &query.derived {
        let end_var = match &path.label {
            Some(label) => label.clone(),
            None => fresh_var(),
        };
        bound.push(end_var.clone());
        body.push(path_formula(path, "t", &end_var, &mut fresh_var));
    }
    for (left, right) in &query.where_eqs {
        body.push(NamedFormula::Eq(
            NamedTerm::Var(left.clone()),
            NamedTerm::Var(right.clone()),
        ));
    }
    if let Some(constraint) = &query.constraint {
        body.push(constraint_to_formula(constraint, "t"));
    }

    let rhs = if bound.is_empty() {
        NamedFormula::and(body)
    } else {
        NamedFormula::Exists(bound, Box::new(NamedFormula::and(body)))
    };
    NamedFormula::Iff(
        Box::new(NamedFormula::Class(query.name.clone(), t())),
        Box::new(rhs),
    )
}

/// The chain formula of a labeled path: intermediate objects are
/// existentially quantified, the final object is named `end_var`.
fn path_formula(
    path: &LabeledPath,
    start_var: &str,
    end_var: &str,
    fresh_var: &mut impl FnMut() -> String,
) -> NamedFormula {
    let mut conjuncts = Vec::new();
    let mut intermediates = Vec::new();
    let mut current = start_var.to_owned();
    let last = path.steps.len().saturating_sub(1);
    for (i, step) in path.steps.iter().enumerate() {
        let next = if i == last {
            end_var.to_owned()
        } else {
            let v = fresh_var();
            intermediates.push(v.clone());
            v
        };
        conjuncts.push(NamedFormula::Attr(
            step.attr.clone(),
            NamedTerm::Var(current.clone()),
            NamedTerm::Var(next.clone()),
        ));
        match &step.filter {
            PathFilter::Class(class) => {
                conjuncts.push(NamedFormula::Class(
                    class.clone(),
                    NamedTerm::Var(next.clone()),
                ));
            }
            PathFilter::Singleton(object) => {
                conjuncts.push(NamedFormula::Eq(
                    NamedTerm::Var(next.clone()),
                    NamedTerm::Const(object.clone()),
                ));
            }
            PathFilter::Any => {}
        }
        current = next;
    }
    let body = NamedFormula::and(conjuncts);
    if intermediates.is_empty() {
        body
    } else {
        NamedFormula::Exists(intermediates, Box::new(body))
    }
}

/// Translates a constraint-clause expression, replacing `this` by the given
/// variable.
pub fn constraint_to_formula(expr: &ConstraintExpr, this_var: &str) -> NamedFormula {
    let term = |t: &Term| match t {
        Term::This => NamedTerm::Var(this_var.to_owned()),
        // Identifiers in constraints may be labels/bound variables or
        // object constants; the distinction does not matter for rendering,
        // and the evaluator in the OODB engine resolves them by scope.
        Term::Ident(name) => NamedTerm::Var(name.clone()),
    };
    match expr {
        ConstraintExpr::In(t, class) => NamedFormula::Class(class.clone(), term(t)),
        ConstraintExpr::HasAttr(s, attr, t) => NamedFormula::Attr(attr.clone(), term(s), term(t)),
        ConstraintExpr::Eq(s, t) => NamedFormula::Eq(term(s), term(t)),
        ConstraintExpr::Not(inner) => {
            NamedFormula::Not(Box::new(constraint_to_formula(inner, this_var)))
        }
        ConstraintExpr::And(a, b) => NamedFormula::and(vec![
            constraint_to_formula(a, this_var),
            constraint_to_formula(b, this_var),
        ]),
        ConstraintExpr::Or(a, b) => NamedFormula::Or(vec![
            constraint_to_formula(a, this_var),
            constraint_to_formula(b, this_var),
        ]),
        ConstraintExpr::Forall(var, class, body) => NamedFormula::Forall(
            vec![var.clone()],
            Box::new(NamedFormula::Implies(
                Box::new(NamedFormula::Class(
                    class.clone(),
                    NamedTerm::Var(var.clone()),
                )),
                Box::new(constraint_to_formula(body, this_var)),
            )),
        ),
        ConstraintExpr::Exists(var, class, body) => NamedFormula::Exists(
            vec![var.clone()],
            Box::new(NamedFormula::and(vec![
                NamedFormula::Class(class.clone(), NamedTerm::Var(var.clone())),
                constraint_to_formula(body, this_var),
            ])),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_model;
    use crate::samples;

    #[test]
    fn figure_2_patient_axioms() {
        let model = parse_model(samples::MEDICAL_SOURCE).expect("parses");
        let patient = model.class("Patient").expect("declared");
        let axioms = class_axioms(patient);
        let rendered: Vec<String> = axioms.iter().map(|a| a.to_string()).collect();
        // The six formulas of Figure 2 for Patient (isA, three typings, one
        // necessity, one constraint).
        assert!(rendered.contains(&"∀ x. (Patient(x) ⇒ Person(x))".to_owned()));
        assert!(rendered.contains(&"∀ x, y. ((Patient(x) ∧ takes(x, y)) ⇒ Drug(y))".to_owned()));
        assert!(
            rendered.contains(&"∀ x, y. ((Patient(x) ∧ consults(x, y)) ⇒ Doctor(y))".to_owned())
        );
        assert!(
            rendered.contains(&"∀ x, y. ((Patient(x) ∧ suffers(x, y)) ⇒ Disease(y))".to_owned())
        );
        assert!(rendered.contains(&"∀ x. (Patient(x) ⇒ ∃ y. suffers(x, y))".to_owned()));
        assert!(rendered.contains(&"∀ x. (Patient(x) ⇒ ¬(Doctor(x)))".to_owned()));
        assert_eq!(axioms.len(), 6);
    }

    #[test]
    fn figure_2_skilled_in_axioms() {
        let model = parse_model(samples::MEDICAL_SOURCE).expect("parses");
        let attr = model.attribute("skilled_in").expect("declared");
        let axioms = attr_axioms(attr);
        let rendered: Vec<String> = axioms.iter().map(|a| a.to_string()).collect();
        assert!(
            rendered.contains(&"∀ x, y. (skilled_in(x, y) ⇒ (Person(x) ∧ Topic(y)))".to_owned())
        );
        assert!(rendered.contains(&"∀ x, y. (skilled_in(x, y) ⇔ specialist(y, x))".to_owned()));
    }

    #[test]
    fn single_marker_produces_functionality_axiom() {
        let model = parse_model(samples::MEDICAL_SOURCE).expect("parses");
        let person = model.class("Person").expect("declared");
        let rendered: Vec<String> = class_axioms(person).iter().map(|a| a.to_string()).collect();
        assert!(rendered.iter().any(|f| f.contains("y ≐ z")));
        assert!(rendered.iter().any(|f| f.contains("∃ y. name(x, y)")));
    }

    #[test]
    fn figure_4_query_patient_formula() {
        let model = parse_model(samples::MEDICAL_SOURCE).expect("parses");
        let query = model.query_class("QueryPatient").expect("declared");
        let formula = query_formula(query);
        let rendered = formula.to_string();
        // Structure of Figure 4: equivalence, superclasses, path conjuncts
        // with existential labels, label equality, and the drug constraint.
        assert!(rendered.starts_with("(QueryPatient(t) ⇔ ∃ l_1, l_2."));
        assert!(rendered.contains("Male(t)"));
        assert!(rendered.contains("Patient(t)"));
        assert!(rendered.contains("consults(t, l_1)"));
        assert!(rendered.contains("Female(l_1)"));
        assert!(rendered.contains("specialist("));
        assert!(rendered.contains("l_1 ≐ l_2"));
        assert!(rendered.contains("Drug(d)"));
        assert!(rendered.contains("d ≐ Aspirin") || rendered.contains("d ≐ Aspirin"));
    }

    #[test]
    fn unlabeled_paths_get_fresh_variables() {
        let model = parse_model(samples::MEDICAL_SOURCE).expect("parses");
        let view = model.query_class("ViewPatient").expect("declared");
        let rendered = query_formula(view).to_string();
        assert!(rendered.contains("name(t, z1)"));
        assert!(rendered.contains("String(z1)"));
        assert!(rendered.contains("l_1 ≐ l_2"));
    }

    #[test]
    fn model_axioms_cover_all_declarations() {
        let model = parse_model(samples::MEDICAL_SOURCE).expect("parses");
        let axioms = model_axioms(&model);
        // Every class and attribute contributes at least one axiom.
        assert!(axioms.len() >= model.classes.len() + model.attributes.len());
    }

    #[test]
    fn singleton_filters_translate_to_equalities() {
        let source = "
            QueryClass AspirinTaker isA Patient with
              derived
                (takes: {Aspirin})
            end AspirinTaker
        ";
        let model = parse_model(source).expect("parses");
        let query = model.query_class("AspirinTaker").expect("declared");
        let rendered = query_formula(query).to_string();
        assert!(rendered.contains("takes(t, z1)"));
        assert!(rendered.contains("z1 ≐ Aspirin"));
    }
}
