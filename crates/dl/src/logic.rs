//! A small first-order language with named predicates, used to spell out
//! the semantics of DL declarations (Figures 2 and 4 of the paper).
//!
//! Unlike [`subq_concepts::fol`], which works on interned symbol
//! identifiers and is built for evaluation, this module works directly on
//! names and is built for faithful, human-readable rendering of the
//! translation figures.

use std::fmt;

/// A term: a variable or an object constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NamedTerm {
    /// A variable, e.g. `x`, `l_1`, `d`.
    Var(String),
    /// An object constant, e.g. `Aspirin`.
    Const(String),
}

impl fmt::Display for NamedTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NamedTerm::Var(v) => write!(f, "{v}"),
            NamedTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A first-order formula over unary and binary named predicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NamedFormula {
    /// The true formula.
    True,
    /// `C(t)` — class membership.
    Class(String, NamedTerm),
    /// `a(s, t)` — attribute atom.
    Attr(String, NamedTerm, NamedTerm),
    /// `s ≐ t`.
    Eq(NamedTerm, NamedTerm),
    /// Negation.
    Not(Box<NamedFormula>),
    /// n-ary conjunction.
    And(Vec<NamedFormula>),
    /// n-ary disjunction.
    Or(Vec<NamedFormula>),
    /// Implication.
    Implies(Box<NamedFormula>, Box<NamedFormula>),
    /// Bi-implication (used for the inverse-attribute axiom and for query
    /// class definitions).
    Iff(Box<NamedFormula>, Box<NamedFormula>),
    /// `∃ x₁, …, xₙ. φ`.
    Exists(Vec<String>, Box<NamedFormula>),
    /// `∀ x₁, …, xₙ. φ`.
    Forall(Vec<String>, Box<NamedFormula>),
}

impl NamedFormula {
    /// Builds a conjunction, flattening the trivial cases.
    pub fn and(conjuncts: Vec<NamedFormula>) -> NamedFormula {
        let filtered: Vec<NamedFormula> = conjuncts
            .into_iter()
            .filter(|f| !matches!(f, NamedFormula::True))
            .collect();
        match filtered.len() {
            0 => NamedFormula::True,
            1 => filtered.into_iter().next().expect("len checked"),
            _ => NamedFormula::And(filtered),
        }
    }

    /// Number of connectives and atoms.
    pub fn size(&self) -> usize {
        match self {
            NamedFormula::True
            | NamedFormula::Class(..)
            | NamedFormula::Attr(..)
            | NamedFormula::Eq(..) => 1,
            NamedFormula::Not(f) => 1 + f.size(),
            NamedFormula::And(fs) | NamedFormula::Or(fs) => {
                1 + fs.iter().map(NamedFormula::size).sum::<usize>()
            }
            NamedFormula::Implies(a, b) | NamedFormula::Iff(a, b) => 1 + a.size() + b.size(),
            NamedFormula::Exists(_, f) | NamedFormula::Forall(_, f) => 1 + f.size(),
        }
    }
}

impl fmt::Display for NamedFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NamedFormula::True => write!(f, "true"),
            NamedFormula::Class(name, t) => write!(f, "{name}({t})"),
            NamedFormula::Attr(name, s, t) => write!(f, "{name}({s}, {t})"),
            NamedFormula::Eq(s, t) => write!(f, "{s} ≐ {t}"),
            NamedFormula::Not(inner) => write!(f, "¬({inner})"),
            NamedFormula::And(fs) => {
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            NamedFormula::Or(fs) => {
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            NamedFormula::Implies(a, b) => write!(f, "({a} ⇒ {b})"),
            NamedFormula::Iff(a, b) => write!(f, "({a} ⇔ {b})"),
            NamedFormula::Exists(vars, body) => {
                write!(f, "∃ {}. {body}", vars.join(", "))
            }
            NamedFormula::Forall(vars, body) => {
                write!(f, "∀ {}. {body}", vars.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_figure_2_style() {
        // ∀ x. Patient(x) ⇒ Person(x)
        let formula = NamedFormula::Forall(
            vec!["x".into()],
            Box::new(NamedFormula::Implies(
                Box::new(NamedFormula::Class(
                    "Patient".into(),
                    NamedTerm::Var("x".into()),
                )),
                Box::new(NamedFormula::Class(
                    "Person".into(),
                    NamedTerm::Var("x".into()),
                )),
            )),
        );
        assert_eq!(formula.to_string(), "∀ x. (Patient(x) ⇒ Person(x))");
    }

    #[test]
    fn and_flattens_trivial_cases() {
        assert_eq!(NamedFormula::and(vec![]), NamedFormula::True);
        let single = NamedFormula::Class("A".into(), NamedTerm::Var("x".into()));
        assert_eq!(NamedFormula::and(vec![single.clone()]), single);
        let many = NamedFormula::and(vec![single.clone(), NamedFormula::True, single.clone()]);
        assert_eq!(many.size(), 3);
    }

    #[test]
    fn size_counts_nodes() {
        let eq = NamedFormula::Eq(
            NamedTerm::Var("y".into()),
            NamedTerm::Const("Aspirin".into()),
        );
        let not = NamedFormula::Not(Box::new(eq.clone()));
        assert_eq!(eq.size(), 1);
        assert_eq!(not.size(), 2);
    }

    #[test]
    fn constants_and_vars_render_plainly() {
        let attr = NamedFormula::Attr(
            "takes".into(),
            NamedTerm::Var("x".into()),
            NamedTerm::Const("Aspirin".into()),
        );
        assert_eq!(attr.to_string(), "takes(x, Aspirin)");
    }
}
