//! Well-formedness validation of DL models.
//!
//! A complete schema must declare every class and attribute it references
//! (footnote 2 of the paper); attribute synonyms may be used in queries but
//! not in other schema declarations; labels used in `where` clauses and
//! constraints must be declared in the `derived` clause; and, to keep the
//! subsumption algorithm simple, a label may occur at most once in the
//! `where` clause (footnote 5).

use crate::ast::{DlModel, PathFilter, QueryClassDecl};
use std::collections::HashSet;
use std::fmt;

/// A validation problem, with enough context to point the user at the
/// offending declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A class is referenced but never declared.
    UndeclaredClass { reference: String, context: String },
    /// An attribute (or synonym) is referenced but never declared.
    UndeclaredAttribute { reference: String, context: String },
    /// A class or attribute is declared more than once.
    DuplicateDeclaration { name: String },
    /// An attribute synonym is used inside a schema declaration.
    SynonymInSchema { synonym: String, context: String },
    /// A label is used in `where` or `constraint` but not declared in
    /// `derived`.
    UndeclaredLabel { label: String, query: String },
    /// A label occurs more than once in the `where` clause (footnote 5).
    LabelReusedInWhere { label: String, query: String },
    /// A query class names itself as a superclass.
    SelfSuperclass { query: String },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UndeclaredClass { reference, context } => {
                write!(
                    f,
                    "class `{reference}` referenced in {context} is not declared"
                )
            }
            ValidationError::UndeclaredAttribute { reference, context } => {
                write!(
                    f,
                    "attribute `{reference}` referenced in {context} is not declared"
                )
            }
            ValidationError::DuplicateDeclaration { name } => {
                write!(f, "`{name}` is declared more than once")
            }
            ValidationError::SynonymInSchema { synonym, context } => {
                write!(
                    f,
                    "attribute synonym `{synonym}` may not be used in schema declaration {context}"
                )
            }
            ValidationError::UndeclaredLabel { label, query } => {
                write!(
                    f,
                    "label `{label}` used in `{query}` is not declared in its derived clause"
                )
            }
            ValidationError::LabelReusedInWhere { label, query } => {
                write!(
                    f,
                    "label `{label}` occurs more than once in the where clause of `{query}`"
                )
            }
            ValidationError::SelfSuperclass { query } => {
                write!(f, "query class `{query}` lists itself as a superclass")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a model, returning every problem found (empty = well-formed).
pub fn validate_model(model: &DlModel) -> Vec<ValidationError> {
    let mut errors = Vec::new();

    let class_names: HashSet<&str> = model.classes.iter().map(|c| c.name.as_str()).collect();
    let query_names: HashSet<&str> = model.queries.iter().map(|q| q.name.as_str()).collect();
    let attr_names: HashSet<&str> = model.attributes.iter().map(|a| a.name.as_str()).collect();

    // Duplicate declarations.
    let mut seen = HashSet::new();
    for class in &model.classes {
        if !seen.insert(class.name.as_str()) {
            errors.push(ValidationError::DuplicateDeclaration {
                name: class.name.clone(),
            });
        }
    }
    for attr in &model.attributes {
        if !seen.insert(attr.name.as_str()) {
            errors.push(ValidationError::DuplicateDeclaration {
                name: attr.name.clone(),
            });
        }
    }
    for query in &model.queries {
        if !seen.insert(query.name.as_str()) {
            errors.push(ValidationError::DuplicateDeclaration {
                name: query.name.clone(),
            });
        }
    }

    let class_known = |name: &str| class_names.contains(name) || query_names.contains(name);

    // Class declarations: superclasses, attribute ranges and names.
    for class in &model.classes {
        let context = format!("class `{}`", class.name);
        for sup in &class.is_a {
            if !class_known(sup) {
                errors.push(ValidationError::UndeclaredClass {
                    reference: sup.clone(),
                    context: context.clone(),
                });
            }
        }
        for spec in &class.attributes {
            if !class_known(&spec.range) {
                errors.push(ValidationError::UndeclaredClass {
                    reference: spec.range.clone(),
                    context: context.clone(),
                });
            }
            match model.resolve_attribute(&spec.name) {
                None => errors.push(ValidationError::UndeclaredAttribute {
                    reference: spec.name.clone(),
                    context: context.clone(),
                }),
                Some((_, true)) => errors.push(ValidationError::SynonymInSchema {
                    synonym: spec.name.clone(),
                    context: context.clone(),
                }),
                Some((_, false)) => {}
            }
        }
    }

    // Attribute declarations: domain and range classes.
    for attr in &model.attributes {
        let context = format!("attribute `{}`", attr.name);
        for class in [&attr.domain, &attr.range] {
            if !class_known(class) {
                errors.push(ValidationError::UndeclaredClass {
                    reference: class.clone(),
                    context: context.clone(),
                });
            }
        }
        if let Some(inverse) = &attr.inverse {
            if attr_names.contains(inverse.as_str()) {
                errors.push(ValidationError::DuplicateDeclaration {
                    name: inverse.clone(),
                });
            }
        }
    }

    // Query classes.
    for query in &model.queries {
        errors.extend(validate_query(model, query, &class_known));
    }

    errors
}

fn validate_query(
    model: &DlModel,
    query: &QueryClassDecl,
    class_known: &dyn Fn(&str) -> bool,
) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let context = format!("query class `{}`", query.name);

    for sup in &query.is_a {
        if sup == &query.name {
            errors.push(ValidationError::SelfSuperclass {
                query: query.name.clone(),
            });
        } else if !class_known(sup) {
            errors.push(ValidationError::UndeclaredClass {
                reference: sup.clone(),
                context: context.clone(),
            });
        }
    }

    for path in &query.derived {
        for step in &path.steps {
            if model.resolve_attribute(&step.attr).is_none() {
                errors.push(ValidationError::UndeclaredAttribute {
                    reference: step.attr.clone(),
                    context: context.clone(),
                });
            }
            if let PathFilter::Class(class) = &step.filter {
                if !class_known(class) {
                    errors.push(ValidationError::UndeclaredClass {
                        reference: class.clone(),
                        context: context.clone(),
                    });
                }
            }
        }
    }

    // Labels used in `where` and constraints must be declared; a label may
    // appear at most once in the `where` clause.
    let declared: HashSet<&str> = query.labels().into_iter().collect();
    let mut used_in_where: HashSet<&str> = HashSet::new();
    for (left, right) in &query.where_eqs {
        for label in [left, right] {
            if !declared.contains(label.as_str()) {
                errors.push(ValidationError::UndeclaredLabel {
                    label: label.clone(),
                    query: query.name.clone(),
                });
            }
            if !used_in_where.insert(label.as_str()) {
                errors.push(ValidationError::LabelReusedInWhere {
                    label: label.clone(),
                    query: query.name.clone(),
                });
            }
        }
    }
    if let Some(constraint) = &query.constraint {
        for ident in constraint.free_idents() {
            // Free identifiers of the constraint may be labels or object
            // constants; only flag identifiers that look like labels (i.e.
            // are declared nowhere) when a label of the same name is also
            // not declared. Object constants cannot be distinguished
            // syntactically, so we only require that identifiers which are
            // *intended* as labels (declared in some query) resolve here.
            let label_somewhere = model
                .queries
                .iter()
                .any(|q| q.labels().contains(&ident.as_str()));
            if label_somewhere && !declared.contains(ident.as_str()) {
                errors.push(ValidationError::UndeclaredLabel {
                    label: ident.clone(),
                    query: query.name.clone(),
                });
            }
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_model;
    use crate::samples;

    #[test]
    fn the_medical_example_is_well_formed() {
        let model = samples::medical_model();
        let errors = validate_model(&model);
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
    }

    #[test]
    fn undeclared_references_are_reported() {
        let model = parse_model(
            "Class Patient isA Person with
               attribute
                 takes: Drug
             end Patient",
        )
        .expect("parses");
        let errors = validate_model(&model);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::UndeclaredClass { reference, .. } if reference == "Person")));
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::UndeclaredClass { reference, .. } if reference == "Drug")));
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::UndeclaredAttribute { reference, .. } if reference == "takes")));
    }

    #[test]
    fn duplicate_declarations_are_reported() {
        let model = parse_model("Class A with end A Class A with end A").expect("parses");
        let errors = validate_model(&model);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::DuplicateDeclaration { name } if name == "A")));
    }

    #[test]
    fn synonyms_may_not_appear_in_schema_declarations() {
        let model = parse_model(
            "Class Person with end Person
             Class Topic with end Topic
             Attribute skilled_in with
               domain: Person
               range: Topic
               inverse: specialist
             end skilled_in
             Class Doctor isA Person with
               attribute
                 specialist: Person
             end Doctor",
        )
        .expect("parses");
        let errors = validate_model(&model);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::SynonymInSchema { synonym, .. } if synonym == "specialist")));
    }

    #[test]
    fn where_clause_labels_are_checked() {
        let model = parse_model(
            "Class Person with end Person
             Attribute knows with
               domain: Person
               range: Person
             end knows
             QueryClass Q isA Person with
               derived
                 l_1: (knows: Person)
               where
                 l_1 = l_2
             end Q",
        )
        .expect("parses");
        let errors = validate_model(&model);
        assert!(errors.iter().any(
            |e| matches!(e, ValidationError::UndeclaredLabel { label, .. } if label == "l_2")
        ));
    }

    #[test]
    fn label_reuse_in_where_is_reported() {
        let model = parse_model(
            "Class Person with end Person
             Attribute knows with
               domain: Person
               range: Person
             end knows
             QueryClass Q isA Person with
               derived
                 l_1: (knows: Person)
                 l_2: (knows: Person)
                 l_3: (knows: Person)
               where
                 l_1 = l_2
                 l_1 = l_3
             end Q",
        )
        .expect("parses");
        let errors = validate_model(&model);
        assert!(errors.iter().any(
            |e| matches!(e, ValidationError::LabelReusedInWhere { label, .. } if label == "l_1")
        ));
    }

    #[test]
    fn self_superclass_is_reported() {
        let model = parse_model(
            "QueryClass Q isA Q with
             end Q",
        )
        .expect("parses");
        let errors = validate_model(&model);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::SelfSuperclass { query } if query == "Q")));
    }

    #[test]
    fn errors_render_readably() {
        let err = ValidationError::UndeclaredClass {
            reference: "Drug".into(),
            context: "class `Patient`".into(),
        };
        assert!(err.to_string().contains("Drug"));
        assert!(err.to_string().contains("Patient"));
    }
}
