//! Tokenizer for the DL frame syntax.
//!
//! The syntax is the one used in Figures 1, 3 and 5 of the paper: keyword
//! headed declarations (`Class … end …`), attribute sections, labeled
//! paths, and a small first-order constraint language. Line comments start
//! with `--`.

use std::fmt;

/// A token with its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are recognized by the parser).
    Word(String),
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `=`
    Equals,
    /// `/`
    Slash,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Word(w) => write!(f, "`{w}`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Equals => write!(f, "`=`"),
            TokenKind::Slash => write!(f, "`/`"),
        }
    }
}

/// A lexing error: an unexpected character.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// The offending character.
    pub character: char,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character `{}` at line {}, column {}",
            self.character, self.line, self.col
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes DL source text.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = source.chars().peekable();

    while let Some(&c) = chars.peek() {
        let start_line = line;
        let start_col = col;
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '-' => {
                // Either a comment `--` or an error (identifiers may contain
                // `-` only in non-leading position, which we do not support).
                chars.next();
                col += 1;
                if chars.peek() == Some(&'-') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            col = 1;
                            break;
                        }
                    }
                } else {
                    return Err(LexError {
                        character: '-',
                        line: start_line,
                        col: start_col,
                    });
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        word.push(c);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Word(word),
                    line: start_line,
                    col: start_col,
                });
            }
            _ => {
                let kind = match c {
                    ':' => TokenKind::Colon,
                    ',' => TokenKind::Comma,
                    '.' => TokenKind::Dot,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '=' => TokenKind::Equals,
                    '/' => TokenKind::Slash,
                    other => {
                        return Err(LexError {
                            character: other,
                            line: start_line,
                            col: start_col,
                        })
                    }
                };
                chars.next();
                col += 1;
                tokens.push(Token {
                    kind,
                    line: start_line,
                    col: start_col,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn words_and_symbols() {
        let toks = kinds("Class Patient isA Person with");
        assert_eq!(
            toks,
            vec![
                TokenKind::Word("Class".into()),
                TokenKind::Word("Patient".into()),
                TokenKind::Word("isA".into()),
                TokenKind::Word("Person".into()),
                TokenKind::Word("with".into()),
            ]
        );
        let toks = kinds("l_1: (consults: Female).{Aspirin}");
        assert!(toks.contains(&TokenKind::Colon));
        assert!(toks.contains(&TokenKind::LParen));
        assert!(toks.contains(&TokenKind::LBrace));
        assert!(toks.contains(&TokenKind::Dot));
        assert!(toks.contains(&TokenKind::Word("l_1".into())));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("Class A -- the universal class\nend A");
        assert_eq!(
            toks,
            vec![
                TokenKind::Word("Class".into()),
                TokenKind::Word("A".into()),
                TokenKind::Word("end".into()),
                TokenKind::Word("A".into()),
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = tokenize("ab\n  cd").expect("lexes");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].col, 3);
    }

    #[test]
    fn unexpected_character_is_reported() {
        let err = tokenize("Class $").expect_err("lexing fails");
        assert_eq!(err.character, '$');
        assert_eq!(err.line, 1);
        assert_eq!(err.col, 7);
        assert!(err.to_string().contains('$'));
    }

    #[test]
    fn single_dash_is_an_error() {
        let err = tokenize("a - b").expect_err("lexing fails");
        assert_eq!(err.character, '-');
    }
}
