//! Pretty-printing of DL declarations back to the frame syntax.
//!
//! The printer produces text that re-parses to the same abstract syntax,
//! which gives a convenient round-trip property for tests and lets tools
//! store models as source.

use crate::ast::{
    AttrDecl, ClassDecl, ConstraintExpr, DlModel, LabeledPath, PathFilter, QueryClassDecl, Term,
};
use std::fmt::Write as _;

/// Renders a whole model.
pub fn render_model(model: &DlModel) -> String {
    let mut out = String::new();
    for class in &model.classes {
        out.push_str(&render_class(class));
        out.push('\n');
    }
    for attr in &model.attributes {
        out.push_str(&render_attribute(attr));
        out.push('\n');
    }
    for query in &model.queries {
        out.push_str(&render_query(query));
        out.push('\n');
    }
    out
}

/// Renders a class declaration.
pub fn render_class(class: &ClassDecl) -> String {
    let mut out = String::new();
    let _ = write!(out, "Class {}", class.name);
    if !class.is_a.is_empty() {
        let _ = write!(out, " isA {}", class.is_a.join(", "));
    }
    out.push_str(" with\n");
    // Group attribute specs by their (necessary, single) flags so the
    // section headers come out like in Figure 1.
    for (necessary, single) in [(false, false), (true, false), (false, true), (true, true)] {
        let group: Vec<_> = class
            .attributes
            .iter()
            .filter(|a| a.necessary == necessary && a.single == single)
            .collect();
        if group.is_empty() {
            continue;
        }
        out.push_str("  attribute");
        if necessary {
            out.push_str(", necessary");
        }
        if single {
            out.push_str(", single");
        }
        out.push('\n');
        for spec in group {
            let _ = writeln!(out, "    {}: {}", spec.name, spec.range);
        }
    }
    if let Some(constraint) = &class.constraint {
        let _ = writeln!(out, "  constraint:\n    {}", render_constraint(constraint));
    }
    let _ = writeln!(out, "end {}", class.name);
    out
}

/// Renders an attribute declaration.
pub fn render_attribute(attr: &AttrDecl) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Attribute {} with", attr.name);
    let _ = writeln!(out, "  domain: {}", attr.domain);
    let _ = writeln!(out, "  range: {}", attr.range);
    if let Some(inverse) = &attr.inverse {
        let _ = writeln!(out, "  inverse: {inverse}");
    }
    let _ = writeln!(out, "end {}", attr.name);
    out
}

/// Renders a query class declaration.
pub fn render_query(query: &QueryClassDecl) -> String {
    let mut out = String::new();
    let _ = write!(out, "QueryClass {}", query.name);
    if !query.is_a.is_empty() {
        let _ = write!(out, " isA {}", query.is_a.join(", "));
    }
    out.push_str(" with\n");
    if !query.derived.is_empty() {
        out.push_str("  derived\n");
        for path in &query.derived {
            let _ = writeln!(out, "    {}", render_path(path));
        }
    }
    if !query.where_eqs.is_empty() {
        out.push_str("  where\n");
        for (left, right) in &query.where_eqs {
            let _ = writeln!(out, "    {left} = {right}");
        }
    }
    if let Some(constraint) = &query.constraint {
        let _ = writeln!(out, "  constraint:\n    {}", render_constraint(constraint));
    }
    let _ = writeln!(out, "end {}", query.name);
    out
}

/// Renders a labeled path, e.g. `l_2: suffers.(specialist: Doctor)`.
pub fn render_path(path: &LabeledPath) -> String {
    let steps: Vec<String> = path
        .steps
        .iter()
        .map(|step| match &step.filter {
            PathFilter::Any => step.attr.clone(),
            PathFilter::Class(class) => format!("({}: {})", step.attr, class),
            PathFilter::Singleton(object) => format!("({}: {{{}}})", step.attr, object),
        })
        .collect();
    match &path.label {
        Some(label) => format!("{}: {}", label, steps.join(".")),
        None => steps.join("."),
    }
}

/// Renders a constraint expression in a form the parser accepts again.
pub fn render_constraint(expr: &ConstraintExpr) -> String {
    fn term(t: &Term) -> String {
        match t {
            Term::This => "this".to_owned(),
            Term::Ident(name) => name.clone(),
        }
    }
    // A quantified expression used as an operand of `not`/`and`/`or` must
    // be parenthesized: the quantifier's body extends as far right as
    // possible, so `(forall x/C φ and ψ)` would re-parse with `and ψ`
    // *inside* the body (and `not forall …` would not parse at all).
    // Atoms, `and`/`or`, and `not`-chains self-delimit.
    fn operand(expr: &ConstraintExpr) -> String {
        match expr {
            ConstraintExpr::Forall(..) | ConstraintExpr::Exists(..) => {
                format!("({})", render_constraint(expr))
            }
            _ => render_constraint(expr),
        }
    }
    match expr {
        ConstraintExpr::In(t, class) => format!("({} in {})", term(t), class),
        ConstraintExpr::HasAttr(s, attr, t) => format!("({} {} {})", term(s), attr, term(t)),
        ConstraintExpr::Eq(s, t) => format!("({} = {})", term(s), term(t)),
        ConstraintExpr::Not(inner) => format!("not {}", operand(inner)),
        ConstraintExpr::And(a, b) => {
            format!("({} and {})", operand(a), operand(b))
        }
        ConstraintExpr::Or(a, b) => {
            format!("({} or {})", operand(a), operand(b))
        }
        ConstraintExpr::Forall(var, class, body) => {
            format!("forall {var}/{class} {}", render_constraint(body))
        }
        ConstraintExpr::Exists(var, class, body) => {
            format!("exists {var}/{class} {}", render_constraint(body))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_model;
    use crate::samples;

    /// Pretty-printing and re-parsing is the identity on the medical
    /// example (modulo constraint-expression parenthesisation, which the
    /// printer normalizes and the parser preserves).
    #[test]
    fn medical_model_round_trips() {
        let model = samples::medical_model();
        let printed = render_model(&model);
        let reparsed = parse_model(&printed).expect("printed model parses");
        assert_eq!(reparsed.classes.len(), model.classes.len());
        assert_eq!(reparsed.attributes.len(), model.attributes.len());
        assert_eq!(reparsed.queries.len(), model.queries.len());
        // Structural pieces survive exactly.
        for class in &model.classes {
            let other = reparsed.class(&class.name).expect("class survives");
            assert_eq!(other.is_a, class.is_a);
            assert_eq!(other.attributes, class.attributes);
        }
        for query in &model.queries {
            let other = reparsed.query_class(&query.name).expect("query survives");
            assert_eq!(other.is_a, query.is_a);
            assert_eq!(other.derived, query.derived);
            assert_eq!(other.where_eqs, query.where_eqs);
            assert_eq!(other.constraint.is_some(), query.constraint.is_some());
        }
        // A second round trip is a fixed point.
        assert_eq!(render_model(&reparsed), printed);
    }

    #[test]
    fn paths_render_like_the_figures() {
        let model = samples::medical_model();
        let query = model.query_class("QueryPatient").expect("declared");
        assert_eq!(render_path(&query.derived[0]), "l_1: (consults: Female)");
        assert_eq!(
            render_path(&query.derived[1]),
            "l_2: suffers.(specialist: Doctor)"
        );
    }

    #[test]
    fn constraints_render_and_reparse() {
        let model = samples::medical_model();
        let query = model.query_class("QueryPatient").expect("declared");
        let constraint = query.constraint.as_ref().expect("constraint");
        let printed = render_constraint(constraint);
        assert!(printed.starts_with("forall d/Drug"));
        let reparsed = crate::parser::parse_constraint(&printed).expect("reparses");
        assert_eq!(&reparsed, constraint);
    }
}
