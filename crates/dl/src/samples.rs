//! The paper's running example: the medical database schema of Figure 1,
//! the query class `QueryPatient` of Figure 3, and the view `ViewPatient`
//! of Figure 5, completed with the declarations the paper leaves implicit
//! (footnote 2: `Drug`, `Disease`, `String`, `Topic`, `Male`, `Female`, and
//! the attributes `consults`, `name`, `suffers`, `takes`).

use crate::ast::DlModel;
use crate::parser::parse_model;

/// DL source text of the complete medical example.
pub const MEDICAL_SOURCE: &str = "
-- Figure 1: a part of the schema of a medical database -----------------

Class Person with
  attribute, necessary, single
    name: String
end Person

Class Patient isA Person with
  attribute
    takes: Drug
    consults: Doctor
  attribute, necessary
    suffers: Disease
  constraint:
    not (this in Doctor)
end Patient

Class Doctor isA Person with
  attribute
    skilled_in: Disease
end Doctor

Class Male isA Person with
end Male

Class Female isA Person with
end Female

Class Drug with
end Drug

Class Disease isA Topic with
end Disease

Class Topic with
end Topic

Class String with
end String

Attribute skilled_in with
  domain: Person
  range: Topic
  inverse: specialist
end skilled_in

Attribute consults with
  domain: Person
  range: Person
end consults

Attribute suffers with
  domain: Person
  range: Disease
end suffers

Attribute takes with
  domain: Person
  range: Drug
end takes

Attribute name with
  domain: Person
  range: String
end name

-- Figure 3: the query class QueryPatient -------------------------------

QueryClass QueryPatient isA Male, Patient with
  derived
    l_1: (consults: Female)
    l_2: suffers.(specialist: Doctor)
  where
    l_1 = l_2
  constraint:
    forall d/Drug not (this takes d) or (d = Aspirin)
end QueryPatient

-- Figure 5: the view ViewPatient ----------------------------------------

QueryClass ViewPatient isA Patient with
  derived
    (name: String)
    l_1: (consults: Doctor).(skilled_in: Disease)
    l_2: (suffers: Disease)
  where
    l_1 = l_2
end ViewPatient
";

/// Parses [`MEDICAL_SOURCE`] into a model.
///
/// # Panics
///
/// Never panics in practice — the source is covered by unit tests; the
/// panic message exists to surface accidental edits.
pub fn medical_model() -> DlModel {
    parse_model(MEDICAL_SOURCE).expect("the bundled medical example must parse")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medical_source_parses_and_contains_the_figures() {
        let model = medical_model();
        assert!(model.class("Patient").is_some());
        assert!(model.class("Person").is_some());
        assert!(model.class("Doctor").is_some());
        assert!(model.attribute("skilled_in").is_some());
        assert!(model.query_class("QueryPatient").is_some());
        assert!(model.query_class("ViewPatient").is_some());
        assert_eq!(model.queries.len(), 2);
        // ViewPatient is a view (no constraint clause), QueryPatient is not.
        assert!(model.query_class("ViewPatient").unwrap().is_view());
        assert!(!model.query_class("QueryPatient").unwrap().is_view());
    }

    #[test]
    fn every_referenced_class_is_declared() {
        let model = medical_model();
        for name in model.referenced_classes() {
            assert!(
                model.class(&name).is_some(),
                "class `{name}` is referenced but not declared"
            );
        }
    }

    #[test]
    fn patient_declaration_matches_figure_1() {
        let model = medical_model();
        let patient = model.class("Patient").expect("declared");
        assert_eq!(patient.is_a, vec!["Person"]);
        let suffers = patient
            .attributes
            .iter()
            .find(|a| a.name == "suffers")
            .expect("suffers attribute");
        assert!(suffers.necessary);
        assert!(!suffers.single);
        assert_eq!(suffers.range, "Disease");
        let person = model.class("Person").expect("declared");
        let name = &person.attributes[0];
        assert!(name.necessary && name.single);
    }
}
