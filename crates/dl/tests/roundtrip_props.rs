//! Adversarial round-trip property for the DL parser and pretty-printer:
//! `parse(pretty(decl)) == decl` — exactly, as abstract syntax — over
//!
//! * every declaration of the bundled medical example, and
//! * hundreds of seeded random query classes covering the whole grammar:
//!   empty and multi-superclass `isA` clauses, labeled and unlabeled
//!   derived paths with class / singleton / wildcard filters, `where`
//!   equalities, and deeply nested constraint expressions (quantifiers as
//!   operands of `not`/`and`/`or` are the historically fragile corner —
//!   the printer must parenthesize them or the re-parse associates the
//!   quantifier body wrongly).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subq_dl::pretty::{render_model, render_query};
use subq_dl::{
    parse_model, samples, ConstraintExpr, LabeledPath, PathFilter, PathStep, QueryClassDecl, Term,
};

const CLASSES: [&str; 5] = ["Alpha", "Beta", "Gamma", "Delta", "Epsilon"];
const ATTRS: [&str; 4] = ["attr_a", "attr_b", "rel_c", "rel_d"];
const LABELS: [&str; 4] = ["l_1", "l_2", "l_3", "l_4"];
const OBJECTS: [&str; 3] = ["obj_x", "obj_y", "obj_z"];
const VARS: [&str; 3] = ["v1", "v2", "v3"];

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

fn random_term(rng: &mut StdRng) -> Term {
    match rng.gen_range(0..3u8) {
        0 => Term::This,
        1 => Term::Ident(pick(rng, &LABELS).to_owned()),
        _ => Term::Ident(pick(rng, &OBJECTS).to_owned()),
    }
}

fn random_constraint(rng: &mut StdRng, depth: usize) -> ConstraintExpr {
    let atom = depth == 0 || rng.gen_bool(0.35);
    if atom {
        return match rng.gen_range(0..3u8) {
            0 => ConstraintExpr::In(random_term(rng), pick(rng, &CLASSES).to_owned()),
            1 => ConstraintExpr::HasAttr(
                random_term(rng),
                pick(rng, &ATTRS).to_owned(),
                random_term(rng),
            ),
            _ => ConstraintExpr::Eq(random_term(rng), random_term(rng)),
        };
    }
    match rng.gen_range(0..5u8) {
        0 => ConstraintExpr::Not(Box::new(random_constraint(rng, depth - 1))),
        1 => ConstraintExpr::And(
            Box::new(random_constraint(rng, depth - 1)),
            Box::new(random_constraint(rng, depth - 1)),
        ),
        2 => ConstraintExpr::Or(
            Box::new(random_constraint(rng, depth - 1)),
            Box::new(random_constraint(rng, depth - 1)),
        ),
        3 => ConstraintExpr::Forall(
            pick(rng, &VARS).to_owned(),
            pick(rng, &CLASSES).to_owned(),
            Box::new(random_constraint(rng, depth - 1)),
        ),
        _ => ConstraintExpr::Exists(
            pick(rng, &VARS).to_owned(),
            pick(rng, &CLASSES).to_owned(),
            Box::new(random_constraint(rng, depth - 1)),
        ),
    }
}

fn random_path(rng: &mut StdRng, label: Option<String>) -> LabeledPath {
    let steps = (0..rng.gen_range(1..=3usize))
        .map(|_| PathStep {
            attr: pick(rng, &ATTRS).to_owned(),
            filter: match rng.gen_range(0..3u8) {
                0 => PathFilter::Any,
                1 => PathFilter::Class(pick(rng, &CLASSES).to_owned()),
                _ => PathFilter::Singleton(pick(rng, &OBJECTS).to_owned()),
            },
        })
        .collect();
    LabeledPath { label, steps }
}

fn random_query(rng: &mut StdRng, index: usize) -> QueryClassDecl {
    let is_a: Vec<String> = {
        let count = rng.gen_range(0..=3usize);
        let mut names = Vec::new();
        for _ in 0..count {
            let name = pick(rng, &CLASSES).to_owned();
            if !names.contains(&name) {
                names.push(name);
            }
        }
        names
    };
    let mut labels_in_use = Vec::new();
    let derived: Vec<LabeledPath> = (0..rng.gen_range(0..=3usize))
        .map(|_| {
            let label = if rng.gen_bool(0.7) {
                let label = pick(rng, &LABELS).to_owned();
                labels_in_use.push(label.clone());
                Some(label)
            } else {
                None
            };
            random_path(rng, label)
        })
        .collect();
    let where_eqs: Vec<(String, String)> = if labels_in_use.len() >= 2 {
        (0..rng.gen_range(0..=2usize))
            .map(|_| {
                (
                    labels_in_use[rng.gen_range(0..labels_in_use.len())].clone(),
                    labels_in_use[rng.gen_range(0..labels_in_use.len())].clone(),
                )
            })
            .collect()
    } else {
        vec![]
    };
    let constraint = if rng.gen_bool(0.6) {
        Some(random_constraint(rng, 3))
    } else {
        None
    };
    QueryClassDecl {
        name: format!("Q{index}"),
        is_a,
        derived,
        where_eqs,
        constraint,
    }
}

/// The bundled medical example survives printing and re-parsing exactly —
/// full abstract-syntax equality, not just per-clause spot checks.
#[test]
fn medical_model_round_trips_exactly() {
    let model = samples::medical_model();
    let printed = render_model(&model);
    let reparsed = parse_model(&printed).expect("printed model parses");
    assert_eq!(reparsed, model);
}

/// 300 seeded random query classes round-trip exactly through the
/// printer and parser.
#[test]
fn random_query_classes_round_trip_exactly() {
    let mut rng = StdRng::seed_from_u64(0xD1_5EED);
    for case in 0..300usize {
        let query = random_query(&mut rng, case);
        let printed = render_query(&query);
        let model = parse_model(&printed).unwrap_or_else(|e| {
            panic!("case {case}: printed query fails to parse: {e}\n{printed}")
        });
        assert_eq!(
            model.queries.len(),
            1,
            "case {case}: expected one query\n{printed}"
        );
        assert_eq!(
            model.queries[0], query,
            "case {case}: round trip changed the AST\n{printed}"
        );
    }
}

/// The historically fragile corners, pinned explicitly: quantifiers as
/// operands of `not` / `and` / `or`.
#[test]
fn quantifiers_in_operand_position_round_trip() {
    let atom = || ConstraintExpr::In(Term::This, "Alpha".into());
    let forall =
        |body: ConstraintExpr| ConstraintExpr::Forall("v1".into(), "Beta".into(), Box::new(body));
    for constraint in [
        // not (forall v1/Beta (this in Alpha))
        ConstraintExpr::Not(Box::new(forall(atom()))),
        // (forall v1/Beta (this in Alpha)) and (this in Alpha) — without
        // parentheses the `and` would be swallowed by the quantifier body.
        ConstraintExpr::And(Box::new(forall(atom())), Box::new(atom())),
        ConstraintExpr::Or(Box::new(forall(atom())), Box::new(atom())),
        // Quantifier body that itself ends in a conjunction stays inside.
        forall(ConstraintExpr::And(Box::new(atom()), Box::new(atom()))),
        ConstraintExpr::Not(Box::new(ConstraintExpr::Not(Box::new(forall(atom()))))),
    ] {
        let query = QueryClassDecl {
            name: "Q0".into(),
            is_a: vec![],
            derived: vec![],
            where_eqs: vec![],
            constraint: Some(constraint),
        };
        let printed = render_query(&query);
        let model =
            parse_model(&printed).unwrap_or_else(|e| panic!("fails to parse: {e}\n{printed}"));
        assert_eq!(model.queries[0], query, "round trip changed\n{printed}");
    }
}
