//! The tractability frontier of Section 4.4, measured.
//!
//! The core languages SL/QL admit the polynomial calculus; the extensions
//! of Section 4.4 do not. This example prints, side by side,
//!
//! * the number of individuals the polynomial calculus uses on growing
//!   SL/QL instances (linear),
//! * the number of individuals a complete expansion needs once the schema
//!   may use qualified existentials or inverse attributes (exponential),
//!   and
//! * the number of valuations a complete procedure enumerates once the
//!   query language has disjunction (exponential).
//!
//! Run with `cargo run --example complexity_frontier`.

use subq::calculus::SubsumptionChecker;
use subq::concepts::Vocabulary;
use subq::extensions::expansion::{
    expand_and_detect, filler_demand, inverse_chain, qualified_chain, unqualified_chain,
};
use subq::extensions::propositional::{independent_choices, prop_subsumes};
use subq::workload::scaling::view_growth_instance;

fn main() {
    println!(
        "n | SL/QL calculus individuals | ∃P.A schema demand | P⁻¹ schema expansion | ⊔ valuations"
    );
    println!(
        "--|----------------------------|--------------------|----------------------|-------------"
    );
    for n in 1..=8usize {
        // Core calculus on the SL/QL family of growing view depth.
        let mut instance = view_growth_instance(n);
        let checker = SubsumptionChecker::new(&instance.schema);
        let outcome = checker.check(&mut instance.arena, instance.query, instance.view);
        assert!(outcome.subsumed());
        let core_individuals = outcome.stats.individuals;

        // Qualified existentials in the schema (Proposition 4.10, case 1).
        let mut voc = Vocabulary::new();
        let (qschema, qroot) = qualified_chain(&mut voc, n);
        let qualified = filler_demand(&qschema, qroot, n);
        let mut voc = Vocabulary::new();
        let (uschema, uroot) = unqualified_chain(&mut voc, n);
        let unqualified = filler_demand(&uschema, uroot, n);

        // Inverse attributes in the schema (Proposition 4.10, case 2).
        let mut voc = Vocabulary::new();
        let (ischema, iroot, itarget) = inverse_chain(&mut voc, n);
        let expansion = expand_and_detect(&ischema, iroot, n);
        assert!(expansion.root_classes.contains(&itarget));

        // Disjunction in the query language (Proposition 4.12).
        let mut voc = Vocabulary::new();
        let choices = independent_choices(&mut voc, n);
        let prop = prop_subsumes(&choices, &choices).expect("propositional");
        assert!(prop.subsumed);

        println!(
            "{n} | {core_individuals:>26} | {qualified:>8} (SL: {unqualified:>3}) | {:>20} | {:>11}",
            expansion.individuals_created, prop.valuations
        );
    }
    println!(
        "\nThe first column grows linearly (Theorem 4.9); the others double with n,\n\
         which is why the paper excludes those constructs from SL and QL."
    );
}
