//! Quickstart: define a small schema with two query classes and ask the
//! engine whether one is subsumed by the other.
//!
//! Run with `cargo run --example quickstart`.

use subq::Engine;

const SOURCE: &str = "
Class Employee with
  attribute, necessary
    works_in: Department
end Employee

Class Manager isA Employee with
  attribute
    manages: Department
end Manager

Class Department with
  attribute
    located_in: City
end Department

Class City with
end City

Attribute works_in with
  domain: Employee
  range: Department
  inverse: staff
end works_in

Attribute manages with
  domain: Manager
  range: Department
end manages

Attribute located_in with
  domain: Department
  range: City
end located_in

-- Managers working in a department that is located in some city.
QueryClass LocatedManager isA Manager with
  derived
    l_1: (works_in: Department).(located_in: City)
end LocatedManager

-- Employees working in a located department (a broader view).
QueryClass LocatedEmployee isA Employee with
  derived
    l_1: (works_in: Department).(located_in: City)
end LocatedEmployee
";

fn main() {
    let mut engine = Engine::from_source(SOURCE).expect("the example schema parses");

    for (query, view) in [
        ("LocatedManager", "LocatedEmployee"),
        ("LocatedEmployee", "LocatedManager"),
    ] {
        let subsumed = engine.subsumes(query, view).expect("both classes exist");
        println!(
            "{query} ⊑ {view} ?  {}",
            if subsumed {
                "yes — every answer of the first is an answer of the second"
            } else {
                "no"
            }
        );
    }

    // The decision comes with a derivation trace in the style of Figure 11.
    let outcome = engine
        .check_with_trace("LocatedManager", "LocatedEmployee")
        .expect("both classes exist");
    println!(
        "\ndecision: {:?} with {} rule applications over {} individuals",
        outcome.verdict, outcome.stats.rule_applications, outcome.stats.individuals
    );
    if let Some(trace) = &outcome.trace {
        let translated = engine.translated();
        println!(
            "\nderivation:\n{}",
            trace.render(&translated.vocabulary, &translated.arena)
        );
    }
}
