//! The paper's running example, end to end (Figures 1–6 and 11).
//!
//! Parses the medical schema, prints its first-order translation
//! (Figure 2), its SL axioms (Figure 6), the QL concepts of QueryPatient
//! and ViewPatient (Section 3.2), and the calculus derivation showing that
//! QueryPatient is subsumed by ViewPatient (Figure 11).
//!
//! Run with `cargo run --example medical_db`.

use subq::concepts::display::DisplayCtx;
use subq::dl::{fol, samples};
use subq::Engine;

fn main() {
    let model = samples::medical_model();

    println!("== Figure 2: first-order translation of the Patient class ==");
    let patient = model.class("Patient").expect("declared");
    for axiom in fol::class_axioms(patient) {
        println!("  {axiom}");
    }
    let skilled_in = model.attribute("skilled_in").expect("declared");
    for axiom in fol::attr_axioms(skilled_in) {
        println!("  {axiom}");
    }

    println!("\n== Figure 4: the query class QueryPatient as a formula ==");
    let query = model.query_class("QueryPatient").expect("declared");
    println!("  {}", fol::query_formula(query));

    let mut engine = Engine::from_source(samples::MEDICAL_SOURCE).expect("loads");

    println!("\n== Figure 6: SL axioms of the medical schema ==");
    print!(
        "{}",
        engine
            .translated()
            .schema
            .render(&engine.translated().vocabulary)
    );

    println!("\n== Section 3.2: the QL concepts C_Q and D_V ==");
    {
        let translated = engine.translated();
        let ctx = DisplayCtx::new(&translated.vocabulary, &translated.arena);
        let c_q = translated
            .query_concept("QueryPatient")
            .expect("translated");
        let d_v = translated.query_concept("ViewPatient").expect("translated");
        println!("  C_Q = {}", ctx.concept(c_q));
        println!("  D_V = {}", ctx.concept(d_v));
    }

    println!("\n== Figure 11: deciding C_Q ⊑_Σ D_V ==");
    let outcome = engine
        .check_with_trace("QueryPatient", "ViewPatient")
        .expect("checks");
    let translated = engine.translated();
    if let Some(trace) = &outcome.trace {
        println!(
            "{}",
            trace.render(&translated.vocabulary, &translated.arena)
        );
    }
    println!(
        "verdict: {:?}  ({} rule applications, {} individuals, {} facts, {} goals)",
        outcome.verdict,
        outcome.stats.rule_applications,
        outcome.stats.individuals,
        outcome.stats.facts,
        outcome.stats.goals
    );

    let reverse = engine
        .check_with_trace("ViewPatient", "QueryPatient")
        .expect("checks");
    println!(
        "\nthe converse ViewPatient ⊑_Σ QueryPatient: {:?} (as expected, it fails)",
        reverse.verdict
    );
}
