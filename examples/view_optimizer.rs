//! The optimization scenario of Sections 1 and 6: materialize a view, let
//! the optimizer detect that an incoming query is subsumed by it, and
//! answer the query by filtering the stored extension.
//!
//! Run with `cargo run --example view_optimizer`.

use subq::dl::samples;
use subq::oodb::OptimizedDatabase;
use subq::workload::{synthetic_hospital, HospitalParams};

fn main() {
    let params = HospitalParams {
        patients: 2_000,
        doctors: 50,
        diseases: 25,
        view_match_percent: 15,
        query_match_percent: 40,
    };
    println!(
        "generating a synthetic hospital: {} patients, {} doctors, {} diseases",
        params.patients, params.doctors, params.diseases
    );
    let db = synthetic_hospital(2024, params);
    println!("objects in the state: {}", db.object_count());

    let model = samples::medical_model();
    let mut odb = OptimizedDatabase::new(db).expect("the medical model translates");
    odb.materialize_view("ViewPatient")
        .expect("ViewPatient is structural");
    let view_size = odb.catalog().view("ViewPatient").expect("stored").len();
    println!("materialized ViewPatient: {view_size} stored answers");

    let query = model.query_class("QueryPatient").expect("declared");

    let plan = odb.plan(query);
    println!(
        "\nplan for QueryPatient: subsuming views = {:?}, chosen = {:?}",
        plan.subsuming_views, plan.chosen_view
    );

    let (answers, stats) = odb.execute(query);
    println!(
        "optimized execution:   {} answers, {} candidates examined (via {:?})",
        answers.len(),
        stats.candidates_examined,
        stats.used_view
    );

    let (baseline, base_stats) = odb.execute_unoptimized(query);
    println!(
        "baseline execution:    {} answers, {} candidates examined (full scan of the superclass extents)",
        baseline.len(),
        base_stats.candidates_examined
    );

    assert_eq!(answers, baseline, "optimization must not change the result");
    let reduction = 100.0
        - 100.0 * stats.candidates_examined as f64 / base_stats.candidates_examined.max(1) as f64;
    println!("\nsearch-space reduction from the subsuming view: {reduction:.1}%");
}
